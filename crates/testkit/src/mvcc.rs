//! Deterministic interleaving scheduler + snapshot-isolation checker.
//!
//! The host has one CPU, so "run writers and readers on threads and hope
//! the race shows up" proves nothing. Instead this module makes the
//! concurrency *explicit*: a [`Workload`] is one writer script plus any
//! number of reader scripts, a schedule is one interleaving of those
//! scripts (per-actor order preserved), and [`run_history`] executes a
//! schedule step by step on a single thread — writer steps through the
//! shared database's writer lock, reader steps through MVCC [`Session`]s.
//! [`sweep`] enumerates *every* interleaving (optionally strided) and
//! checks each one, so tier-1 covers the exact set of orderings a
//! preemptive scheduler could ever produce for these scripts.
//!
//! The checker maintains a history of committed states: after every
//! writer step it pins the newest published snapshot and digests it,
//! keyed by generation. Each read then must satisfy snapshot isolation:
//!
//! 1. **committed reads only** — the digest a reader observes equals the
//!    recorded committed digest of the generation it pinned (no dirty
//!    reads, no torn states);
//! 2. **repeatable reads** — within one `BeginRead`…`EndRead` span, every
//!    read reports the same generation and the same digest, regardless of
//!    writer progress in between.
//!
//! A failing schedule is minimized with the generic [`crate::shrink::ddmin`]
//! before being reported: the witness drops every step that isn't needed
//! to reproduce the violation. [`FaultMode::DirtyRead`] deliberately
//! breaks the reader (it reads the writer's live catalog while claiming
//! its pinned generation) to prove the checker and the shrinker actually
//! catch and minimize violations.

use crate::shrink::ddmin;
use aio_algebra::oracle_like;
use aio_storage::{edge_schema, row, Relation, SimVfs, WalPolicy};
use aio_withplus::{Database, Session, SharedDatabase};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One writer action. `Insert` batches auto-commit unless bracketed by
/// `Begin`/`Commit`; `Ubu` runs a full with+ union-by-update fixpoint
/// (PageRank, Fig. 3), committing one generation per iteration;
/// `Checkpoint` snapshots a durable catalog (no-op error on in-memory).
#[derive(Clone, Debug, PartialEq)]
pub enum WriterOp {
    Insert(Vec<(i64, i64)>),
    Begin,
    Commit,
    Ubu { iters: usize },
    Checkpoint,
}

/// One reader action, executed through a pinned-snapshot [`Session`].
/// A `ReadAll` outside a read transaction pins the newest committed
/// generation for just that statement.
#[derive(Clone, Debug, PartialEq)]
pub enum ReaderOp {
    BeginRead,
    ReadAll,
    EndRead,
}

/// One step of an interleaved history: a writer op, or reader `i`'s op.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    W(WriterOp),
    R(usize, ReaderOp),
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::W(WriterOp::Insert(rows)) => write!(f, "writer: insert {rows:?}"),
            Step::W(WriterOp::Begin) => write!(f, "writer: begin"),
            Step::W(WriterOp::Commit) => write!(f, "writer: commit"),
            Step::W(WriterOp::Ubu { iters }) => write!(f, "writer: ubu x{iters}"),
            Step::W(WriterOp::Checkpoint) => write!(f, "writer: checkpoint"),
            Step::R(i, ReaderOp::BeginRead) => write!(f, "reader{i}: begin-read"),
            Step::R(i, ReaderOp::ReadAll) => write!(f, "reader{i}: read-all"),
            Step::R(i, ReaderOp::EndRead) => write!(f, "reader{i}: end-read"),
        }
    }
}

/// Render a history one step per line (witness reports, golden files).
pub fn render_history(history: &[Step]) -> String {
    let mut out = String::new();
    for (i, s) in history.iter().enumerate() {
        out.push_str(&format!("{i:3}  {s}\n"));
    }
    out
}

/// One writer script plus N reader scripts. A schedule interleaves them.
#[derive(Clone, Debug)]
pub struct Workload {
    pub writer: Vec<WriterOp>,
    pub readers: Vec<Vec<ReaderOp>>,
}

impl Workload {
    /// The number of distinct interleavings (multinomial coefficient).
    pub fn schedule_count(&self) -> u64 {
        let mut total = self.writer.len() as u64;
        let mut count = 1u64;
        for r in &self.readers {
            for k in 1..=(r.len() as u64) {
                total += 1;
                count = count * total / k;
            }
        }
        count
    }

    /// Every interleaving of the scripts, each preserving per-actor op
    /// order. Actor 0 is the writer; actor i+1 is reader i.
    pub fn schedules(&self) -> Vec<Vec<Step>> {
        let mut lens: Vec<usize> = Vec::with_capacity(1 + self.readers.len());
        lens.push(self.writer.len());
        lens.extend(self.readers.iter().map(Vec::len));
        let mut out = Vec::new();
        let mut taken = vec![0usize; lens.len()];
        let mut cur: Vec<Step> = Vec::new();
        self.rec(&lens, &mut taken, &mut cur, &mut out);
        out
    }

    fn step_for(&self, actor: usize, idx: usize) -> Step {
        if actor == 0 {
            Step::W(self.writer[idx].clone())
        } else {
            Step::R(actor - 1, self.readers[actor - 1][idx].clone())
        }
    }

    fn rec(
        &self,
        lens: &[usize],
        taken: &mut Vec<usize>,
        cur: &mut Vec<Step>,
        out: &mut Vec<Vec<Step>>,
    ) {
        if taken.iter().zip(lens).all(|(t, l)| t == l) {
            out.push(cur.clone());
            return;
        }
        for actor in 0..lens.len() {
            if taken[actor] < lens[actor] {
                cur.push(self.step_for(actor, taken[actor]));
                taken[actor] += 1;
                self.rec(lens, taken, cur, out);
                taken[actor] -= 1;
                cur.pop();
            }
        }
    }
}

/// How the scheduler executes reads. `DirtyRead` is the planted fault:
/// the reader inspects the writer's *live* catalog while claiming its
/// pinned generation — exactly the bug MVCC exists to prevent — so a test
/// can prove the checker rejects it and the shrinker minimizes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    None,
    DirtyRead,
}

/// What one executed history produced.
#[derive(Debug)]
pub struct HistoryOutcome {
    /// Snapshot-isolation violations, empty on a correct engine.
    pub anomalies: Vec<String>,
    /// Reads performed.
    pub reads: usize,
    /// Distinct committed generations observed by readers, ascending.
    pub generations_read: Vec<u64>,
    /// Writer ops that errored or were skipped (tolerated so that
    /// ddmin-shrunk sub-histories stay executable).
    pub writer_noops: usize,
}

/// FNV-1a over the canonical text of a relation's rows: the state digest
/// the checker compares. Row order is part of the digest — committed
/// snapshots and session reads traverse storage order identically.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn digest_relation(rel: &Relation) -> u64 {
    fnv1a(&format!("{:?}", rel.rows()))
}

/// The observable table. Writer mutations in this module target `E`;
/// `Ubu` reads it and writes only run-temporary tables.
const TABLE: &str = "E";

/// Execute one interleaved history and check snapshot isolation.
///
/// Histories containing `Checkpoint` run on a simulated durable file
/// system ([`SimVfs`]); everything else runs in memory. Writer ops that
/// cannot apply in context (commit without a transaction, checkpoint
/// mid-transaction or in memory, `Ubu` inside an open explicit
/// transaction — the engine forbids starting a run there) are tolerated
/// and counted, so shrunk sub-histories remain executable.
pub fn run_history(history: &[Step], fault: FaultMode) -> HistoryOutcome {
    let durable = history
        .iter()
        .any(|s| matches!(s, Step::W(WriterOp::Checkpoint)));
    let mut db = if durable {
        let vfs = Arc::new(SimVfs::new());
        Database::open_with_vfs(vfs, "db", oracle_like(), None)
            .expect("fresh sim database opens")
            .0
    } else {
        Database::new(oracle_like())
    };
    // Seed: two nodes, one edge — enough for Ubu to iterate.
    let mut e = Relation::new(edge_schema());
    e.extend([row![1, 2, 1.0]]).unwrap();
    db.create_table(TABLE, e).unwrap();
    let mut v = Relation::new(aio_storage::node_schema());
    v.extend([row![1, 1.0], row![2, 1.0]]).unwrap();
    db.create_table("V", v).unwrap();
    db.set_param("c", 0.85);
    db.set_param("n", 2.0f64);

    let shared = SharedDatabase::new(db);
    let n_readers = history
        .iter()
        .filter_map(|s| match s {
            Step::R(i, _) => Some(i + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut sessions: Vec<Session> = (0..n_readers).map(|_| shared.session()).collect();

    // gen → digest of the committed state published at that generation.
    let mut committed: HashMap<u64, u64> = HashMap::new();
    // Per-reader (generation, digest) of the open read txn's first read.
    let mut read_txn_first: Vec<Option<(u64, u64)>> = vec![None; n_readers];
    let mut anomalies: Vec<String> = Vec::new();
    let mut reads = 0usize;
    let mut generations_read: Vec<u64> = Vec::new();
    let mut writer_noops = 0usize;

    let record_committed = |committed: &mut HashMap<u64, u64>, anomalies: &mut Vec<String>| {
        let pin = shared.hub().pin();
        let gen = pin.generation();
        let digest = digest_relation(pin.catalog().relation(TABLE).expect("table exists"));
        if let Some(prev) = committed.insert(gen, digest) {
            if prev != digest {
                anomalies.push(format!(
                    "generation {gen} published twice with different states"
                ));
            }
        }
    };
    record_committed(&mut committed, &mut anomalies);

    for (pos, step) in history.iter().enumerate() {
        match step {
            Step::W(op) => {
                let applied = shared.with_writer(|db| match op {
                    WriterOp::Insert(pairs) => {
                        let rows = pairs.iter().map(|&(f, t)| row![f, t, 1.0]).collect();
                        db.catalog.insert_rows(TABLE, rows, WalPolicy::None).is_ok()
                    }
                    WriterOp::Begin => {
                        db.catalog.wal_begin_txn();
                        true
                    }
                    WriterOp::Commit => db.catalog.wal_commit_txn().is_ok(),
                    WriterOp::Ubu { iters } => {
                        // Starting a with+ run inside an open explicit
                        // transaction would publish its uncommitted state;
                        // the real client API never does this, so neither
                        // does the scheduler.
                        !db.catalog.in_txn()
                            && db.execute(&aio_algos::pagerank::sql(*iters)).is_ok()
                    }
                    WriterOp::Checkpoint => db.checkpoint().is_ok(),
                });
                if !applied {
                    writer_noops += 1;
                }
                record_committed(&mut committed, &mut anomalies);
            }
            Step::R(i, op) => {
                let sess = &mut sessions[*i];
                match op {
                    ReaderOp::BeginRead => {
                        sess.begin_read();
                        read_txn_first[*i] = None;
                    }
                    ReaderOp::EndRead => {
                        sess.end_read();
                        read_txn_first[*i] = None;
                    }
                    ReaderOp::ReadAll => {
                        let in_txn = sess.generation().is_some();
                        let (gen, digest) = match fault {
                            FaultMode::None => {
                                let scoped = if in_txn { None } else { Some(sess.begin_read()) };
                                let gen = sess.generation().expect("read txn open");
                                let out = sess
                                    .query(&format!("select * from {TABLE}"))
                                    .expect("snapshot read succeeds");
                                if scoped.is_some() {
                                    sess.end_read();
                                }
                                (gen, digest_relation(&out.relation))
                            }
                            FaultMode::DirtyRead => {
                                // The planted bug: claim the pinned (or
                                // newest) generation but read the writer's
                                // live, possibly uncommitted, catalog.
                                let gen = sess
                                    .generation()
                                    .unwrap_or_else(|| shared.current_generation());
                                let digest = shared.with_writer(|db| {
                                    digest_relation(db.catalog.relation(TABLE).unwrap())
                                });
                                (gen, digest)
                            }
                        };
                        reads += 1;
                        generations_read.push(gen);
                        match committed.get(&gen) {
                            None => anomalies.push(format!(
                                "step {pos}: reader{i} pinned unpublished generation {gen}"
                            )),
                            Some(&want) if want != digest => anomalies.push(format!(
                                "step {pos}: reader{i} saw uncommitted/torn state at \
                                 generation {gen}"
                            )),
                            Some(_) => {}
                        }
                        if in_txn {
                            match read_txn_first[*i] {
                                None => read_txn_first[*i] = Some((gen, digest)),
                                Some((g0, d0)) if (g0, d0) != (gen, digest) => {
                                    anomalies.push(format!(
                                        "step {pos}: reader{i} non-repeatable read \
                                         (gen {g0} → {gen})"
                                    ));
                                }
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
    }

    generations_read.sort_unstable();
    generations_read.dedup();
    HistoryOutcome {
        anomalies,
        reads,
        generations_read,
        writer_noops,
    }
}

/// Aggregate statistics of a clean sweep.
#[derive(Debug, Default)]
pub struct SweepStats {
    pub schedules_run: usize,
    pub reads: usize,
    /// Distinct committed generations read across all schedules.
    pub generations_read: usize,
}

/// A minimized failing schedule.
#[derive(Debug)]
pub struct SweepFailure {
    /// Index of the first failing interleaving in enumeration order.
    pub schedule_index: usize,
    /// The ddmin-minimized witness.
    pub witness: Vec<Step>,
    /// Anomalies reported by the minimized witness.
    pub anomalies: Vec<String>,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule #{} violates snapshot isolation; minimal witness:",
            self.schedule_index
        )?;
        write!(f, "{}", render_history(&self.witness))?;
        for a in &self.anomalies {
            writeln!(f, "anomaly: {a}")?;
        }
        Ok(())
    }
}

/// Run every `stride`-th interleaving of `workload` (stride 1 =
/// exhaustive) and check each against the snapshot-isolation invariants.
/// The first failing schedule is ddmin-minimized into a witness.
pub fn sweep(workload: &Workload, fault: FaultMode, stride: usize) -> Result<SweepStats, SweepFailure> {
    let stride = stride.max(1);
    let mut stats = SweepStats::default();
    let mut all_gens: Vec<u64> = Vec::new();
    for (idx, schedule) in workload.schedules().into_iter().enumerate() {
        if idx % stride != 0 {
            continue;
        }
        let outcome = run_history(&schedule, fault);
        stats.schedules_run += 1;
        stats.reads += outcome.reads;
        all_gens.extend(&outcome.generations_read);
        if !outcome.anomalies.is_empty() {
            let witness = ddmin(&schedule, |h| !run_history(h, fault).anomalies.is_empty());
            let anomalies = run_history(&witness, fault).anomalies;
            return Err(SweepFailure {
                schedule_index: idx,
                witness,
                anomalies,
            });
        }
    }
    all_gens.sort_unstable();
    all_gens.dedup();
    stats.generations_read = all_gens.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_count_matches_enumeration() {
        let w = Workload {
            writer: vec![WriterOp::Begin, WriterOp::Insert(vec![(2, 3)]), WriterOp::Commit],
            readers: vec![vec![ReaderOp::BeginRead, ReaderOp::ReadAll]],
        };
        let schedules = w.schedules();
        assert_eq!(schedules.len() as u64, w.schedule_count()); // C(5,2) = 10
        assert_eq!(schedules.len(), 10);
        // per-actor order is preserved in every interleaving
        for s in &schedules {
            let writer: Vec<&Step> = s.iter().filter(|x| matches!(x, Step::W(_))).collect();
            assert_eq!(writer.len(), 3);
            assert!(matches!(writer[0], Step::W(WriterOp::Begin)));
            assert!(matches!(writer[2], Step::W(WriterOp::Commit)));
        }
    }

    #[test]
    fn two_readers_count() {
        let w = Workload {
            writer: vec![WriterOp::Insert(vec![(2, 3)])],
            readers: vec![vec![ReaderOp::ReadAll], vec![ReaderOp::ReadAll]],
        };
        // 3 steps, multinomial 3!/(1!1!1!) = 6
        assert_eq!(w.schedule_count(), 6);
        assert_eq!(w.schedules().len(), 6);
    }

    #[test]
    fn clean_history_has_no_anomalies() {
        let h = vec![
            Step::R(0, ReaderOp::BeginRead),
            Step::W(WriterOp::Insert(vec![(2, 3)])),
            Step::R(0, ReaderOp::ReadAll),
            Step::W(WriterOp::Insert(vec![(3, 4)])),
            Step::R(0, ReaderOp::ReadAll),
            Step::R(0, ReaderOp::EndRead),
            Step::R(0, ReaderOp::ReadAll),
        ];
        let out = run_history(&h, FaultMode::None);
        assert!(out.anomalies.is_empty(), "{:?}", out.anomalies);
        assert_eq!(out.reads, 3);
        // the txn reads saw one generation; the last read saw a newer one
        assert_eq!(out.generations_read.len(), 2);
    }

    #[test]
    fn dirty_read_fault_is_caught_and_shrunk() {
        let w = Workload {
            writer: vec![
                WriterOp::Insert(vec![(2, 3)]),
                WriterOp::Begin,
                WriterOp::Insert(vec![(3, 4)]),
                WriterOp::Commit,
            ],
            readers: vec![vec![ReaderOp::ReadAll]],
        };
        let failure = sweep(&w, FaultMode::DirtyRead, 1).expect_err("planted fault must be caught");
        assert!(!failure.anomalies.is_empty());
        // the witness reproduces with as few steps as possible: the fault
        // fires on any schedule where the read lands mid-transaction, so
        // the minimal history is begin, dirty insert, read.
        assert!(
            failure.witness.len() <= 3,
            "witness not minimal:\n{}",
            render_history(&failure.witness)
        );
        let replay = run_history(&failure.witness, FaultMode::DirtyRead);
        assert!(!replay.anomalies.is_empty(), "witness must still fail");
    }

    #[test]
    fn ubu_publishes_one_generation_per_iteration() {
        let h = vec![
            Step::R(0, ReaderOp::ReadAll),
            Step::W(WriterOp::Ubu { iters: 3 }),
            Step::R(0, ReaderOp::ReadAll),
        ];
        let out = run_history(&h, FaultMode::None);
        assert!(out.anomalies.is_empty(), "{:?}", out.anomalies);
    }
}
