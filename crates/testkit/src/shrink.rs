//! Counterexample shrinking and replay files.
//!
//! When the harness finds a failing graph it greedily minimizes it: drop
//! edge chunks (halving chunk sizes, ddmin style), then trailing isolated
//! vertices, re-checking the failure predicate after every candidate
//! removal. The surviving minimal case is serialized into a plain-text
//! replay file that reconstructs the exact graph — node count, direction
//! flag, edges with weights, node weights, labels — with no dependence on
//! any generator or RNG.

use aio_graph::Graph;

/// An explicit, generator-free graph description (stored-edge form).
#[derive(Clone, Debug, PartialEq)]
pub struct CaseGraph {
    pub n: usize,
    /// The semantic flag; edges below are the *stored* (already
    /// symmetrized) representation either way.
    pub directed: bool,
    pub edges: Vec<(u32, u32, f64)>,
    pub node_weights: Vec<f64>,
    pub labels: Vec<u32>,
}

impl CaseGraph {
    pub fn from_graph(g: &Graph) -> CaseGraph {
        CaseGraph {
            n: g.node_count(),
            directed: g.directed,
            edges: g.edges().collect(),
            node_weights: g.node_weights.clone(),
            labels: g.labels.clone(),
        }
    }

    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::from_edges(self.n, &self.edges, true);
        g.directed = self.directed;
        g.node_weights = self.node_weights.clone();
        g.labels = self.labels.clone();
        g
    }
}

/// Generic delta-debugging minimization: the smallest subsequence of
/// `items` (greedy chunk removal with halving chunk sizes) for which
/// `fails` still returns `true`. The predicate must be deterministic;
/// the full input is assumed failing. Used for graph edges here and for
/// interleaved-schedule witnesses in [`crate::mvcc`].
pub fn ddmin<T: Clone>(items: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progress = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = cur.clone();
            candidate.drain(start..end);
            if fails(&candidate) {
                cur = candidate;
                progress = true;
                // same `start` now points at the next chunk
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progress {
            break;
        }
        if chunk > 1 {
            chunk /= 2;
        }
    }
    cur
}

/// Greedily shrink `case` while `fails` keeps returning `true` for the
/// shrunk graph. The predicate must be deterministic; the input case is
/// assumed failing.
pub fn shrink(case: &CaseGraph, fails: impl Fn(&Graph) -> bool) -> CaseGraph {
    let mut cur = case.clone();
    // phase 1: ddmin over edges
    cur.edges = ddmin(&case.edges, |edges| {
        let mut candidate = case.clone();
        candidate.edges = edges.to_vec();
        fails(&candidate.to_graph())
    });
    // phase 2: compact to the vertices still referenced by an edge,
    // remapping ids to 0..k (order-preserving); keep only if still failing
    let mut used: Vec<u32> = cur.edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
    used.sort_unstable();
    used.dedup();
    if !used.is_empty() && used.len() < cur.n {
        let mut remap = vec![u32::MAX; cur.n];
        for (new, &old) in used.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let candidate = CaseGraph {
            n: used.len(),
            directed: cur.directed,
            edges: cur
                .edges
                .iter()
                .map(|&(u, v, w)| (remap[u as usize], remap[v as usize], w))
                .collect(),
            node_weights: used.iter().map(|&v| cur.node_weights[v as usize]).collect(),
            labels: used.iter().map(|&v| cur.labels[v as usize]).collect(),
        };
        if fails(&candidate.to_graph()) {
            cur = candidate;
        }
    }
    cur
}

/// A self-contained failing-case record: the algorithm, a description of
/// the failure, and the exact minimal graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Replay {
    pub algo: String,
    pub detail: String,
    pub case: CaseGraph,
}

impl Replay {
    pub fn graph(&self) -> Graph {
        self.case.to_graph()
    }

    /// Serialize to the replay text format (one `key: value` or record
    /// line per row; floats via `{:?}` so the round-trip is bit-exact).
    pub fn render(&self) -> String {
        let c = &self.case;
        let mut out = String::from("aio-testkit-replay v1\n");
        out.push_str(&format!("algo: {}\n", self.algo));
        out.push_str(&format!("detail: {}\n", self.detail.replace('\n', " ")));
        out.push_str(&format!("directed: {}\n", c.directed));
        out.push_str(&format!("nodes: {}\n", c.n));
        for v in 0..c.n {
            out.push_str(&format!(
                "node: {} {:?} {}\n",
                v, c.node_weights[v], c.labels[v]
            ));
        }
        for &(u, v, w) in &c.edges {
            out.push_str(&format!("edge: {u} {v} {w:?}\n"));
        }
        out
    }

    pub fn parse(text: &str) -> Result<Replay, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("aio-testkit-replay v1") {
            return Err("missing replay header".into());
        }
        let mut algo = None;
        let mut detail = String::new();
        let mut directed = None;
        let mut n = None;
        let mut node_weights = Vec::new();
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(':').ok_or_else(|| format!("bad line: {line}"))?;
            let rest = rest.trim();
            match key {
                "algo" => algo = Some(rest.to_string()),
                "detail" => detail = rest.to_string(),
                "directed" => {
                    directed = Some(rest.parse::<bool>().map_err(|e| e.to_string())?)
                }
                "nodes" => n = Some(rest.parse::<usize>().map_err(|e| e.to_string())?),
                "node" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    if f.len() != 3 {
                        return Err(format!("bad node line: {line}"));
                    }
                    node_weights.push(f[1].parse::<f64>().map_err(|e| e.to_string())?);
                    labels.push(f[2].parse::<u32>().map_err(|e| e.to_string())?);
                }
                "edge" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    if f.len() != 3 {
                        return Err(format!("bad edge line: {line}"));
                    }
                    edges.push((
                        f[0].parse::<u32>().map_err(|e| e.to_string())?,
                        f[1].parse::<u32>().map_err(|e| e.to_string())?,
                        f[2].parse::<f64>().map_err(|e| e.to_string())?,
                    ));
                }
                other => return Err(format!("unknown replay key {other}")),
            }
        }
        let n = n.ok_or("missing nodes line")?;
        if node_weights.len() != n {
            return Err(format!("expected {n} node lines, got {}", node_weights.len()));
        }
        Ok(Replay {
            algo: algo.ok_or("missing algo line")?,
            detail,
            case: CaseGraph {
                n,
                directed: directed.ok_or("missing directed line")?,
                edges,
                node_weights,
                labels,
            },
        })
    }

    /// Write the replay under `dir`; returns the file path.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("replay-{}.txt", self.algo));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_graph::{generate, GraphKind};

    #[test]
    fn replay_roundtrips_bit_exactly() {
        let g = generate(GraphKind::PowerLaw, 15, 40, true, 91);
        let r = Replay {
            algo: "wcc".into(),
            detail: "synthetic\nmultiline".into(),
            case: CaseGraph::from_graph(&g),
        };
        let parsed = Replay::parse(&r.render()).unwrap();
        assert_eq!(parsed.case, r.case);
        let g2 = parsed.graph();
        assert_eq!(g2.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        assert_eq!(g2.node_weights, g.node_weights);
        assert_eq!(g2.labels, g.labels);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Replay::parse("not a replay").is_err());
        assert!(Replay::parse("aio-testkit-replay v1\nwat: 3\n").is_err());
        assert!(Replay::parse("aio-testkit-replay v1\nalgo: x\ndirected: true\nnodes: 2\n").is_err());
    }

    #[test]
    fn shrink_reaches_the_known_minimal_core() {
        // failure predicate: "has any edge" — the minimum failing graph is
        // one edge between two compacted vertices
        let g = generate(GraphKind::Uniform, 20, 60, true, 92);
        let case = CaseGraph::from_graph(&g);
        let fails = |g: &Graph| g.edge_count() >= 1;
        assert!(fails(&case.to_graph()), "seed case must fail");
        let min = shrink(&case, fails);
        assert_eq!(min.edges.len(), 1, "{:?}", min.edges);
        assert_eq!(min.n, 2);
        let (u, v, _) = min.edges[0];
        assert_eq!((u.min(v), u.max(v)), (0, 1));
        assert!(fails(&min.to_graph()));
    }

    #[test]
    fn ddmin_finds_a_minimal_failing_subsequence() {
        // failure: contains at least one 7 and one 3, in that order
        let items: Vec<i32> = vec![1, 7, 2, 9, 3, 7, 4, 3, 5];
        let fails = |xs: &[i32]| {
            let i7 = xs.iter().position(|&x| x == 7);
            matches!(i7, Some(i) if xs[i..].contains(&3))
        };
        assert!(fails(&items));
        let min = ddmin(&items, fails);
        assert_eq!(min, vec![7, 3]);
    }

    #[test]
    fn ddmin_keeps_a_one_element_witness() {
        let min = ddmin(&[5], |xs: &[i32]| !xs.is_empty());
        assert_eq!(min, vec![5]);
    }

    #[test]
    fn shrink_is_a_noop_when_nothing_can_go() {
        let case = CaseGraph {
            n: 2,
            directed: true,
            edges: vec![(0, 1, 1.0)],
            node_weights: vec![1.0; 2],
            labels: vec![0; 2],
        };
        let min = shrink(&case, |g| g.edge_count() >= 1);
        assert_eq!(min, case);
    }
}
