//! # aio-testkit — differential & metamorphic correctness harness
//!
//! The paper's central claim is *equivalence*: every Table 2 algorithm
//! authored in with+ computes the same answer as its native graph-engine
//! formulation (Section 7) and, where Table 1 says it is expressible, as
//! SQL'99 `WITH`. This crate turns that claim into an executable test
//! matrix:
//!
//! * [`corpus`] — seeded graph families (Erdős–Rényi, power-law, DAG,
//!   disconnected, self-loop/multi-edge) rebuilt bit-identically from
//!   `(kind, n, m, directed, seed)`;
//! * [`exec`] — one uniform entry point that routes an algorithm key to any
//!   applicable executor: the with+ PSM under each RDBMS profile ×
//!   parallelism setting, the SQL'99 baseline, the three native stand-ins,
//!   and the textbook oracles;
//! * [`result`] — normalized result values compared under the per-algorithm
//!   [`Tolerance`](aio_algos::registry::Tolerance) rules (exact for
//!   set/integer answers, epsilon + rank-order for float scores);
//! * [`diff`] — the algorithm × engine × parallelism matrix driver, with
//!   per-iteration divergence localization via PSM state snapshots;
//! * [`meta`] — metamorphic relations (vertex relabeling, edge-order
//!   shuffling, isolated-vertex addition);
//! * [`ivm`] — the incremental-vs-recompute matrix for live graphs:
//!   mutation scripts applied through `Database::apply_edges`, with the
//!   maintained view checked against a cold rebuild after every batch,
//!   plus batch-metamorphic relations and seed-fault shrinking;
//! * [`patterns`] — the cyclic-pattern differential layer pitting the
//!   worst-case-optimal multiway join against forced binary join trees
//!   and the optimizer sweep on triangle/4-cycle/diamond/clique queries;
//! * [`shrink`] — greedy delta-debugging of a failing graph to a minimal
//!   counterexample, plus bit-reproducible replay files;
//! * [`mvcc`] — the deterministic interleaving scheduler: enumerate every
//!   writer/reader schedule of a workload, execute each single-threaded
//!   through MVCC sessions, and check snapshot isolation against a
//!   committed-generation history (failing schedules ddmin to a minimal
//!   witness).

pub mod corpus;
pub mod diff;
pub mod exec;
pub mod ivm;
pub mod meta;
pub mod mvcc;
pub mod patterns;
pub mod result;
pub mod shrink;

pub use corpus::{corpus_graphs, NamedGraph};
pub use diff::{run_matrix, Divergence, MatrixConfig, MatrixReport};
pub use exec::{
    executors_for, executors_for_cfg, executors_for_opt, run_algo, ExecKind, Executor, Params,
};
pub use ivm::{
    check_batch_metamorphic as check_ivm_metamorphic, check_net_zero_batch, ivm_corpus,
    run_ivm_case, run_ivm_matrix, scripts_for, shrink_ivm_case, IvmDivergence, IvmMatrixConfig,
    IvmMatrixReport, MutationScript, IVM_ALGOS,
};
pub use meta::{check_metamorphic, MetaRelation, META_ALGOS};
pub use patterns::{
    default_patterns, pattern_corpus, run_pattern_matrix, Pattern, PatternMatrixConfig,
};
pub use mvcc::{
    render_history, run_history, sweep, FaultMode, HistoryOutcome, ReaderOp, Step, SweepFailure,
    SweepStats, Workload, WriterOp,
};
pub use result::AlgoResult;
pub use shrink::{ddmin, shrink, CaseGraph, Replay};
