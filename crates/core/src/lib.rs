//! # aio-core — the public facade of the `all-in-one` library
//!
//! A from-scratch Rust reproduction of *"All-in-One: Graph Processing in
//! RDBMSs Revisited"* (Kangfei Zhao & Jeffrey Xu Yu, SIGMOD 2017).
//!
//! Everything a downstream user needs, re-exported:
//!
//! * [`storage`] — relations, schemas, catalog, indexes, and durability: a
//!   framed write-ahead log with snapshot checkpoints and crash recovery
//!   (plus the paper's simulated WAL cost model);
//! * [`algebra`] — the six basic operations plus the paper's four (MM-join,
//!   MV-join, anti-join, union-by-update), logical plans and engine
//!   profiles emulating Oracle / DB2 / PostgreSQL;
//! * [`datalog`] — dependency graphs, stratification, XY-stratification;
//! * [`withplus`] — the enhanced recursive `WITH` clause ("with+"): parser,
//!   Theorem 5.1 validation, PSM compilation/execution, and the SQL'99
//!   baseline with the Table 1 feature matrix;
//! * [`graph`] — CSR graphs, synthetic stand-ins for the paper's nine SNAP
//!   datasets, and native comparator engines;
//! * [`algos`] — the paper's graph algorithms as with+ programs;
//! * [`trace`] — hierarchical spans, per-iteration fixpoint telemetry and
//!   EXPLAIN ANALYZE plumbing shared by every execution engine;
//! * [`metrics`] — the engine-wide metrics registry: counters, gauges and
//!   histograms fed by every layer, per-query [`metrics::QueryReport`]s,
//!   Prometheus/JSON export, and the self-queryable `aio_metrics` /
//!   `aio_query_log` system relations.
//!
//! ## Quickstart
//!
//! ```
//! use aio_core::prelude::*;
//!
//! // an embedded database emulating Oracle's physical behaviour
//! let mut db = Database::new(oracle_like());
//!
//! // a little graph: E(F, T, ew)
//! let mut e = Relation::new(edge_schema());
//! e.extend([row![1, 2, 1.0], row![2, 3, 1.0], row![3, 1, 1.0]]).unwrap();
//! db.create_table("E", e).unwrap();
//!
//! // recursive SQL with the enhanced with clause
//! let out = db.execute(
//!     "with TC(F, T) as (
//!        (select E.F, E.T from E)
//!        union
//!        (select TC.F, E.T from TC, E where TC.T = E.F))
//!      select * from TC").unwrap();
//! assert_eq!(out.relation.len(), 9); // full closure of a 3-cycle
//! ```

pub use aio_algebra as algebra;
pub use aio_algos as algos;
pub use aio_datalog as datalog;
pub use aio_graph as graph;
pub use aio_metrics as metrics;
pub use aio_storage as storage;
pub use aio_trace as trace;
pub use aio_withplus as withplus;

/// The set of names most programs want in scope.
pub mod prelude {
    pub use aio_algebra::{
        all_profiles, db2_like, oracle_like, postgres_like, AntiJoinImpl, EngineProfile,
        Semiring, UbuImpl, BOOLEAN, COUNTING, TROPICAL,
    };
    pub use aio_graph::{generate, DatasetSpec, Graph, GraphKind, DATASETS};
    pub use aio_storage::{
        edge_schema, node_schema, row, CheckpointStats, InterruptedRun, RecoveryReport, Relation,
        Schema, SimVfs, StdVfs, UnsyncedFate, Value, Vfs,
    };
    pub use aio_trace::{Trace, Tracer};
    pub use aio_withplus::{
        Database, EdgeDelta, ExplainOutput, QueryResult, RefreshReport, ResultDelta, RunStats,
        Session, SharedDatabase, WithPlusError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_runs() {
        let mut db = Database::new(oracle_like());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        let out = db.execute("select E.T from E").unwrap();
        assert_eq!(out.relation.len(), 1);
    }
}
