//! Keyword-Search (Section 7, after BANKS): find roots of Steiner trees —
//! each node keeps an indicator vector over the query keywords, OR-folded
//! from its out-neighbours per iteration; after `depth` iterations the
//! nodes whose vector is all-ones can reach every keyword within `depth`
//! hops. Logic OR is the `(max, ×)` semiring per keyword; self-loops keep
//! a node's own bits.
//!
//! The paper's test: 3 labels, depth 4.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashSet;
use aio_withplus::{QueryResult, Result};

/// The indicator columns are seeded from the label relation `L` with
/// boolean expressions (`1.0 * (L.lbl = k)`).
pub fn sql(labels: [i64; 3], depth: usize) -> String {
    let (l0, l1, l2) = (labels[0], labels[1], labels[2]);
    format!(
        "with K(ID, b0, b1, b2) as (
           (select L.ID, 1.0 * (L.lbl = {l0}), 1.0 * (L.lbl = {l1}), 1.0 * (L.lbl = {l2}) from L)
           union by update ID
           (select E.F, max(K.b0 * E.ew), max(K.b1 * E.ew), max(K.b2 * E.ew)
            from K, E where K.ID = E.T group by E.F)
           maxrecursion {depth})
         select K.ID from K where K.b0 + K.b1 + K.b2 > 2.5"
    )
}

/// Run KS; returns the Steiner-tree root candidates.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    labels: [i64; 3],
    depth: usize,
) -> Result<(FxHashSet<i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::WithLoops(1.0))?;
    let out = db.execute(&sql(labels, depth))?;
    let roots = out
        .relation
        .iter()
        .filter_map(|r| r[0].as_int())
        .collect();
    Ok((roots, out))
}

/// Reference: node v is a root iff for each keyword some node with that
/// label is reachable from v within `depth` hops.
pub fn reference_ks(g: &Graph, labels: [i64; 3], depth: usize) -> FxHashSet<i64> {
    use std::collections::VecDeque;
    let mut roots = FxHashSet::default();
    for s in 0..g.node_count() as u32 {
        let mut dist = vec![u32::MAX; g.node_count()];
        dist[s as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        let mut found = [false; 3];
        while let Some(v) = q.pop_front() {
            for (k, &l) in labels.iter().enumerate() {
                if g.labels[v as usize] as i64 == l {
                    found[k] = true;
                }
            }
            if dist[v as usize] >= depth as u32 {
                continue;
            }
            for &w in g.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        if found.iter().all(|&f| f) {
            roots.insert(s as i64);
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile) {
        let labels = [0i64, 1, 2];
        let (roots, _) = run(g, profile, labels, 4).unwrap();
        assert_eq!(roots, reference_ks(g, labels, 4));
    }

    #[test]
    fn matches_reference() {
        let g = generate(GraphKind::PowerLaw, 100, 400, true, 121);
        check(&g, &oracle_like());
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::Uniform, 70, 280, true, 122);
        for p in all_profiles() {
            check(&g, &p);
        }
    }

    #[test]
    fn depth_limits_reach() {
        // chain 0→1→2→3 with labels 0,1,2 at nodes 1,2,3: node 0 needs
        // depth 3 to see them all
        let mut g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], true);
        g.labels = vec![7, 0, 1, 2];
        let (roots3, _) = run(&g, &oracle_like(), [0, 1, 2], 3).unwrap();
        assert!(roots3.contains(&0));
        let (roots2, _) = run(&g, &oracle_like(), [0, 1, 2], 2).unwrap();
        assert!(!roots2.contains(&0), "depth 2 cannot reach label 2");
    }

    #[test]
    fn node_carrying_all_labels_impossible_with_three() {
        // a node can carry at most one label, so an isolated node is never
        // a root for three distinct keywords
        let mut g = Graph::from_edges(2, &[(0, 1, 1.0)], true);
        g.labels = vec![0, 1];
        let (roots, _) = run(&g, &oracle_like(), [0, 1, 2], 4).unwrap();
        assert!(roots.is_empty());
    }
}
