//! Weakly Connected Components (Eq. 6): min-label flooding via MV-join
//! with the `(min, ×)` semiring + union-by-update, linear recursion.
//!
//! Initially `vw = ID`; at the fixpoint every node carries the smallest id
//! of its component. Weak connectivity needs the symmetrized edges (our
//! undirected graphs are stored both ways; directed graphs get their
//! reverse edges added here), and self-loops keep a node's own label in
//! the `min`.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::{row, FxHashMap};
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with C(ID, vw) as (
  (select V.ID, 1.0 * V.ID from V)
  union by update ID
  (select E.T, min(C.vw * E.ew) from C, E where C.ID = E.F group by E.T))
select * from C";

/// Run WCC; returns id → smallest component id.
pub fn run(g: &Graph, profile: &EngineProfile) -> Result<(FxHashMap<i64, i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::WithLoops(1.0))?;
    if g.directed {
        // weak connectivity: add the reverse edges
        let mut extra = Vec::new();
        for (u, v, w) in g.edges() {
            extra.push(row![v as i64, u as i64, w]);
        }
        db.catalog.relation_mut("E")?.rows_mut().extend(extra);
    }
    let out = db.execute(SQL)?;
    Ok((common::node_i64_map(&out.relation), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile) {
        let (labels, _) = run(g, profile).unwrap();
        let expected = reference::wcc_min_label(g);
        for (v, &l) in expected.iter().enumerate() {
            assert_eq!(labels[&(v as i64)], l as i64, "node {v}");
        }
    }

    #[test]
    fn matches_reference_on_undirected() {
        let g = generate(GraphKind::Uniform, 120, 200, false, 21);
        check(&g, &oracle_like());
    }

    #[test]
    fn directed_graph_uses_weak_connectivity() {
        // chain 0→1→2 and isolated 3: weakly one component {0,1,2}
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0)], true);
        let (labels, _) = run(&g, &oracle_like()).unwrap();
        assert_eq!(labels[&0], 0);
        assert_eq!(labels[&1], 0);
        assert_eq!(labels[&2], 0);
        assert_eq!(labels[&3], 3);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::PowerLaw, 90, 150, false, 22);
        for p in all_profiles() {
            check(&g, &p);
        }
    }

    #[test]
    fn converges_and_counts_components() {
        let g = generate(GraphKind::Uniform, 200, 120, false, 23);
        let (labels, out) = run(&g, &oracle_like()).unwrap();
        let expected = reference::wcc_min_label(&g);
        let mut comp_sql: Vec<i64> = labels.values().copied().collect();
        comp_sql.sort_unstable();
        comp_sql.dedup();
        let mut comp_ref: Vec<u32> = expected.clone();
        comp_ref.sort_unstable();
        comp_ref.dedup();
        assert_eq!(comp_sql.len(), comp_ref.len());
        assert!(!out.stats.iterations.is_empty());
    }
}
