//! Single-source shortest paths, Bellman-Ford (Eq. 7): the tropical
//! `(min, +)` semiring via MV-join + union-by-update, linear recursion.
//!
//! `vw` starts at 0 for the source and +∞ elsewhere; zero-weight self-loops
//! (the tropical ⊙-identity) keep a node's own distance in the `min`.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with D(ID, vw) as (
  (select V.ID, V.vw from V)
  union by update ID
  (select E.T, min(D.vw + E.ew) from D, E where D.ID = E.F group by E.T))
select * from D";

/// Run Bellman-Ford from `src`; returns id → distance (∞ if unreachable).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    src: u32,
) -> Result<(FxHashMap<i64, f64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::WithLoops(0.0))?;
    for row in db.catalog.relation_mut("V")?.rows_mut() {
        let id = row[0].as_int().unwrap();
        row[1] = if id == src as i64 { 0.0 } else { f64::INFINITY }.into();
    }
    let out = db.execute(SQL)?;
    Ok((common::node_f64_map(&out.relation), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};
    use rand::{Rng, SeedableRng};

    fn check(g: &Graph, src: u32, profile: &EngineProfile) {
        let (dist, _) = run(g, profile, src).unwrap();
        let expected = reference::bellman_ford(g, src);
        for (v, &d) in expected.iter().enumerate() {
            let got = dist[&(v as i64)];
            if d.is_infinite() {
                assert!(got.is_infinite(), "node {v}");
            } else {
                assert!((got - d).abs() < 1e-9, "node {v}: {got} vs {d}");
            }
        }
    }

    #[test]
    fn unit_weights_match_bfs_levels() {
        let g = generate(GraphKind::PowerLaw, 100, 400, true, 31);
        check(&g, 0, &oracle_like());
    }

    #[test]
    fn random_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let edges: Vec<(u32, u32, f64)> = (0..300)
            .map(|_| {
                (
                    rng.random_range(0..80u32),
                    rng.random_range(0..80u32),
                    rng.random_range(0.1..5.0),
                )
            })
            .filter(|(u, v, _)| u != v)
            .collect();
        let g = Graph::from_edges(80, &edges, true);
        check(&g, 5, &oracle_like());
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::Uniform, 70, 250, true, 32);
        for p in all_profiles() {
            check(&g, 1, &p);
        }
    }

    #[test]
    fn iterations_bounded_by_hops() {
        // a path graph needs exactly n-1 relaxation rounds (+1 to detect
        // the fixpoint)
        let edges: Vec<(u32, u32, f64)> = (0..9).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(10, &edges, true);
        let (_, out) = run(&g, &oracle_like(), 0).unwrap();
        assert_eq!(out.stats.iterations.len(), 10);
    }
}
