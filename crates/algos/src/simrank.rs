//! SimRank (Eq. 11): pairwise structural similarity — two MM-joins per
//! iteration over the similarity matrix `K(F, T, ew)` plus the
//! diagonal-restoring `max` against the identity matrix `I`.
//!
//! `S' = C · Êᵀ S Ê` with `Ê` the in-degree-normalized adjacency, then
//! `S'(a,a) = 1`. Quadratic in |V| — small graphs only, as in the paper
//! (SimRank is in Table 2 but not among the ten evaluated algorithms).

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::{row, DataType, FxHashMap, Relation, Schema};
use aio_withplus::{QueryResult, Result};

pub fn sql(iters: usize) -> String {
    format!(
        "with K(F, T, ew) as (
           (select I.F, I.T, I.ew from I)
           union by update F, T
           (select R2.F, R2.T, greatest(:c * R2.ew, coalesce(I.ew, 0.0))
            from R2 left outer join I on R2.F = I.F and R2.T = I.T
            computed by
              R1(F, T, ew) as select K.F, EN.T, sum(K.ew * EN.ew) from K, EN
                             where K.T = EN.F group by K.F, EN.T;
              R2(F, T, ew) as select EN.T, R1.T, sum(EN.ew * R1.ew) from EN, R1
                             where EN.F = R1.F group by EN.T, R1.T;)
           maxrecursion {iters})
         select * from K"
    )
}

/// `(a, b) → similarity` map produced by [`run`].
pub type PairScores = FxHashMap<(i64, i64), f64>;

/// Run SimRank; returns (a, b) → similarity.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    c: f64,
    iters: usize,
) -> Result<(PairScores, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    // EN: in-degree-normalized edges Ê(i, a) = 1/|I(a)| per edge i→a
    let mut indeg = vec![0usize; g.node_count()];
    for (_, v, _) in g.edges() {
        indeg[v as usize] += 1;
    }
    let en_schema = Schema::of(&[
        ("F", DataType::Int),
        ("T", DataType::Int),
        ("ew", DataType::Float),
    ]);
    let mut en = Relation::new(en_schema);
    for (u, v, _) in g.edges() {
        en.push(row![u as i64, v as i64, 1.0 / indeg[v as usize] as f64])?;
    }
    db.create_table("EN", en)?;
    // I: the identity matrix (diagonal only)
    let i_schema = Schema::of(&[
        ("F", DataType::Int),
        ("T", DataType::Int),
        ("ew", DataType::Float),
    ]);
    let mut ident = Relation::new(i_schema);
    for v in 0..g.node_count() {
        ident.push(row![v as i64, v as i64, 1.0])?;
    }
    db.create_table("I", ident)?;
    db.set_param("c", c);
    let out = db.execute(&sql(iters))?;
    let map = out
        .relation
        .iter()
        .filter_map(|r| Some(((r[0].as_int()?, r[1].as_int()?), r[2].as_f64()?)))
        .collect();
    Ok((map, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, iters: usize) {
        let (sim, _) = run(g, &oracle_like(), 0.8, iters).unwrap();
        let expected = reference::simrank(g, 0.8, iters);
        for (i, row) in expected.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                let got = sim.get(&(i as i64, j as i64)).copied().unwrap_or(0.0);
                assert!(
                    (got - s).abs() < 1e-9,
                    "s({i},{j}): {got} vs {s}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_simrank() {
        let g = generate(GraphKind::Uniform, 15, 40, true, 141);
        check(&g, 6);
    }

    #[test]
    fn co_cited_nodes_are_similar() {
        // 0→2, 1→2: nodes 0 and 1 share an... actually 0,1 have no
        // in-neighbours; instead 2←0, 2←1 makes (0,1) similar via their
        // *future*: use 2→0, 2→1 so 0 and 1 share in-neighbour 2
        let g = Graph::from_edges(3, &[(2, 0, 1.0), (2, 1, 1.0)], true);
        let (sim, _) = run(&g, &oracle_like(), 0.8, 5).unwrap();
        let s01 = sim.get(&(0, 1)).copied().unwrap_or(0.0);
        assert!((s01 - 0.8).abs() < 1e-9, "s(0,1) = C = 0.8, got {s01}");
        assert_eq!(sim[&(0, 0)], 1.0);
    }

    #[test]
    fn diagonal_stays_one() {
        let g = generate(GraphKind::Uniform, 10, 30, true, 142);
        let (sim, _) = run(&g, &oracle_like(), 0.8, 4).unwrap();
        for v in 0..10 {
            assert_eq!(sim[&(v, v)], 1.0);
        }
    }
}
