//! Label-Propagation (Section 7): every node synchronously adopts the
//! label with the maximum `count` among its in-neighbours (ties broken by
//! the larger label), for a fixed number of iterations — `count`
//! aggregation + union-by-update, linear recursion.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

pub fn sql(iters: usize) -> String {
    format!(
        "with Lab(ID, lbl) as (
           (select L.ID, L.lbl from L)
           union by update ID
           (select New.ID, New.lbl from New
            computed by
              Cnt(ID, lbl, c) as select E.T, Lab.lbl, count(*) from E, Lab
                                where E.F = Lab.ID group by E.T, Lab.lbl;
              Best(ID, bc) as select Cnt.ID, max(Cnt.c) from Cnt group by Cnt.ID;
              New(ID, lbl) as select Cnt.ID, max(Cnt.lbl) from Cnt, Best
                             where Cnt.ID = Best.ID and Cnt.c = Best.bc
                             group by Cnt.ID;)
           maxrecursion {iters})
         select * from Lab"
    )
}

/// Run LP for `iters` iterations; returns id → label.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    iters: usize,
) -> Result<(FxHashMap<i64, i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    let out = db.execute(&sql(iters))?;
    Ok((common::node_i64_map(&out.relation), out))
}

/// Reference: synchronous LP with identical tie-breaking.
pub fn reference_lp(g: &Graph, iters: usize) -> Vec<i64> {
    let n = g.node_count();
    let mut labels: Vec<i64> = g.labels.iter().map(|&l| l as i64).collect();
    let rev = g.reverse();
    for _ in 0..iters {
        let mut next = labels.clone();
        for v in 0..n as u32 {
            let mut counts: FxHashMap<i64, usize> = FxHashMap::default();
            for &u in rev.neighbors(v) {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue; // no in-neighbours: union-by-update keeps
            }
            let best = counts
                .iter()
                .map(|(&l, &c)| (c, l))
                .max()
                .map(|(_, l)| l)
                .unwrap();
            next[v as usize] = best;
        }
        labels = next;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile, iters: usize) {
        let (labels, _) = run(g, profile, iters).unwrap();
        let expected = reference_lp(g, iters);
        for (v, &l) in expected.iter().enumerate() {
            assert_eq!(labels[&(v as i64)], l, "node {v}");
        }
    }

    #[test]
    fn matches_reference_on_undirected() {
        let g = generate(GraphKind::PowerLaw, 120, 500, false, 91);
        check(&g, &oracle_like(), 15);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::Uniform, 80, 320, false, 92);
        for p in all_profiles() {
            check(&g, &p, 8);
        }
    }

    #[test]
    fn majority_label_takes_over_a_clique() {
        // complete graph where 7 of 8 nodes carry label 5: the minority
        // node adopts 5 in one round and the majority keeps it
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v {
                    edges.push((u, v, 1.0));
                }
            }
        }
        let mut g = Graph::from_edges(8, &edges, true);
        g.labels = vec![5, 5, 5, 5, 5, 5, 5, 2];
        let (labels, _) = run(&g, &oracle_like(), 3).unwrap();
        assert!(labels.values().all(|&l| l == 5), "{labels:?}");
    }

    #[test]
    fn isolated_nodes_keep_their_label() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)], true);
        let (labels, _) = run(&g, &oracle_like(), 3).unwrap();
        assert_eq!(labels[&2], g.labels[2] as i64);
        assert_eq!(labels[&0], g.labels[0] as i64, "no in-edges: kept");
    }
}
