//! HITS (Eq. 12, Fig. 6): mutual recursion between hub and authority
//! scores, emulated with a single recursive relation `H(ID, h, a)` and a
//! `computed by` chain, exactly as Section 6 prescribes.
//!
//! Per iteration: `a ← Eᵀh`, `h ← E a`, then joint 2-norm normalization
//! through a global aggregate crossed back in (`R_n` is "a relation with a
//! single tuple for the normalization purpose").

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

/// Fig. 6 adapted to this dialect.
pub fn sql(iters: usize) -> String {
    format!(
        "with H(ID, h, a) as (
           (select V.ID, 1.0, 1.0 from V)
           union by update ID
           (select R_ha.ID, R_ha.h / sqrt(R_n.nh), R_ha.a / sqrt(R_n.na)
            from R_ha, R_n
            computed by
              H_h(ID, h) as select H.ID, H.h from H;
              R_a(ID, a) as select E.T, sum(H_h.h * E.ew) from H_h, E
                           where H_h.ID = E.F group by E.T;
              R_h(ID, h) as select E.F, sum(R_a.a * E.ew) from R_a, E
                           where R_a.ID = E.T group by E.F;
              R_ha(ID, h, a) as select R_a.ID, R_h.h, R_a.a from R_a, R_h
                               where R_a.ID = R_h.ID;
              R_n(nh, na) as select sum(R_ha.h * R_ha.h), sum(R_ha.a * R_ha.a)
                            from R_ha;)
           maxrecursion {iters})
         select * from H"
    )
}

/// `id → (hub, authority)` map produced by [`run`].
pub type HubAuth = FxHashMap<i64, (f64, f64)>;

/// Run HITS; returns id → (hub, authority).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    iters: usize,
) -> Result<(HubAuth, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    let out = db.execute(&sql(iters))?;
    let map = out
        .relation
        .iter()
        .filter_map(|r| Some((r[0].as_int()?, (r[1].as_f64()?, r[2].as_f64()?))))
        .collect();
    Ok((map, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, GraphKind};

    /// Reference HITS restricted to the nodes the SQL formulation scores
    /// (nodes appearing in R_ha: with both in- and out-flavoured scores).
    fn check(g: &Graph, profile: &EngineProfile, iters: usize) {
        let (scores, _) = run(g, profile, iters).unwrap();
        let (h_ref, a_ref) = reference_hits_sql_style(g, iters);
        for (id, (h, a)) in &scores {
            let v = *id as usize;
            assert!((h - h_ref[v]).abs() < 1e-9, "hub {id}: {h} vs {}", h_ref[v]);
            assert!((a - a_ref[v]).abs() < 1e-9, "auth {id}: {a} vs {}", a_ref[v]);
        }
    }

    /// HITS exactly as the SQL computes it: update only nodes present in
    /// R_ha (union-by-update keeps others), normalize over R_ha.
    fn reference_hits_sql_style(g: &Graph, iters: usize) -> (Vec<f64>, Vec<f64>) {
        let n = g.node_count();
        let mut h = vec![1.0f64; n];
        let mut a = vec![1.0f64; n];
        for _ in 0..iters {
            let mut na = vec![0.0f64; n];
            let mut has_a = vec![false; n];
            for (u, v, w) in g.edges() {
                na[v as usize] += h[u as usize] * w;
                has_a[v as usize] = true;
            }
            let mut nh = vec![0.0f64; n];
            let mut has_h = vec![false; n];
            for (u, v, w) in g.edges() {
                if has_a[v as usize] {
                    nh[u as usize] += na[v as usize] * w;
                    has_h[u as usize] = true;
                }
            }
            let in_rha: Vec<bool> = (0..n).map(|v| has_a[v] && has_h[v]).collect();
            let norm_h: f64 = (0..n)
                .filter(|&v| in_rha[v])
                .map(|v| nh[v] * nh[v])
                .sum::<f64>()
                .sqrt();
            let norm_a: f64 = (0..n)
                .filter(|&v| in_rha[v])
                .map(|v| na[v] * na[v])
                .sum::<f64>()
                .sqrt();
            for v in 0..n {
                if in_rha[v] {
                    h[v] = nh[v] / norm_h;
                    a[v] = na[v] / norm_a;
                }
            }
        }
        (h, a)
    }

    #[test]
    fn matches_sql_style_reference() {
        let g = generate(GraphKind::PowerLaw, 60, 250, true, 61);
        check(&g, &oracle_like(), 10);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::PowerLaw, 40, 150, true, 62);
        for p in all_profiles() {
            check(&g, &p, 8);
        }
    }

    #[test]
    fn scored_hubs_have_unit_norm() {
        let g = generate(GraphKind::PowerLaw, 50, 200, true, 63);
        let (scores, _) = run(&g, &oracle_like(), 15).unwrap();
        // nodes the chain actually scored (value differs from the seed 1.0)
        let norm: f64 = scores
            .values()
            .filter(|(h, _)| *h != 1.0)
            .map(|(h, _)| h * h)
            .sum();
        assert!((norm.sqrt() - 1.0).abs() < 1e-6, "hub norm {norm}");
    }

    #[test]
    fn hub_authority_ordering_sensible() {
        // star: center 0 → leaves; leaves are authorities, 0 is the hub
        let edges: Vec<(u32, u32, f64)> = (1..6).map(|i| (0, i, 1.0)).collect();
        let g = Graph::from_edges(6, &edges, true);
        let (scores, _) = run(&g, &oracle_like(), 5).unwrap();
        let (h0, _) = scores[&0];
        let (_, a1) = scores[&1];
        assert!(h0 > 0.9, "center is the dominant hub: {h0}");
        assert!(a1 > 0.4, "leaves share authority: {a1}");
    }
}
