//! # aio-algos — the paper's graph algorithms as with+ programs
//!
//! Every algorithm of Table 2 that the SIGMOD'17 evaluation exercises
//! (and several more) expressed in the with+ SQL dialect and executed
//! through `aio-withplus`, each validated against a native reference
//! implementation:
//!
//! | module | algorithm | recursion | operations |
//! |---|---|---|---|
//! | [`tc`] | transitive closure (Fig. 1) | linear | `union` |
//! | [`bfs`] | BFS (Eq. 5) | linear | MV-join(max,×) + ⊎ |
//! | [`wcc`] | Connected-Component (Eq. 6) | linear | MV-join(min,×) + ⊎ |
//! | [`sssp`] | Bellman-Ford (Eq. 7) | linear | MV-join(min,+) + ⊎ |
//! | [`apsp`] | Floyd-Warshall (Eq. 8) | **nonlinear** | MM-join(min,+) + ⊎ |
//! | [`pagerank`] | PageRank (Eq. 9, Figs. 3/9) | linear | MV-join(sum,×) + ⊎ |
//! | [`rwr`] | Random-Walk-with-Restart (Eq. 10) | linear | MV-join + θ-join + ⊎ |
//! | [`simrank`] | SimRank (Eq. 11) | linear | 2×MM-join + ⊎ |
//! | [`hits`] | HITS (Eq. 12, Fig. 6) | **mutual** (emulated) | 2×MV-join + θ-join + agg + ⊎ |
//! | [`toposort`] | TopoSort (Eq. 13, Fig. 5) | nonlinear | anti-join + ∪ |
//! | [`kcore`] | K-core | nonlinear | agg + θ-join + ⊎(replace) |
//! | [`mis`] | Maximal-Independent-Set | nonlinear | random + anti-join + ⊎ |
//! | [`mnm`] | Maximal-Node-Matching | nonlinear | max-agg + θ-join + ⊎ |
//! | [`lp`] | Label-Propagation | linear | count-agg + ⊎ |
//! | [`ks`] | Keyword-Search | linear | MV-join(max,×)³ + ⊎ |
//! | [`mcl`] | Markov-Clustering | nonlinear | MM-join + agg + ⊎(replace) |
//! | [`ktruss`] | K-truss | nonlinear | triangle join + count-agg + ⊎(replace) |
//! | [`diameter`] | Diameter-Estimation | linear | sampled tropical MV-joins |
//! | [`bisim`] | Graph-Bisimulation | nonlinear | distinct + sum-hash signatures + ⊎ |

pub mod apsp;
pub mod bfs;
pub mod bisim;
pub mod common;
pub mod diameter;
pub mod hits;
pub mod kcore;
pub mod ktruss;
pub mod ks;
pub mod lp;
pub mod mcl;
pub mod mis;
pub mod mnm;
pub mod pagerank;
pub mod registry;
pub mod rwr;
pub mod simrank;
pub mod sssp;
pub mod tc;
pub mod toposort;
pub mod wcc;

pub use registry::{by_key, evaluated, AlgoSpec, Engine, Equivalence, Tolerance, TABLE2};
