//! K-core (Section 7): iteratively drop nodes of degree < k and the edges
//! touching them, until the edge set stabilizes. The recursive relation is
//! the surviving edge set; `union by update` *without* attributes replaces
//! it wholesale each iteration (the paper's "replace the previous recursive
//! relation R by the currently generated result as a whole").

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashSet;
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with CE(F, T, ew) as (
  (select E.F, E.T, E.ew from E)
  union by update
  (select CE.F, CE.T, CE.ew from CE, K as K1, K as K2
   where CE.F = K1.ID and CE.T = K2.ID
   computed by
     Deg(ID, d) as select CE.F, count(*) from CE group by CE.F;
     K(ID) as select Deg.ID from Deg where Deg.d >= :k;))
select * from CE";

/// Run k-core; returns the set of core nodes (endpoints of surviving
/// edges). Degrees are counted on the stored digraph (symmetrized for
/// undirected input), matching the reference peeling.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    k: i64,
) -> Result<(FxHashSet<i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    db.set_param("k", k);
    let out = db.execute(SQL)?;
    let mut nodes = FxHashSet::default();
    for r in out.relation.iter() {
        nodes.insert(r[0].as_int().unwrap());
        nodes.insert(r[1].as_int().unwrap());
    }
    Ok((nodes, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile, k: i64) {
        let (nodes, _) = run(g, profile, k).unwrap();
        let expected = reference::kcore(g, k as usize);
        for (v, &alive) in expected.iter().enumerate() {
            assert_eq!(
                nodes.contains(&(v as i64)),
                alive,
                "node {v} (k = {k})"
            );
        }
    }

    #[test]
    fn triangle_with_pendant() {
        let g = Graph::from_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)],
            false,
        );
        check(&g, &oracle_like(), 2);
    }

    #[test]
    fn matches_reference_peeling() {
        let g = generate(GraphKind::PowerLaw, 150, 900, false, 81);
        check(&g, &oracle_like(), 5);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::PowerLaw, 100, 500, false, 82);
        for p in all_profiles() {
            check(&g, &p, 4);
        }
    }

    #[test]
    fn high_k_can_empty_the_core() {
        let g = generate(GraphKind::Uniform, 50, 100, false, 83);
        let (nodes, out) = run(&g, &oracle_like(), 50).unwrap();
        assert!(nodes.is_empty());
        assert!(!out.stats.iterations.is_empty());
    }
}
