//! Topological sorting (Eq. 13, Fig. 5): anti-joins peel off level after
//! level of a DAG; `union all` accumulates the sorted nodes; the recursion
//! is nonlinear (Topo appears in several subqueries of the `computed by`
//! chain).

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

/// Fig. 5 adapted to this dialect.
pub const SQL: &str = "\
with Topo(ID, L) as (
  (select V.ID, 0 from V where V.ID not in (select E.T from E))
  union all
  (select T_n.ID, T_n.L from T_n
   computed by
     L_n(L) as select max(Topo.L) + 1 from Topo;
     V_1(ID) as select V.ID from V where V.ID not in (select Topo.ID from Topo);
     E_1(F, T) as select E.F, E.T from V_1, E where V_1.ID = E.F;
     T_n(ID, L) as select V_1.ID, L_n.L from V_1, L_n
                  where V_1.ID not in (select E_1.T from E_1);))
select * from Topo";

/// Run TopoSort; returns id → level. Nodes on cycles are never sorted and
/// are absent from the result (Oracle-style per-tuple cycle behaviour).
pub fn run(g: &Graph, profile: &EngineProfile) -> Result<(FxHashMap<i64, i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    let out = db.execute(SQL)?;
    Ok((common::node_i64_map(&out.relation), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile) {
        let (levels, _) = run(g, profile).unwrap();
        let expected = reference::topo_levels(g).expect("DAG");
        assert_eq!(levels.len(), g.node_count());
        for (v, &l) in expected.iter().enumerate() {
            assert_eq!(levels[&(v as i64)], l as i64, "node {v}");
        }
    }

    #[test]
    fn matches_kahn_levels_on_citation_dag() {
        let g = generate(GraphKind::CitationDag, 120, 400, true, 71);
        check(&g, &oracle_like());
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::CitationDag, 80, 250, true, 72);
        for p in all_profiles() {
            check(&g, &p);
        }
    }

    #[test]
    fn level_ordering_respects_edges() {
        let g = generate(GraphKind::CitationDag, 100, 300, true, 73);
        let (levels, _) = run(&g, &oracle_like()).unwrap();
        for (u, v, _) in g.edges() {
            assert!(
                levels[&(v as i64)] > levels[&(u as i64)],
                "edge {u}→{v}: the cited node gains a longer incoming chain"
            );
        }
    }

    #[test]
    fn cyclic_part_left_unsorted() {
        // 0→1→2→0 cycle plus 3 (source) → 0 and isolated 4
        let g = Graph::from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (3, 0, 1.0)],
            true,
        );
        let (levels, _) = run(&g, &oracle_like()).unwrap();
        assert_eq!(levels.len(), 2, "only 3 and 4 are sortable: {levels:?}");
        assert_eq!(levels[&3], 0);
        assert_eq!(levels[&4], 0);
    }

    #[test]
    fn terminates_by_delta_emptiness() {
        let g = generate(GraphKind::CitationDag, 60, 150, true, 74);
        let (_, out) = run(&g, &oracle_like()).unwrap();
        let last = out.stats.iterations.last().unwrap();
        assert_eq!(last.delta_rows, 0);
    }
}
