//! Graph-Bisimulation (Table 2, after Henzinger et al.): partition
//! refinement by signature hashing — the Kanellakis–Smolka scheme as
//! recursive SQL.
//!
//! The recursive relation `B(ID, blk)` holds each node's block id,
//! initialized from the node label. Per iteration every node's signature
//! combines its own block with a commutative hash of the *set* of its
//! successors' blocks (a `distinct` projection makes it a set, as classic
//! bisimulation requires); the signature becomes the next block id.
//! Refinement stabilizes within |V| rounds; `maxrecursion` bounds the
//! loop since the block *values* keep being re-hashed even once the
//! partition is stable.
//!
//! Hash collisions could merge distinct blocks; with the modulus below the
//! probability is negligible at the scales tested, and the tests compare
//! against an exact reference refinement.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

/// The block ids are re-hashed every round even once the partition is
/// stable (the hash is injective per block, so the *partition* no longer
/// changes), so termination comes from `maxrecursion` rather than the
/// value fixpoint; refinement stabilizes in at most |V| rounds.
pub fn sql(max_rounds: usize) -> String {
    format!("\
with B(ID, blk) as (
  (select L.ID, 1.0 * L.lbl from L)
  union by update ID
  (select Sig.ID, Sig.h from Sig
   computed by
     DSucc(ID, sb) as select distinct E.F, B2.blk from E, B as B2
                     where E.T = B2.ID;
     SuccH(ID, s) as select DSucc.ID,
                           sum(((DSucc.sb + 17.0) * (DSucc.sb + 3.0)) % 999983.0)
                    from DSucc group by DSucc.ID;
     Sig(ID, h) as select B.ID,
                          (B.blk * 1000003.0 + coalesce(SuccH.s, 0.0)) % 999983.0
                   from B left outer join SuccH on B.ID = SuccH.ID;)
  maxrecursion {max_rounds})
select * from B")
}

/// Run bisimulation; returns node → block id (ids are hashes — only the
/// induced partition is meaningful).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
) -> Result<(FxHashMap<i64, i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    let out = db.execute(&sql(g.node_count() + 2))?;
    let map = out
        .relation
        .iter()
        .filter_map(|r| Some((r[0].as_int()?, r[1].as_f64()? as i64)))
        .collect();
    Ok((map, out))
}

/// Exact Kanellakis–Smolka partition refinement (the correctness oracle).
pub fn reference_bisimulation(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut block: Vec<usize> = g.labels.iter().map(|&l| l as usize).collect();
    loop {
        // signature: (own block, sorted set of successor blocks)
        let mut sigs: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut succ: Vec<usize> =
                g.neighbors(v).iter().map(|&w| block[w as usize]).collect();
            succ.sort_unstable();
            succ.dedup();
            sigs.push((block[v as usize], succ));
        }
        let mut ids: std::collections::HashMap<&(usize, Vec<usize>), usize> =
            std::collections::HashMap::new();
        let mut next = vec![0usize; n];
        for (v, sig) in sigs.iter().enumerate() {
            let fresh = ids.len();
            next[v] = *ids.entry(sig).or_insert(fresh);
        }
        let stable = same_partition(&block, &next);
        block = next;
        if stable {
            return block;
        }
    }
}

/// Do two labelings induce the same partition?
pub fn same_partition<A, B>(a: &[A], b: &[B]) -> bool
where
    A: std::hash::Hash + Eq + Copy,
    B: std::hash::Hash + Eq + Copy,
{
    if a.len() != b.len() {
        return false;
    }
    let mut fwd: std::collections::HashMap<A, B> = std::collections::HashMap::new();
    let mut bwd: std::collections::HashMap<B, A> = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y {
            return false;
        }
        if *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_graph::{generate, GraphKind};

    fn check(g: &Graph) {
        let (blocks, _) = run(g, &oracle_like()).unwrap();
        let sql: Vec<i64> = (0..g.node_count() as i64).map(|v| blocks[&v]).collect();
        let exact = reference_bisimulation(g);
        assert!(
            same_partition(&sql, &exact),
            "partitions differ:\nsql   = {sql:?}\nexact = {exact:?}"
        );
    }

    #[test]
    fn chain_vs_chain() {
        // two disjoint chains with identical labels are bisimilar
        // position by position
        let mut g = Graph::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)],
            true,
        );
        g.labels = vec![0, 0, 0, 0, 0, 0];
        let (blocks, _) = run(&g, &oracle_like()).unwrap();
        assert_eq!(blocks[&0], blocks[&3]);
        assert_eq!(blocks[&1], blocks[&4]);
        assert_eq!(blocks[&2], blocks[&5]);
        assert_ne!(blocks[&0], blocks[&2], "chain positions differ");
        check(&g);
    }

    #[test]
    fn labels_split_blocks() {
        let mut g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)], true);
        g.labels = vec![0, 1, 0, 2];
        let (blocks, _) = run(&g, &oracle_like()).unwrap();
        // 0 → label-1 node, 2 → label-2 node: different successor sets
        assert_ne!(blocks[&0], blocks[&2]);
        check(&g);
    }

    #[test]
    fn matches_exact_refinement_on_random_graphs() {
        for seed in [201, 202, 203] {
            let g = generate(GraphKind::PowerLaw, 60, 200, true, seed);
            check(&g);
        }
        let g = generate(GraphKind::CitationDag, 80, 240, true, 204);
        check(&g);
    }

    #[test]
    fn complete_graph_is_one_block_per_label() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v, 1.0));
                }
            }
        }
        let mut g = Graph::from_edges(5, &edges, true);
        g.labels = vec![3, 3, 3, 3, 3];
        let (blocks, out) = run(&g, &oracle_like()).unwrap();
        let first = blocks[&0];
        assert!(blocks.values().all(|&b| b == first));
        assert_eq!(out.stats.iterations.len(), g.node_count() + 2);
    }
}
