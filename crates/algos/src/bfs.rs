//! BFS reachability (Eq. 5): the `(max, ×)` boolean semiring, MV-join +
//! union-by-update, linear recursion.
//!
//! `V ← ρ(E ⋈ V, max(vw·ew), F = ID group by T)` floods the visited flag
//! along edges. Self-loops (⊙-identity 1) keep a visited node visited on
//! cyclic graphs — see `common::EdgeStyle::WithLoops`.

use crate::common;
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with B(ID, vw) as (
  (select V.ID, V.vw from V)
  union by update ID
  (select E.T, max(B.vw * E.ew) from B, E where B.ID = E.F group by E.T))
select * from B";

/// Run BFS from `src`; returns id → reached flag (1.0 / 0.0).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    src: u32,
) -> Result<(FxHashMap<i64, f64>, QueryResult)> {
    let mut db = common::db_for(g, profile, common::EdgeStyle::WithLoops(1.0))?;
    // vw = 1 for the source, 0 elsewhere
    for row in db.catalog.relation_mut("V")?.rows_mut() {
        let id = row[0].as_int().unwrap();
        row[1] = if id == src as i64 { 1.0 } else { 0.0 }.into();
    }
    let out = db.execute(SQL)?;
    Ok((common::node_f64_map(&out.relation), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, src: u32, profile: &EngineProfile) {
        let (flags, _) = run(g, profile, src).unwrap();
        let levels = reference::bfs_levels(g, src);
        for (v, &l) in levels.iter().enumerate() {
            let expected = if l == u32::MAX { 0.0 } else { 1.0 };
            assert_eq!(flags[&(v as i64)], expected, "node {v}");
        }
    }

    #[test]
    fn matches_reference_on_random_digraph() {
        let g = generate(GraphKind::PowerLaw, 80, 300, true, 11);
        check(&g, 0, &oracle_like());
    }

    #[test]
    fn survives_cycles() {
        let g = Graph::from_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)],
            true,
        );
        check(&g, 0, &oracle_like());
    }

    #[test]
    fn unreachable_stays_zero() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)], true);
        let (flags, _) = run(&g, &oracle_like(), 0).unwrap();
        assert_eq!(flags[&2], 0.0);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::Uniform, 60, 180, true, 12);
        for p in all_profiles() {
            check(&g, 3, &p);
        }
    }

    #[test]
    fn terminates_within_diameter_plus_slack() {
        let g = generate(GraphKind::Uniform, 100, 400, true, 13);
        let (_, out) = run(&g, &oracle_like(), 0).unwrap();
        assert!(out.stats.iterations.len() <= 102);
    }
}
