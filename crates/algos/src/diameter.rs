//! Diameter-Estimation (Table 2, after HADI): estimate the graph's
//! (effective) diameter by expanding hop-neighbourhoods until they stop
//! growing. Instead of HADI's Flajolet–Martin sketches we run the exact
//! hop expansion from a sample of sources — each one a with+ program
//! (the tropical MV-join of `sssp`) whose iteration count *is* the
//! eccentricity — and report the maximum.

use crate::common::{self, EdgeStyle};
use crate::sssp;
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_withplus::Result;

/// Estimate the diameter from `samples` BFS sources (deterministically
/// spread over the id space). Returns (estimate, per-source
/// eccentricities).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    samples: usize,
) -> Result<(u32, Vec<u32>)> {
    let n = g.node_count().max(1);
    let mut eccs = Vec::with_capacity(samples);
    for i in 0..samples {
        let src = ((i * n) / samples.max(1)) as u32;
        let mut db = common::db_for(g, profile, EdgeStyle::WithLoops(0.0))?;
        for row in db.catalog.relation_mut("V")?.rows_mut() {
            let id = row[0].as_int().unwrap();
            row[1] = if id == src as i64 { 0.0 } else { f64::INFINITY }.into();
        }
        let out = db.execute(sssp::SQL)?;
        // hop counts with unit weights: eccentricity = max finite distance
        let ecc = out
            .relation
            .iter()
            .filter_map(|r| r[1].as_f64())
            .filter(|d| d.is_finite())
            .fold(0.0f64, f64::max) as u32;
        eccs.push(ecc);
    }
    Ok((eccs.iter().copied().max().unwrap_or(0), eccs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_graph::{generate, reference, GraphKind};

    #[test]
    fn path_graph_diameter_exact() {
        let edges: Vec<(u32, u32, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(8, &edges, false);
        let (d, eccs) = run(&g, &oracle_like(), 8).unwrap();
        assert_eq!(d, 7, "{eccs:?}");
    }

    #[test]
    fn estimate_is_a_lower_bound_on_true_diameter() {
        let g = generate(GraphKind::Uniform, 60, 150, false, 161);
        let (est, _) = run(&g, &oracle_like(), 4).unwrap();
        // exact diameter via BFS from every node
        let mut exact = 0u32;
        for s in 0..g.node_count() as u32 {
            for l in reference::bfs_levels(&g, s) {
                if l != u32::MAX {
                    exact = exact.max(l);
                }
            }
        }
        assert!(est <= exact);
        assert!(est > 0);
    }
}
