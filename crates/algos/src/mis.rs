//! Maximal-Independent-Set (Section 7): the random-priority parallel
//! algorithm of Métivier et al. — MV-join + anti-join, nonlinear recursion.
//!
//! Per iteration over the undecided subgraph: every node draws `random()`;
//! a node whose priority beats every undecided neighbour's joins the MIS
//! (state 1) and its neighbours are removed (state 2). The SQL uses
//! `random()` exactly as the paper notes ("RDBMSs have a Rand function").

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashSet;
use aio_withplus::{QueryResult, Result};

/// States: 0 = undecided, 1 = in the MIS, 2 = removed.
pub const SQL: &str = "\
with S(ID, st) as (
  (select V.ID, 0 from V)
  union by update ID
  (select Dec.ID, Dec.st from Dec where Dec.st > 0
   computed by
     Und(ID) as select S.ID from S where S.st = 0;
     Pri(ID, r) as select Und.ID, random() from Und;
     EU(F, T) as select E.F, E.T from E, Und as U1, Und as U2
                where E.F = U1.ID and E.T = U2.ID;
     MinNb(ID, mr) as select EU.F, min(P2.r) from EU, Pri as P2
                     where EU.T = P2.ID group by EU.F;
     Win(ID) as select Pri.ID from Pri
               left outer join MinNb on Pri.ID = MinNb.ID
               where Pri.r < coalesce(MinNb.mr, 2.0);
     NbrT(ID, st) as select distinct EU.T, 2 from EU, Win where EU.F = Win.ID;
     WinT(ID, st) as select Win.ID, 1 from Win;
     Dec(ID, st) as select U.ID, coalesce(W.st, N.st, 0)
                   from Und as U
                   left outer join WinT as W on U.ID = W.ID
                   left outer join NbrT as N on U.ID = N.ID;))
select * from S";

/// Run MIS (the `seed` makes `random()` reproducible); returns the MIS.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    seed: u64,
) -> Result<(FxHashSet<i64>, QueryResult)> {
    aio_algebra::seed_random(seed);
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    if g.directed {
        // independence is over the underlying undirected graph
        let extra: Vec<_> = g
            .edges()
            .map(|(u, v, w)| aio_storage::row![v as i64, u as i64, w])
            .collect();
        db.catalog.relation_mut("E")?.rows_mut().extend(extra);
    }
    let out = db.execute(SQL)?;
    let set = out
        .relation
        .iter()
        .filter(|r| r[1].as_f64() == Some(1.0) || r[1].as_int() == Some(1))
        .map(|r| r[0].as_int().unwrap())
        .collect();
    Ok((set, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile, seed: u64) {
        let (set, _) = run(g, profile, seed).unwrap();
        let flags: Vec<bool> = (0..g.node_count() as i64)
            .map(|v| set.contains(&v))
            .collect();
        assert!(
            reference::is_maximal_independent_set(g, &flags),
            "not a maximal independent set (seed {seed})"
        );
    }

    #[test]
    fn produces_maximal_independent_sets() {
        let g = generate(GraphKind::PowerLaw, 100, 400, false, 101);
        for seed in [1, 2, 3] {
            check(&g, &oracle_like(), seed);
        }
    }

    #[test]
    fn all_profiles_produce_valid_sets() {
        let g = generate(GraphKind::Uniform, 80, 240, false, 102);
        for p in all_profiles() {
            check(&g, &p, 7);
        }
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)], false);
        let (set, _) = run(&g, &oracle_like(), 5).unwrap();
        assert!(set.contains(&2));
        assert!(set.contains(&3));
        assert_eq!(set.contains(&0), !set.contains(&1));
    }

    #[test]
    fn converges_in_few_rounds() {
        // "MIS requires the similar number of iterations over different
        // graphs, and the average number 4-6" (Section 7.2)
        let g = generate(GraphKind::PowerLaw, 200, 800, false, 103);
        let (_, out) = run(&g, &oracle_like(), 11).unwrap();
        assert!(
            out.stats.iterations.len() <= 12,
            "took {} iterations",
            out.stats.iterations.len()
        );
    }
}
