//! Transitive closure (Fig. 1) — linear recursion, `union` / `union all`.

use crate::common;
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashSet;
use aio_withplus::{QueryResult, Result};

/// TC by linear recursion with duplicate elimination (`union`), bounded by
/// a recursion depth `d` so cyclic data terminates (Exp-C: "a threshold of
/// recursive depth d needs to be specified").
pub fn sql(depth: usize) -> String {
    format!(
        "with TC(F, T) as (
           (select E.F, E.T from E)
           union
           (select TC.F, E.T from TC, E where TC.T = E.F)
           maxrecursion {depth})
         select * from TC"
    )
}

/// TC with `union all` (what DB2/Oracle are limited to — duplicates are
/// kept, so the depth bound is essential, Exp-C).
pub fn sql_union_all(depth: usize) -> String {
    format!(
        "with TC(F, T) as (
           (select E.F, E.T from E)
           union all
           (select TC.F, E.T from TC, E where TC.T = E.F)
           maxrecursion {depth})
         select * from TC"
    )
}

/// Run TC; returns the set of reachable pairs.
pub fn run(g: &Graph, profile: &EngineProfile, depth: usize) -> Result<(FxHashSet<(i64, i64)>, QueryResult)> {
    let mut db = common::db_for(g, profile, common::EdgeStyle::Raw)?;
    let out = db.execute(&sql(depth))?;
    let pairs = out
        .relation
        .iter()
        .filter_map(|r| Some((r[0].as_int()?, r[1].as_int()?)))
        .collect();
    Ok((pairs, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn reference_tc(g: &Graph) -> FxHashSet<(i64, i64)> {
        let mut pairs = FxHashSet::default();
        for src in 0..g.node_count() as u32 {
            let lv = reference::bfs_levels(g, src);
            for (v, &l) in lv.iter().enumerate() {
                if l != u32::MAX && l > 0 {
                    pairs.insert((src as i64, v as i64));
                }
            }
        }
        pairs
    }

    #[test]
    fn matches_reference_on_dag() {
        let g = generate(GraphKind::CitationDag, 60, 150, true, 5);
        let (pairs, _) = run(&g, &oracle_like(), 100).unwrap();
        assert_eq!(pairs, reference_tc(&g));
    }

    #[test]
    fn matches_reference_on_cyclic_graph() {
        let g = generate(GraphKind::Uniform, 40, 100, true, 6);
        // depth = n suffices for full closure with dedup
        let (pairs, _) = run(&g, &oracle_like(), 60).unwrap();
        let mut expected = reference_tc(&g);
        // BFS-based reference excludes (v, v) unless v lies on a cycle;
        // TC derives (v, v) exactly when v reaches itself — same thing,
        // but the reference's level-0 exclusion drops self-pairs even on
        // cycles, so recompute: v reaches v iff some successor reaches v.
        for v in 0..g.node_count() as u32 {
            for &w in g.neighbors(v) {
                let lv = reference::bfs_levels(&g, w);
                if lv[v as usize] != u32::MAX {
                    expected.insert((v as i64, v as i64));
                }
            }
        }
        assert_eq!(pairs, expected);
    }

    #[test]
    fn same_answer_across_profiles() {
        let g = generate(GraphKind::CitationDag, 50, 120, true, 7);
        let base = run(&g, &oracle_like(), 50).unwrap().0;
        for p in all_profiles() {
            assert_eq!(run(&g, &p, 50).unwrap().0, base, "{}", p.name);
        }
    }

    #[test]
    fn union_all_respects_depth_bound() {
        let g = generate(GraphKind::Uniform, 20, 50, true, 8);
        let mut db = common::db_for(&g, &oracle_like(), common::EdgeStyle::Raw).unwrap();
        let out = db.execute(&sql_union_all(3)).unwrap();
        assert!(out.stats.iterations.len() <= 3);
    }
}
