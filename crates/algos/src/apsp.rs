//! All-pairs shortest paths: Floyd-Warshall (Eq. 8) as **nonlinear**
//! recursion — the recursive relation joined with itself through an
//! MM-join in the tropical semiring, with union-by-update on `(F, T)`.
//!
//! The initialization unions two queries (allowed by Fig. 4): the edge
//! matrix (min over parallel edges) and the zero diagonal. The diagonal is
//! the tropical identity matrix, which makes the self-MM-join monotone
//! non-increasing, so union-by-update converges to the shortest-distance
//! matrix. Distance doubling: `k` iterations cover paths of `2^k` hops.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with D(F, T, ew) as (
  (select E.F, E.T, min(E.ew) from E group by E.F, E.T)
  union by update F, T
  (select D1.F, D2.T, min(D1.ew + D2.ew) from D as D1, D as D2
   where D1.T = D2.F group by D1.F, D2.T))
select * from D";

/// `(from, to) → distance` map produced by [`run`].
pub type PairDistances = FxHashMap<(i64, i64), f64>;

/// Run APSP; returns (from, to) → distance (missing = unreachable).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
) -> Result<(PairDistances, QueryResult)> {
    // the zero diagonal comes in through self-loops with weight 0
    let mut db = common::db_for(g, profile, EdgeStyle::WithLoops(0.0))?;
    let out = db.execute(SQL)?;
    let map = out
        .relation
        .iter()
        .filter_map(|r| Some(((r[0].as_int()?, r[1].as_int()?), r[2].as_f64()?)))
        .collect();
    Ok((map, out))
}

/// The paper's Fig. 13(b) variant: APSP by *linear* recursion (MM-join of
/// the recursive relation with the base edge matrix — Bellman-Ford for all
/// sources), bounded by depth `d`.
pub fn sql_linear(depth: usize) -> String {
    format!(
        "with D(F, T, ew) as (
           (select E.F, E.T, min(E.ew) from E group by E.F, E.T)
           union by update F, T
           (select D.F, E.T, min(D.ew + E.ew) from D, E
            where D.T = E.F group by D.F, E.T)
           maxrecursion {depth})
         select * from D"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{oracle_like, postgres_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(map: &FxHashMap<(i64, i64), f64>, g: &Graph) {
        let expected = reference::floyd_warshall(g);
        for (i, row) in expected.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                let got = map.get(&(i as i64, j as i64)).copied();
                if d.is_infinite() {
                    // unreachable pairs are either absent or infinite
                    assert!(
                        got.is_none() || got.unwrap().is_infinite(),
                        "({i},{j}) = {got:?}"
                    );
                } else {
                    assert!(
                        (got.expect("missing pair") - d).abs() < 1e-9,
                        "({i},{j}): {got:?} vs {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn nonlinear_matches_floyd_warshall() {
        let g = generate(GraphKind::Uniform, 25, 80, true, 41);
        let (map, _) = run(&g, &oracle_like()).unwrap();
        check(&map, &g);
    }

    #[test]
    fn doubling_converges_fast() {
        // path of 16 hops: nonlinear recursion needs ~log2(16)+1 rounds
        let edges: Vec<(u32, u32, f64)> = (0..16).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(17, &edges, true);
        let (map, out) = run(&g, &oracle_like()).unwrap();
        assert_eq!(map[&(0, 16)], 16.0);
        assert!(
            out.stats.iterations.len() <= 7,
            "doubling should finish in O(log n) rounds, took {}",
            out.stats.iterations.len()
        );
    }

    #[test]
    fn linear_variant_matches_at_sufficient_depth() {
        let g = generate(GraphKind::Uniform, 20, 60, true, 42);
        let mut db = common::db_for(&g, &oracle_like(), EdgeStyle::WithLoops(0.0)).unwrap();
        let out = db.execute(&sql_linear(25)).unwrap();
        let map: FxHashMap<(i64, i64), f64> = out
            .relation
            .iter()
            .filter_map(|r| Some(((r[0].as_int()?, r[1].as_int()?), r[2].as_f64()?)))
            .collect();
        check(&map, &g);
    }

    #[test]
    fn profiles_agree() {
        let g = generate(GraphKind::Uniform, 18, 50, true, 43);
        let (a, _) = run(&g, &oracle_like()).unwrap();
        let (b, _) = run(&g, &postgres_like(true)).unwrap();
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert!((b[k] - v).abs() < 1e-9);
        }
    }
}
