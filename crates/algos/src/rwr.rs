//! Random-Walk-with-Restart (Eq. 10): the personalized generalization of
//! PageRank — `V ← c·(Eᵀ V) + (1−c)·P` where `P` is the restart vector.
//! MV-join with `f₂(·) = c·sum(vw·ew)` joined back to `P`, linear
//! recursion + union-by-update.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::{row, DataType, FxHashMap, Relation, Schema};
use aio_withplus::{QueryResult, Result};

pub fn sql(iters: usize) -> String {
    format!(
        "with W(ID, vw) as (
           (select P.ID, P.pw from P)
           union by update ID
           (select E.T, :c * sum(W.vw * E.ew) + (1 - :c) * P.pw from W, E, P
            where W.ID = E.F and E.T = P.ID group by E.T, P.pw)
           maxrecursion {iters})
         select * from W"
    )
}

/// Run RWR restarting at `src`; returns id → proximity.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    src: u32,
    c: f64,
    iters: usize,
) -> Result<(FxHashMap<i64, f64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::PageRank)?;
    // restart vector: probability 1 at the source
    let schema = Schema::of(&[("ID", DataType::Int), ("pw", DataType::Float)]);
    let mut p = Relation::with_pk(schema, &["ID"])?;
    for v in 0..g.node_count() {
        p.push(row![v as i64, if v == src as usize { 1.0 } else { 0.0 }])?;
    }
    db.create_table("P", p)?;
    db.set_param("c", c);
    let out = db.execute(&sql(iters))?;
    Ok((common::node_f64_map(&out.relation), out))
}

/// Reference RWR with the SQL's exact update rule (targets only).
pub fn reference_rwr(g: &Graph, src: u32, c: f64, iters: usize) -> Vec<f64> {
    let gw = aio_graph::reference::with_pagerank_weights(g);
    let n = gw.node_count();
    let restart: Vec<f64> = (0..n).map(|v| if v == src as usize { 1.0 } else { 0.0 }).collect();
    let mut w = restart.clone();
    for _ in 0..iters {
        let mut sums = vec![0.0f64; n];
        let mut is_target = vec![false; n];
        for (u, v, ew) in gw.edges() {
            sums[v as usize] += w[u as usize] * ew;
            is_target[v as usize] = true;
        }
        for v in 0..n {
            if is_target[v] {
                w[v] = c * sums[v] + (1.0 - c) * restart[v];
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile, src: u32) {
        let (prox, _) = run(g, profile, src, 0.9, 12).unwrap();
        let expected = reference_rwr(g, src, 0.9, 12);
        for (v, &e) in expected.iter().enumerate() {
            let got = prox[&(v as i64)];
            assert!((got - e).abs() < 1e-9, "node {v}: {got} vs {e}");
        }
    }

    #[test]
    fn matches_reference() {
        let g = generate(GraphKind::PowerLaw, 70, 280, true, 131);
        check(&g, &oracle_like(), 0);
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::Uniform, 50, 180, true, 132);
        for p in all_profiles() {
            check(&g, &p, 4);
        }
    }

    #[test]
    fn mass_concentrates_near_restart_node() {
        // chain 0→1→2→…: proximity decays with distance from the source
        let edges: Vec<(u32, u32, f64)> = (0..6).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(7, &edges, true);
        let (prox, _) = run(&g, &oracle_like(), 0, 0.5, 20).unwrap();
        assert!(prox[&1] > prox[&2]);
        assert!(prox[&2] > prox[&3]);
    }
}
