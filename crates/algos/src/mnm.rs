//! Maximal-Node-Matching (Section 7, after Preis): every unmatched node
//! picks its maximum-weight unmatched neighbour (ties broken by the larger
//! id); two nodes that pick each other form a matching pair and leave the
//! graph. Stops when no new pairs form.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_withplus::{QueryResult, Result};

/// Recursive relation `M(ID, mate)`: mate = −1 while unmatched.
pub const SQL: &str = "\
with M(ID, mate) as (
  (select V.ID, -1 from V)
  union by update ID
  (select Pair.ID, Pair.mate from Pair
   computed by
     Und(ID, w) as select M.ID, V.vw from M, V
                  where M.ID = V.ID and M.mate < 0;
     EU(F, T) as select E.F, E.T from E, Und as U1, Und as U2
                where E.F = U1.ID and E.T = U2.ID;
     BestW(ID, bw) as select EU.F, max(U3.w) from EU, Und as U3
                     where EU.T = U3.ID group by EU.F;
     Pick(ID, mate) as select EU.F, max(EU.T) from EU, Und as U4, BestW
                      where EU.T = U4.ID and EU.F = BestW.ID and U4.w = BestW.bw
                      group by EU.F;
     Pair(ID, mate) as select P1.ID, P1.mate from Pick as P1, Pick as P2
                      where P1.mate = P2.ID and P2.mate = P1.ID;))
select * from M";

/// Run MNM; returns the matched pairs `(u, v)` with `u < v`.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
) -> Result<(Vec<(u32, u32)>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    if g.directed {
        let extra: Vec<_> = g
            .edges()
            .map(|(u, v, w)| aio_storage::row![v as i64, u as i64, w])
            .collect();
        db.catalog.relation_mut("E")?.rows_mut().extend(extra);
    }
    let out = db.execute(SQL)?;
    let mut pairs = Vec::new();
    for r in out.relation.iter() {
        let id = r[0].as_int().unwrap();
        let mate = r[1].as_f64().unwrap() as i64;
        if mate >= 0 && id < mate {
            pairs.push((id as u32, mate as u32));
        }
    }
    Ok((pairs, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile) {
        let (pairs, _) = run(g, profile).unwrap();
        assert!(
            reference::is_maximal_matching(g, &pairs),
            "not a maximal matching: {pairs:?}"
        );
    }

    #[test]
    fn produces_maximal_matchings() {
        let g = generate(GraphKind::PowerLaw, 80, 300, false, 111);
        check(&g, &oracle_like());
    }

    #[test]
    fn all_profiles_agree_on_validity() {
        let g = generate(GraphKind::Uniform, 60, 200, false, 112);
        for p in all_profiles() {
            check(&g, &p);
        }
    }

    #[test]
    fn path_graph_matches_heaviest_pair_first() {
        // path 0—1—2 with weights 1, 2, 3: 1 picks 2 (w 3), 2 picks 1
        // (w 2 > w 1)… mutual → pair (1,2); 0 left unmatched
        let mut g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)], false);
        g.node_weights = vec![1.0, 2.0, 3.0];
        let (pairs, _) = run(&g, &oracle_like()).unwrap();
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    fn single_iteration_possible() {
        // disjoint edges: everything matches in round one — the paper's
        // U.S. Patent observation ("it ends after only one iteration")
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)], false);
        let (pairs, out) = run(&g, &oracle_like()).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!(out.stats.iterations.len() <= 2);
    }
}
