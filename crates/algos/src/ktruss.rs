//! K-truss (Table 2): the maximal subgraph in which every edge closes at
//! least k−2 triangles. Iteratively counts each edge's *support* with a
//! triangle (three-way self-) join and drops under-supported edges —
//! `count` aggregation + nonlinear recursion + wholesale union-by-update,
//! the same shape as K-core one level up (edges instead of nodes).
//!
//! Expects a symmetrized edge relation (undirected semantics).

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashSet;
use aio_withplus::{QueryResult, Result};

pub const SQL: &str = "\
with TE(F, T, ew) as (
  (select distinct E.F, E.T, E.ew from E)
  union by update
  (select TE.F, TE.T, TE.ew from TE, Sup
   where TE.F = Sup.F and TE.T = Sup.T and Sup.c >= :k - 2
   computed by
     Sup(F, T, c) as select T1.F, T1.T, count(*)
                    from TE as T1, TE as T2, TE as T3
                    where T1.F = T2.F and T1.T = T3.F and T2.T = T3.T
                    group by T1.F, T1.T;))
select * from TE";

/// Run k-truss; returns the surviving (undirected) edges as `(u, v)` with
/// `u < v`.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    k: i64,
) -> Result<(FxHashSet<(i64, i64)>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    if g.directed {
        let extra: Vec<_> = g
            .edges()
            .map(|(u, v, w)| aio_storage::row![v as i64, u as i64, w])
            .collect();
        db.catalog.relation_mut("E")?.rows_mut().extend(extra);
    }
    db.set_param("k", k);
    let out = db.execute(SQL)?;
    let mut edges = FxHashSet::default();
    for r in out.relation.iter() {
        let (u, v) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
        edges.insert((u.min(v), u.max(v)));
    }
    Ok((edges, out))
}

/// Reference: iterative support-peeling on the symmetrized edge set.
pub fn reference_ktruss(g: &Graph, k: i64) -> FxHashSet<(i64, i64)> {
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    for (u, v, _) in g.edges() {
        edges.insert((u, v));
        edges.insert((v, u));
    }
    loop {
        let mut adj: aio_storage::FxHashMap<u32, FxHashSet<u32>> = Default::default();
        for &(u, v) in &edges {
            adj.entry(u).or_default().insert(v);
        }
        let mut drop = Vec::new();
        for &(u, v) in &edges {
            let empty = FxHashSet::default();
            let nu = adj.get(&u).unwrap_or(&empty);
            let nv = adj.get(&v).unwrap_or(&empty);
            let support = nu.intersection(nv).count() as i64;
            if support < k - 2 {
                drop.push((u, v));
            }
        }
        if drop.is_empty() {
            break;
        }
        for e in drop {
            edges.remove(&e);
        }
    }
    edges
        .into_iter()
        .filter(|(u, v)| u < v)
        .map(|(u, v)| (u as i64, v as i64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_graph::{generate, GraphKind};

    #[test]
    fn triangle_survives_pendant_does_not() {
        // triangle {0,1,2} + pendant edge 2—3: 3-truss = the triangle
        let g = Graph::from_edges(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)],
            false,
        );
        let (edges, _) = run(&g, &oracle_like(), 3).unwrap();
        assert_eq!(
            edges,
            [(0i64, 1i64), (1, 2), (0, 2)].into_iter().collect()
        );
    }

    #[test]
    fn matches_reference_peeling() {
        let g = generate(GraphKind::PowerLaw, 60, 400, false, 151);
        for k in [3i64, 4] {
            let (edges, _) = run(&g, &oracle_like(), k).unwrap();
            assert_eq!(edges, reference_ktruss(&g, k), "k = {k}");
        }
    }

    #[test]
    fn high_k_empties() {
        let g = generate(GraphKind::Uniform, 30, 60, false, 152);
        let (edges, _) = run(&g, &oracle_like(), 20).unwrap();
        assert!(edges.is_empty());
    }
}
