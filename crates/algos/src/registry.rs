//! Table 2 — the catalogue of graph algorithms the four operations support.

/// Which aggregates an algorithm's semiring uses (the `Aggregation` column
/// of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    None,
    Max,
    Min,
    MinOrMax,
    Sum,
    Count,
}

impl std::fmt::Display for Aggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Aggregation::None => "-",
            Aggregation::Max => "max",
            Aggregation::Min => "min",
            Aggregation::MinOrMax => "max/min",
            Aggregation::Sum => "sum",
            Aggregation::Count => "count",
        })
    }
}

/// One row of Table 2.
#[derive(Clone, Copy, Debug)]
pub struct AlgoSpec {
    pub name: &'static str,
    /// Short key used by the bench harness.
    pub key: &'static str,
    pub aggregation: Aggregation,
    /// Expressible with linear recursion?
    pub linear: bool,
    /// Expressible (only) with nonlinear recursion?
    pub nonlinear: bool,
    /// Implemented as a with+ program in this crate?
    pub implemented: bool,
    /// Part of the paper's 10-algorithm evaluation (Figs. 7/8)?
    pub evaluated: bool,
}

/// Table 2 verbatim (19 rows), annotated with our implementation status.
pub const TABLE2: [AlgoSpec; 19] = [
    AlgoSpec { name: "TC", key: "tc", aggregation: Aggregation::None, linear: true, nonlinear: true, implemented: true, evaluated: false },
    AlgoSpec { name: "BFS", key: "bfs", aggregation: Aggregation::Max, linear: true, nonlinear: false, implemented: true, evaluated: false },
    AlgoSpec { name: "Connected-Component", key: "wcc", aggregation: Aggregation::MinOrMax, linear: true, nonlinear: false, implemented: true, evaluated: true },
    AlgoSpec { name: "Bellman-Ford", key: "sssp", aggregation: Aggregation::Min, linear: true, nonlinear: false, implemented: true, evaluated: true },
    AlgoSpec { name: "Floyd-Warshall", key: "apsp", aggregation: Aggregation::Min, linear: false, nonlinear: true, implemented: true, evaluated: false },
    AlgoSpec { name: "PageRank", key: "pr", aggregation: Aggregation::Sum, linear: true, nonlinear: false, implemented: true, evaluated: true },
    AlgoSpec { name: "Random-Walk-with-Restart", key: "rwr", aggregation: Aggregation::Sum, linear: true, nonlinear: false, implemented: true, evaluated: false },
    AlgoSpec { name: "SimRank", key: "simrank", aggregation: Aggregation::Sum, linear: true, nonlinear: false, implemented: true, evaluated: false },
    AlgoSpec { name: "HITS", key: "hits", aggregation: Aggregation::Sum, linear: false, nonlinear: true, implemented: true, evaluated: true },
    AlgoSpec { name: "TopoSort", key: "ts", aggregation: Aggregation::None, linear: false, nonlinear: true, implemented: true, evaluated: true },
    AlgoSpec { name: "Keyword-Search", key: "ks", aggregation: Aggregation::Max, linear: true, nonlinear: false, implemented: true, evaluated: true },
    AlgoSpec { name: "Label-Propagation", key: "lp", aggregation: Aggregation::Count, linear: true, nonlinear: false, implemented: true, evaluated: true },
    AlgoSpec { name: "Maximal-Independent-Set", key: "mis", aggregation: Aggregation::MinOrMax, linear: false, nonlinear: true, implemented: true, evaluated: true },
    AlgoSpec { name: "Maximal-Node-Matching", key: "mnm", aggregation: Aggregation::MinOrMax, linear: false, nonlinear: true, implemented: true, evaluated: true },
    AlgoSpec { name: "Diameter-Estimation", key: "diam", aggregation: Aggregation::None, linear: true, nonlinear: false, implemented: true, evaluated: false },
    AlgoSpec { name: "Markov-Clustering", key: "mcl", aggregation: Aggregation::Sum, linear: false, nonlinear: true, implemented: true, evaluated: false },
    AlgoSpec { name: "K-core", key: "kc", aggregation: Aggregation::Count, linear: false, nonlinear: true, implemented: true, evaluated: true },
    AlgoSpec { name: "K-truss", key: "ktruss", aggregation: Aggregation::Count, linear: false, nonlinear: true, implemented: true, evaluated: false },
    AlgoSpec { name: "Graph-Bisimulation", key: "bisim", aggregation: Aggregation::Sum, linear: false, nonlinear: true, implemented: true, evaluated: false },
];

/// An executor family the differential testkit can route an algorithm to.
///
/// `WithPlus` fans out further inside the harness: all three RDBMS
/// profiles (oracle/db2/postgres-like) × the parallelism knob {1, 2, 8}.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The with+ PSM interpreter (three profiles × parallelism settings).
    WithPlus,
    /// SQL'99 `WITH RECURSIVE` baseline, where Table 1 says it's legal.
    Sql99,
    /// PowerGraph-style vertex-centric/GAS stand-in.
    VertexCentric,
    /// Giraph-style BSP stand-in.
    Bsp,
    /// SociaLite-style datalog stand-in.
    Datalog,
    /// Textbook reference implementation (`aio_graph::reference` et al.).
    Oracle,
}

/// How strictly two executors' results must agree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tolerance {
    /// Integer / set-valued answers: results must be identical.
    Exact,
    /// Float-valued scores: absolute error ≤ `eps` per entry, and the
    /// descending-score order of the top `rank_top` entries must agree
    /// (ties broken by id).
    Epsilon { eps: f64, rank_top: usize },
    /// The answer family is non-unique (e.g. *a* maximal independent set);
    /// each result is checked against a property oracle instead of
    /// compared value-for-value, and only same-engine determinism is
    /// asserted across parallelism settings.
    PropertyOracle,
}

/// Per-algorithm differential-testing metadata: which executors can run it
/// and how closely they must agree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Equivalence {
    pub engines: &'static [Engine],
    pub tolerance: Tolerance,
}

impl Equivalence {
    pub fn supports(&self, e: Engine) -> bool {
        self.engines.contains(&e)
    }
}

use Engine::{Bsp, Datalog, Oracle, Sql99, VertexCentric, WithPlus};

const EPS_TIGHT: Tolerance = Tolerance::Epsilon { eps: 1e-9, rank_top: 0 };
const EPS_RANKED: Tolerance = Tolerance::Epsilon { eps: 1e-7, rank_top: 5 };

impl AlgoSpec {
    /// The differential matrix row for this algorithm. Every implemented
    /// algorithm at least runs on `WithPlus` (three profiles × parallelism);
    /// the extra engines are the ones whose semantics provably line up with
    /// the with+ formulation (Section 7's comparison set).
    pub fn equivalence(&self) -> Equivalence {
        let (engines, tolerance): (&'static [Engine], Tolerance) = match self.key {
            "tc" => (&[WithPlus, Sql99, Oracle], Tolerance::Exact),
            "bfs" => (&[WithPlus, Oracle], Tolerance::Exact),
            "wcc" => (
                &[WithPlus, VertexCentric, Bsp, Datalog, Oracle],
                Tolerance::Exact,
            ),
            "sssp" => (&[WithPlus, VertexCentric, Bsp, Datalog, Oracle], EPS_TIGHT),
            "apsp" => (&[WithPlus, Oracle], EPS_TIGHT),
            // SQL'99 PageRank is PostgreSQL-only (Fig. 9) and agrees with
            // with+ only on generation-stable graphs; the harness augments
            // the corpus graph accordingly before this comparison.
            "pr" => (
                &[WithPlus, Sql99, VertexCentric, Bsp, Datalog, Oracle],
                EPS_RANKED,
            ),
            "rwr" => (&[WithPlus, Oracle], EPS_RANKED),
            "simrank" => (&[WithPlus, Oracle], EPS_RANKED),
            "hits" => (&[WithPlus, Oracle], EPS_RANKED),
            "ts" => (&[WithPlus, Oracle], Tolerance::Exact),
            "kc" => (&[WithPlus, Oracle], Tolerance::Exact),
            "mis" | "mnm" => (&[WithPlus, Oracle], Tolerance::PropertyOracle),
            // remaining algorithms: differential across the three RDBMS
            // profiles × parallelism only (no independent second semantics)
            _ => (&[WithPlus], Tolerance::Exact),
        };
        Equivalence { engines, tolerance }
    }
}

/// The 10 algorithms of the Section 7 evaluation, in the paper's naming:
/// SSSP, WCC, PR, HITS, TS, KC, MIS, LP, MNM, KS.
pub fn evaluated() -> Vec<&'static AlgoSpec> {
    TABLE2.iter().filter(|a| a.evaluated).collect()
}

pub fn by_key(key: &str) -> Option<&'static AlgoSpec> {
    TABLE2.iter().find(|a| a.key.eq_ignore_ascii_case(key))
}

/// Render Table 2 (the `repro table2` output).
pub fn render_table2() -> String {
    let mut out = format!(
        "{:<28} {:>10} {:>7} {:>10} {:>12}\n",
        "Graph Algorithm", "Aggregation", "linear", "nonlinear", "implemented"
    );
    for a in TABLE2 {
        out.push_str(&format!(
            "{:<28} {:>10} {:>7} {:>10} {:>12}\n",
            a.name,
            a.aggregation.to_string(),
            if a.linear { "yes" } else { "" },
            if a.nonlinear { "yes" } else { "" },
            if a.implemented { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_rows_ten_evaluated() {
        assert_eq!(TABLE2.len(), 19);
        assert_eq!(evaluated().len(), 10);
    }

    #[test]
    fn lookup_by_key() {
        assert_eq!(by_key("PR").unwrap().name, "PageRank");
        assert!(by_key("nope").is_none());
    }

    #[test]
    fn table2_spot_checks() {
        let hits = by_key("hits").unwrap();
        assert!(hits.nonlinear && !hits.linear);
        assert_eq!(hits.aggregation, Aggregation::Sum);
        let bf = by_key("sssp").unwrap();
        assert!(bf.linear);
        assert_eq!(bf.aggregation, Aggregation::Min);
    }

    #[test]
    fn every_algorithm_has_a_differential_row() {
        for a in &TABLE2 {
            let eq = a.equivalence();
            assert!(
                eq.supports(Engine::WithPlus),
                "{}: with+ is the system under test",
                a.key
            );
            assert!(!eq.engines.is_empty());
        }
        // the three native stand-ins only implement PR / WCC / SSSP
        for e in [Engine::VertexCentric, Engine::Bsp, Engine::Datalog] {
            let keys: Vec<&str> = TABLE2
                .iter()
                .filter(|a| a.equivalence().supports(e))
                .map(|a| a.key)
                .collect();
            assert_eq!(keys, vec!["wcc", "sssp", "pr"], "{e:?}");
        }
        // float-scored algorithms never demand exact equality
        for key in ["pr", "rwr", "simrank", "hits", "sssp", "apsp"] {
            let t = by_key(key).unwrap().equivalence().tolerance;
            assert!(
                matches!(t, Tolerance::Epsilon { .. }),
                "{key} must use epsilon tolerance, got {t:?}"
            );
        }
        assert_eq!(
            by_key("mis").unwrap().equivalence().tolerance,
            Tolerance::PropertyOracle
        );
    }

    #[test]
    fn render_contains_all() {
        let t = render_table2();
        for a in TABLE2 {
            assert!(t.contains(a.name));
        }
    }
}
