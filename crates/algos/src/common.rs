//! Shared plumbing for the algorithm library: database setup from graphs,
//! result decoding, and the self-loop device.
//!
//! **Self-loops.** The paper's Eqs. (5)–(7) update a node's value with an
//! aggregate over its in-neighbours only; on cyclic graphs a node's *own*
//! value must participate in the `⊕` or a flooded flag/label/distance can
//! be overwritten with a worse one. The standard fix — equivalent to adding
//! the identity matrix scaled by the semiring's `1` — is to include a
//! self-loop per node whose weight is the `⊙`-identity (1 for `(max, ×)` /
//! `(min, ×)`, 0 for `(min, +)`). `edge_relation_with_loops` provides it.

use aio_algebra::EngineProfile;
use aio_graph::{load, Graph};
use aio_storage::{row, FxHashMap, Relation};
use aio_withplus::{Database, Result};

/// How edge weights should be loaded for an algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeStyle {
    /// Raw weights as stored in the graph.
    Raw,
    /// Raw weights plus a self-loop of the given weight per node.
    WithLoops(f64),
    /// Out-degree-normalized weights (`1/outdeg`) — the PageRank / RWR
    /// transition matrix.
    PageRank,
}

/// Build a database over `g` with `E(F,T,ew)`, `V(ID,vw)` and `L(ID,lbl)`.
pub fn db_for(g: &Graph, profile: &EngineProfile, style: EdgeStyle) -> Result<Database> {
    let mut db = Database::new(profile.clone());
    let e = match style {
        EdgeStyle::Raw => load::edge_relation(g),
        EdgeStyle::WithLoops(w) => {
            let mut e = load::edge_relation(g);
            for v in 0..g.node_count() {
                e.rows_mut().push(row![v as i64, v as i64, w]);
            }
            e
        }
        EdgeStyle::PageRank => {
            let gw = aio_graph::reference::with_pagerank_weights(g);
            load::edge_relation(&gw)
        }
    };
    db.create_table("E", e)?;
    db.create_table("V", load::node_relation(g))?;
    db.create_table("L", load::label_relation(g))?;
    Ok(db)
}

/// Replace `V`'s weights (e.g. BFS / SSSP seeds).
pub fn set_node_weights(db: &mut Database, weights: &[(i64, f64)]) -> Result<()> {
    let rel = db.catalog.relation_mut("V")?;
    let mut by_id: FxHashMap<i64, f64> = FxHashMap::default();
    for &(id, w) in weights {
        by_id.insert(id, w);
    }
    for row in rel.rows_mut() {
        if let Some(&w) = row[0].as_int().and_then(|id| by_id.get(&id)) {
            row[1] = w.into();
        }
    }
    Ok(())
}

/// Decode a two-column `(ID, value)` relation into an id → f64 map.
pub fn node_f64_map(rel: &Relation) -> FxHashMap<i64, f64> {
    rel.iter()
        .filter_map(|r| Some((r[0].as_int()?, r[1].as_f64()?)))
        .collect()
}

/// Decode a two-column `(ID, value)` relation into an id → i64 map.
pub fn node_i64_map(rel: &Relation) -> FxHashMap<i64, i64> {
    rel.iter()
        .filter_map(|r| Some((r[0].as_int()?, r[1].as_f64()? as i64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_graph::{generate, GraphKind};

    #[test]
    fn db_setup_loads_three_tables() {
        let g = generate(GraphKind::Uniform, 10, 30, true, 1);
        let db = db_for(&g, &oracle_like(), EdgeStyle::Raw).unwrap();
        assert_eq!(db.catalog.relation("E").unwrap().len(), 30);
        assert_eq!(db.catalog.relation("V").unwrap().len(), 10);
        assert_eq!(db.catalog.relation("L").unwrap().len(), 10);
    }

    #[test]
    fn loops_add_n_edges() {
        let g = generate(GraphKind::Uniform, 10, 30, true, 1);
        let db = db_for(&g, &oracle_like(), EdgeStyle::WithLoops(0.0)).unwrap();
        assert_eq!(db.catalog.relation("E").unwrap().len(), 40);
    }

    #[test]
    fn pagerank_weights_normalize() {
        let g = generate(GraphKind::Uniform, 10, 30, true, 1);
        let db = db_for(&g, &oracle_like(), EdgeStyle::PageRank).unwrap();
        // out-weights of each node sum to 1
        let mut sums: FxHashMap<i64, f64> = FxHashMap::default();
        for r in db.catalog.relation("E").unwrap().iter() {
            *sums.entry(r[0].as_int().unwrap()).or_insert(0.0) += r[2].as_f64().unwrap();
        }
        for (_, s) in sums {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn seed_weights() {
        let g = generate(GraphKind::Uniform, 5, 10, true, 1);
        let mut db = db_for(&g, &oracle_like(), EdgeStyle::Raw).unwrap();
        set_node_weights(&mut db, &[(2, 9.5)]).unwrap();
        let v = db.catalog.relation("V").unwrap();
        let m = node_f64_map(v);
        assert_eq!(m[&2], 9.5);
    }
}
