//! Markov-Clustering (van Dongen, Table 2): alternate *expansion* (the
//! matrix squared — a nonlinear MM-join of the recursive relation with
//! itself) and *inflation* (elementwise power + column re-normalization),
//! pruning vanishing entries. Flow concentrates inside clusters.
//!
//! The recursive relation is the whole stochastic matrix, replaced
//! wholesale per iteration (`union by update` without attributes).

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::{row, FxHashMap, Relation};
use aio_withplus::{QueryResult, Result};

/// Inflation exponent r = 2 and the pruning threshold are the classic MCL
/// defaults.
pub fn sql(iters: usize) -> String {
    format!(
        "with M(F, T, ew) as (
           (select EM.F, EM.T, EM.ew from EM)
           union by update
           (select Norm.F, Norm.T, Norm.ew from Norm where Norm.ew > :prune
            computed by
              Exp(F, T, ew) as select M1.F, M2.T, sum(M1.ew * M2.ew)
                              from M as M1, M as M2
                              where M1.T = M2.F group by M1.F, M2.T;
              Infl(F, T, ew) as select Exp.F, Exp.T, Exp.ew * Exp.ew from Exp;
              ColSum(T, s) as select Infl.T, sum(Infl.ew) from Infl group by Infl.T;
              Norm(F, T, ew) as select Infl.F, Infl.T, Infl.ew / ColSum.s
                               from Infl, ColSum where Infl.T = ColSum.T;)
           maxrecursion {iters})
         select * from M"
    )
}

/// Run MCL; returns node → cluster id (the attractor row that holds the
/// largest share of the node's column).
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    iters: usize,
) -> Result<(FxHashMap<i64, i64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::Raw)?;
    // EM: column-stochastic matrix with self-loops (standard MCL input)
    let mut indeg = vec![1usize; g.node_count()]; // 1 for the self-loop
    for (_, v, _) in g.edges() {
        indeg[v as usize] += 1;
    }
    let mut em = Relation::new(aio_storage::edge_schema());
    for (u, v, _) in g.edges() {
        em.push(row![u as i64, v as i64, 1.0 / indeg[v as usize] as f64])?;
    }
    for (v, &deg) in indeg.iter().enumerate() {
        em.push(row![v as i64, v as i64, 1.0 / deg as f64])?;
    }
    db.create_table("EM", em)?;
    db.set_param("prune", 1e-4);
    let out = db.execute(&sql(iters))?;

    // decode: a node's cluster is the argmax row of its column
    let mut best: FxHashMap<i64, (i64, f64)> = FxHashMap::default();
    for r in out.relation.iter() {
        let (f, t, w) = (
            r[0].as_int().unwrap(),
            r[1].as_int().unwrap(),
            r[2].as_f64().unwrap(),
        );
        let e = best.entry(t).or_insert((f, w));
        if w > e.1 {
            *e = (f, w);
        }
    }
    let clusters = best.into_iter().map(|(t, (f, _))| (t, f)).collect();
    Ok((clusters, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;

    /// Two 4-cliques joined by one bridge edge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        edges.push((base + i, base + j, 1.0));
                    }
                }
            }
        }
        edges.push((3, 4, 1.0));
        edges.push((4, 3, 1.0));
        Graph::from_edges(8, &edges, true)
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let (clusters, _) = run(&g, &oracle_like(), 20).unwrap();
        // everyone in clique A shares a cluster, ditto clique B, and the
        // two differ
        let a = clusters[&0];
        let b = clusters[&7];
        assert_ne!(a, b, "{clusters:?}");
        for v in 0..4 {
            assert_eq!(clusters[&v], a, "node {v}: {clusters:?}");
        }
        for v in 4..8 {
            assert_eq!(clusters[&v], b, "node {v}: {clusters:?}");
        }
    }

    #[test]
    fn columns_stay_stochastic() {
        let g = two_cliques();
        let mut db = common::db_for(&g, &oracle_like(), EdgeStyle::Raw).unwrap();
        let mut indeg = vec![1usize; g.node_count()];
        for (_, v, _) in g.edges() {
            indeg[v as usize] += 1;
        }
        let mut em = Relation::new(aio_storage::edge_schema());
        for (u, v, _) in g.edges() {
            em.push(row![u as i64, v as i64, 1.0 / indeg[v as usize] as f64])
                .unwrap();
        }
        for (v, &deg) in indeg.iter().enumerate() {
            em.push(row![v as i64, v as i64, 1.0 / deg as f64]).unwrap();
        }
        db.create_table("EM", em).unwrap();
        db.set_param("prune", 1e-4);
        let out = db.execute(&sql(3)).unwrap();
        let mut sums: FxHashMap<i64, f64> = FxHashMap::default();
        for r in out.relation.iter() {
            *sums.entry(r[1].as_int().unwrap()).or_insert(0.0) += r[2].as_f64().unwrap();
        }
        for (t, s) in sums {
            assert!((s - 1.0).abs() < 1e-3, "column {t} sums to {s}");
        }
    }

    #[test]
    fn converges_to_sparse_attractors() {
        let g = two_cliques();
        let (_, out) = run(&g, &oracle_like(), 30).unwrap();
        // at convergence the matrix is much sparser than n²
        assert!(out.relation.len() <= 24, "{} rows", out.relation.len());
    }
}
