//! PageRank (Eq. 9, Fig. 3): MV-join with `f₁(·) = c·sum(vw·ew) + (1−c)/n`
//! plus union-by-update, linear recursion — *the* motivating example of the
//! paper's with+ clause.
//!
//! Also provides the SQL'99 baseline of Fig. 9 (PostgreSQL-only:
//! `partition by` + `distinct` + `union all`), used by Exp-C / Fig. 12.

use crate::common::{self, EdgeStyle};
use aio_algebra::EngineProfile;
use aio_graph::Graph;
use aio_storage::FxHashMap;
use aio_withplus::sql99::{Sql99Engine, Sql99System};
use aio_withplus::{Parser, QueryResult, Result, Statement, WithPlusError};

/// Fig. 3, verbatim modulo parameter names.
pub fn sql(iters: usize) -> String {
    format!(
        "with P(ID, W) as (
           (select V.ID, 0.0 from V)
           union by update ID
           (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E
            where P.ID = E.F group by E.T)
           maxrecursion {iters})
         select ID, W from P"
    )
}

/// Fig. 9: PageRank in plain SQL'99 `with` using `partition by` +
/// `distinct`, accumulating one generation of tuples per level `L`.
pub fn sql99_fig9(iters: usize) -> String {
    format!(
        "with P(ID, W, L) as (
           (select V.ID, 0.0, 0 from V)
           union all
           (select distinct E.T,
                   :c * (sum(P.W * E.ew) over (partition by E.T)) + (1 - :c) / :n,
                   P.L + 1
            from P, E where P.ID = E.F and P.L < {iters}))
         select P.ID, P.W from P where P.L = {iters}"
    )
}

/// Run with+ PageRank (Fig. 3); returns id → rank.
pub fn run(
    g: &Graph,
    profile: &EngineProfile,
    c: f64,
    iters: usize,
) -> Result<(FxHashMap<i64, f64>, QueryResult)> {
    let mut db = common::db_for(g, profile, EdgeStyle::PageRank)?;
    db.set_param("c", c);
    db.set_param("n", g.node_count() as f64);
    let out = db.execute(&sql(iters))?;
    Ok((common::node_f64_map(&out.relation), out))
}

/// Run the Fig. 9 SQL'99 baseline on the PostgreSQL profile; returns
/// id → rank plus the run result (whose per-iteration `r_rows` exhibit the
/// linear tuple growth of Fig. 12(b)).
pub fn run_sql99(
    g: &Graph,
    c: f64,
    iters: usize,
) -> Result<(FxHashMap<i64, f64>, QueryResult)> {
    let mut db = common::db_for(g, &Sql99System::PostgreSql.profile(), EdgeStyle::PageRank)?;
    db.set_param("c", c);
    db.set_param("n", g.node_count() as f64);
    let sql = sql99_fig9(iters);
    let Statement::WithPlus(w) = Parser::parse_statement(&sql)? else {
        return Err(WithPlusError::Restriction("expected with".into()));
    };
    let engine = Sql99Engine::new(Sql99System::PostgreSql);
    let params = [
        ("c".to_string(), c.into()),
        ("n".to_string(), (g.node_count() as f64).into()),
    ]
    .into_iter()
    .collect();
    let out = engine.execute(&mut db.catalog, &w, &params)?;
    Ok((common::node_f64_map(&out.relation), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::{all_profiles, oracle_like};
    use aio_graph::{generate, reference, GraphKind};

    fn check(g: &Graph, profile: &EngineProfile) {
        let (ranks, _) = run(g, profile, 0.85, 15).unwrap();
        let gw = reference::with_pagerank_weights(g);
        let expected = reference::pagerank(&gw, 0.85, 15);
        for (v, &e) in expected.iter().enumerate() {
            let got = ranks[&(v as i64)];
            assert!((got - e).abs() < 1e-9, "node {v}: {got} vs {e}");
        }
    }

    #[test]
    fn matches_reference_power_iteration() {
        let g = generate(GraphKind::PowerLaw, 80, 350, true, 51);
        check(&g, &oracle_like());
    }

    #[test]
    fn all_profiles_agree() {
        let g = generate(GraphKind::PowerLaw, 60, 200, true, 52);
        for p in all_profiles() {
            check(&g, &p);
        }
    }

    #[test]
    fn runs_exactly_iters_iterations() {
        let g = generate(GraphKind::PowerLaw, 50, 200, true, 53);
        let (_, out) = run(&g, &oracle_like(), 0.85, 15).unwrap();
        assert_eq!(out.stats.iterations.len(), 15);
        // |R| stays n under union-by-update — the Fig. 12(b) with+ line
        assert!(out
            .stats
            .iterations
            .iter()
            .all(|it| it.r_rows == g.node_count()));
    }

    #[test]
    fn fig9_sql99_matches_with_plus_per_iteration() {
        // The paper's claim behind Fig. 12: both programs compute the same
        // ranks, but the with version accumulates tuples linearly.
        //
        // The agreement only holds on generation-stable graphs: a source
        // node with no incoming path of length L-1 drops out of Fig. 9's
        // level-L working table but still contributes under with+'s
        // union-by-update, so the two genuinely diverge on such inputs
        // (the paper evaluates on large cycle-rich graphs where this does
        // not arise). A spanning cycle gives every node an incoming path
        // of every length.
        let base = generate(GraphKind::PowerLaw, 40, 150, true, 54);
        let nb = base.node_count() as u32;
        let mut edges: Vec<(u32, u32, f64)> = base.edges().collect();
        for v in 0..nb {
            let t = (v + 1) % nb;
            if !base.neighbors(v).contains(&t) {
                edges.push((v, t, 1.0));
            }
        }
        let g = Graph::from_edges(base.node_count(), &edges, true);
        let iters = 6;
        let (a, with_plus) = run(&g, &oracle_like(), 0.85, iters).unwrap();
        let (b, with99) = run_sql99(&g, 0.85, iters).unwrap();
        for (id, w) in &b {
            assert!((a[id] - w).abs() < 1e-9, "node {id}");
        }
        // with+ holds n tuples; with holds ~ (iters+1)·n-ish (only nodes
        // with in-edges appear in later generations)
        let n = g.node_count();
        assert_eq!(with_plus.stats.iterations.last().unwrap().r_rows, n);
        let acc = with99.stats.iterations.last().unwrap().r_rows;
        assert!(acc > 3 * n, "accumulated {acc} tuples should grow with L");
    }

    #[test]
    fn fig9_nodes_without_inedges_differ_only_there() {
        // Under union-by-update a dangling target keeps its previous value;
        // under Fig. 9's union all the L=iters generation only contains
        // nodes with in-edges. The final selects therefore cover different
        // node sets but agree on the intersection (checked above); here we
        // confirm the with+ result covers *all* nodes.
        let g = generate(GraphKind::PowerLaw, 30, 80, true, 55);
        let (a, _) = run(&g, &oracle_like(), 0.85, 4).unwrap();
        assert_eq!(a.len(), g.node_count());
    }
}
