//! Virtual file system: every durable-I/O syscall the storage layer makes
//! goes through the [`Vfs`] trait.
//!
//! Two implementations:
//!
//! * [`StdVfs`] — the real thing, a thin veneer over `std::fs`.
//! * [`SimVfs`] — a deterministic in-memory simulator in the FoundationDB
//!   style. It distinguishes *durable* bytes (survived an `fsync`) from
//!   *pending* bytes (written but not yet synced), counts every mutating
//!   syscall, and can be armed to crash at the K-th such syscall — including
//!   tearing the in-flight write at a pseudo-random prefix. After a crash,
//!   [`SimVfs::crash_image`] produces the file system a rebooted process
//!   would see: durable bytes always survive; for the pending bytes the
//!   caller picks a fate (all lost, all kept, or independently torn), so the
//!   recovery path can be swept across every syscall boundary × every
//!   unsynced-write outcome.
//!
//! Simplifications, documented so the tests know what they prove:
//! `rename` and `remove` are modelled as atomic-and-durable at the moment
//! they succeed (real file systems need a directory fsync; our checkpoint
//! protocol only renames fully-synced files, so the distinction does not
//! change what recovery can observe), and directories are implicit — paths
//! are flat strings and `create_dir_all` is a no-op in the simulator.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::Mutex;

/// Abstract file system used by the durability subsystem.
///
/// All paths are plain UTF-8 strings. Object-safe on purpose: the catalog
/// holds an `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read the whole file.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Replace the whole file (create if missing). Not durable until
    /// [`Vfs::sync`].
    fn write(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Append to the file (create if missing). Not durable until
    /// [`Vfs::sync`].
    fn append(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Make all previous writes to `path` durable (`fsync`).
    fn sync(&self, path: &str) -> io::Result<()>;
    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Delete a file.
    fn remove(&self, path: &str) -> io::Result<()>;
    fn exists(&self, path: &str) -> bool;
    /// File names (not full paths) directly inside `dir`.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;
    fn create_dir_all(&self, dir: &str) -> io::Result<()>;
}

/// The real file system.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).create(true).open(path)?;
        f.write_all(data)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &str) -> bool {
        std::path::Path::new(path).exists()
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// What happens to bytes that were written but never synced when a crash
/// image is taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsyncedFate {
    /// Every unsynced write is lost (the conservative outcome `fsync`
    /// guarantees against).
    DropAll,
    /// Every unsynced write made it to disk anyway (the lucky outcome).
    KeepAll,
    /// Each unsynced write independently survives, vanishes, or is torn at
    /// a prefix chosen by a deterministic PRNG seeded here.
    Torn(u64),
}

/// One write that has not been fsynced yet.
#[derive(Clone, Debug)]
enum Pending {
    Append(Vec<u8>),
    Rewrite(Vec<u8>),
}

#[derive(Clone, Debug, Default)]
struct SimFile {
    durable: Vec<u8>,
    pending: Vec<Pending>,
}

impl SimFile {
    /// The content a reader of the *live* (not-yet-crashed) process sees.
    fn logical(&self) -> Vec<u8> {
        let mut v = self.durable.clone();
        for p in &self.pending {
            match p {
                Pending::Append(d) => v.extend_from_slice(d),
                Pending::Rewrite(d) => {
                    v.clear();
                    v.extend_from_slice(d);
                }
            }
        }
        v
    }
}

#[derive(Debug)]
struct SimState {
    files: BTreeMap<String, SimFile>,
    /// Mutating syscalls performed so far (write/append/sync/rename/remove).
    ops: u64,
    /// Crash when `ops` reaches this value.
    crash_at: Option<u64>,
    crashed: bool,
    rng: u64,
}

/// Deterministic in-memory file system with crash injection.
#[derive(Debug)]
pub struct SimVfs {
    state: Mutex<SimState>,
}

impl Default for SimVfs {
    fn default() -> Self {
        SimVfs::new()
    }
}

fn xorshift(x: &mut u64) -> u64 {
    let mut v = *x;
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    *x = v;
    v
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash: vfs is down")
}

impl SimVfs {
    pub fn new() -> Self {
        SimVfs {
            state: Mutex::new(SimState {
                files: BTreeMap::new(),
                ops: 0,
                crash_at: None,
                crashed: false,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Arm a crash at the `op`-th mutating syscall from now (1-based over
    /// the *total* op counter). A crash during a data write tears it at a
    /// pseudo-random prefix before failing; after the crash every further
    /// operation fails until a fresh [`SimVfs::crash_image`] is taken.
    pub fn set_crash_at(&self, op: u64) {
        let mut st = self.state.lock().unwrap();
        st.crash_at = Some(op);
    }

    /// Total mutating syscalls performed so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    pub fn has_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// The file system a rebooted process would observe: durable bytes plus
    /// whatever `fate` says happened to the unsynced tail. The image is a
    /// fresh, un-armed `SimVfs` (everything in it counts as durable).
    pub fn crash_image(&self, fate: UnsyncedFate) -> SimVfs {
        let st = self.state.lock().unwrap();
        let mut rng = match fate {
            UnsyncedFate::Torn(seed) => seed | 1,
            _ => 1,
        };
        let mut files = BTreeMap::new();
        // BTreeMap iteration order is the path order — deterministic, so a
        // given (crash point, seed) always produces the same image.
        for (path, f) in &st.files {
            let content = match fate {
                UnsyncedFate::DropAll => f.durable.clone(),
                UnsyncedFate::KeepAll => f.logical(),
                UnsyncedFate::Torn(_) => {
                    let mut v = f.durable.clone();
                    for p in &f.pending {
                        let choice = xorshift(&mut rng) % 3;
                        let torn = |rng: &mut u64, d: &[u8]| {
                            let cut = (xorshift(rng) as usize) % (d.len() + 1);
                            d[..cut].to_vec()
                        };
                        match (p, choice) {
                            (Pending::Append(_), 0) | (Pending::Rewrite(_), 0) => {}
                            (Pending::Append(d), 1) => v.extend_from_slice(d),
                            (Pending::Append(d), _) => v.extend_from_slice(&torn(&mut rng, d)),
                            (Pending::Rewrite(d), 1) => v = d.clone(),
                            (Pending::Rewrite(d), _) => v = torn(&mut rng, d),
                        }
                    }
                    v
                }
            };
            files.insert(
                path.clone(),
                SimFile {
                    durable: content,
                    pending: Vec::new(),
                },
            );
        }
        SimVfs {
            state: Mutex::new(SimState {
                files,
                ops: 0,
                crash_at: None,
                crashed: false,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Mutate raw file bytes directly (fuzzing hook; not a counted op).
    pub fn corrupt(&self, path: &str, f: impl FnOnce(&mut Vec<u8>)) -> bool {
        let mut st = self.state.lock().unwrap();
        match st.files.get_mut(path) {
            Some(file) => {
                let mut bytes = file.logical();
                f(&mut bytes);
                file.durable = bytes;
                file.pending.clear();
                true
            }
            None => false,
        }
    }

    /// All file paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.state.lock().unwrap().files.keys().cloned().collect()
    }

    /// Count the mutating syscalls `f` performs against this vfs.
    fn gate(st: &mut SimState) -> io::Result<bool> {
        if st.crashed {
            return Err(crash_err());
        }
        st.ops += 1;
        if st.crash_at == Some(st.ops) {
            st.crashed = true;
            return Ok(true);
        }
        Ok(false)
    }
}

impl Vfs for SimVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let st = self.state.lock().unwrap();
        st.files
            .get(path)
            .map(|f| f.logical())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn write(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let inject = SimVfs::gate(&mut st)?;
        if inject {
            let cut = (xorshift(&mut st.rng) as usize) % (data.len() + 1);
            let torn = data[..cut].to_vec();
            st.files.entry(path.to_string()).or_default().pending.push(Pending::Rewrite(torn));
            return Err(crash_err());
        }
        st.files
            .entry(path.to_string())
            .or_default()
            .pending
            .push(Pending::Rewrite(data.to_vec()));
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let inject = SimVfs::gate(&mut st)?;
        if inject {
            let cut = (xorshift(&mut st.rng) as usize) % (data.len() + 1);
            let torn = data[..cut].to_vec();
            st.files.entry(path.to_string()).or_default().pending.push(Pending::Append(torn));
            return Err(crash_err());
        }
        st.files
            .entry(path.to_string())
            .or_default()
            .pending
            .push(Pending::Append(data.to_vec()));
        Ok(())
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let inject = SimVfs::gate(&mut st)?;
        if inject {
            // The fsync never happened: pending writes stay pending.
            return Err(crash_err());
        }
        match st.files.get_mut(path) {
            Some(f) => {
                f.durable = f.logical();
                f.pending.clear();
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, path.to_string())),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let inject = SimVfs::gate(&mut st)?;
        if inject {
            // Crash before the rename took effect.
            return Err(crash_err());
        }
        let f = st
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        st.files.insert(to.to_string(), f);
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let inject = SimVfs::gate(&mut st)?;
        if inject {
            return Err(crash_err());
        }
        st.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn exists(&self, path: &str) -> bool {
        self.state.lock().unwrap().files.contains_key(path)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let st = self.state.lock().unwrap();
        let prefix = format!("{dir}/");
        let mut out: Vec<String> = st
            .files
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(|s| s.to_string())
            .collect();
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, _dir: &str) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_drop_on_conservative_image() {
        let v = SimVfs::new();
        v.write("db/a", b"durable").unwrap();
        v.sync("db/a").unwrap();
        v.append("db/a", b"+tail").unwrap(); // never synced
        let img = v.crash_image(UnsyncedFate::DropAll);
        assert_eq!(img.read("db/a").unwrap(), b"durable");
        let img = v.crash_image(UnsyncedFate::KeepAll);
        assert_eq!(img.read("db/a").unwrap(), b"durable+tail");
    }

    #[test]
    fn crash_at_op_tears_write_and_poisons_vfs() {
        let v = SimVfs::new();
        v.write("db/a", b"x").unwrap();
        v.sync("db/a").unwrap();
        v.set_crash_at(3);
        let err = v.append("db/a", b"0123456789").unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(v.has_crashed());
        assert!(v.append("db/a", b"more").is_err(), "vfs stays down");
        // The torn bytes are pending, never durable.
        let img = v.crash_image(UnsyncedFate::DropAll);
        assert_eq!(img.read("db/a").unwrap(), b"x");
        let img = v.crash_image(UnsyncedFate::KeepAll);
        let kept = img.read("db/a").unwrap();
        assert!(kept.len() <= 11 && kept.starts_with(b"x"), "torn prefix only");
    }

    #[test]
    fn torn_images_are_deterministic() {
        let v = SimVfs::new();
        v.append("db/w", b"aaaa").unwrap();
        v.append("db/w", b"bbbb").unwrap();
        let a = v.crash_image(UnsyncedFate::Torn(7)).read("db/w").unwrap_or_default();
        let b = v.crash_image(UnsyncedFate::Torn(7)).read("db/w").unwrap_or_default();
        assert_eq!(a, b);
    }

    #[test]
    fn rename_and_list() {
        let v = SimVfs::new();
        v.write("db/snapshot.1.tmp", b"s").unwrap();
        v.sync("db/snapshot.1.tmp").unwrap();
        v.rename("db/snapshot.1.tmp", "db/snapshot.1").unwrap();
        assert_eq!(v.list("db").unwrap(), vec!["snapshot.1".to_string()]);
        assert!(v.exists("db/snapshot.1"));
        assert!(!v.exists("db/snapshot.1.tmp"));
    }

    #[test]
    fn ops_counted_for_mutations_only() {
        let v = SimVfs::new();
        v.write("db/a", b"1").unwrap(); // 1
        v.sync("db/a").unwrap(); // 2
        let _ = v.read("db/a").unwrap(); // not counted
        let _ = v.list("db").unwrap(); // not counted
        v.remove("db/a").unwrap(); // 3
        assert_eq!(v.op_count(), 3);
    }
}
