//! A fast, non-cryptographic hasher for internal hash tables.
//!
//! Join keys are overwhelmingly small integers (node identifiers), for which
//! SipHash is needlessly slow. This is the well-known "Fx" multiply-rotate
//! hash used by rustc; collision quality is adequate for in-process hash
//! joins and HashDoS is not a concern for an embedded engine.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc "FxHasher").
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ints_hash_differently() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000i64 {
            seen.insert(i);
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn deterministic() {
        let h = |b: &[u8]| {
            let mut s = FxHasher::default();
            s.write(b);
            s.finish()
        };
        assert_eq!(h(b"edge"), h(b"edge"));
        assert_ne!(h(b"edge"), h(b"node"));
    }

    #[test]
    fn unaligned_tail_covered() {
        let h = |b: &[u8]| {
            let mut s = FxHasher::default();
            s.write(b);
            s.finish()
        };
        assert_ne!(h(b"123456789"), h(b"12345678"));
    }
}
