//! Relation schemas and column resolution.
//!
//! Columns carry optional *qualifiers* (`E.F`, `V.ID`) so that the output of
//! a join can expose both sides' columns unambiguously, exactly as the
//! paper's SQL examples do (`select TC.F, E.T from TC, E ...`, Fig. 1).

use crate::error::{Result, StorageError};
use std::fmt;
use std::sync::Arc;

/// The declared type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataType {
    Int,
    Float,
    Text,
    /// Accepts any value; used for derived expressions whose type is not
    /// statically pinned (e.g. `coalesce(V.vw, V2.vw)`).
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

/// One column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Table qualifier, if any (the alias a column came from).
    pub qualifier: Option<String>,
    /// The bare column name.
    pub name: String,
    pub ty: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
            ty,
        }
    }

    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>, ty: DataType) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            ty,
        }
    }

    /// `qualifier.name` if qualified, else just `name`.
    pub fn full_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns. Cheap to clone (`Arc` inside [`Schema`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    cols: Arc<Vec<Column>>,
}

impl Schema {
    pub fn new(cols: Vec<Column>) -> Self {
        Schema {
            cols: Arc::new(cols),
        }
    }

    /// Schema from `(name, type)` pairs, unqualified.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect(),
        )
    }

    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Re-qualify every column with `alias` (what `FROM t AS a` does).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema::new(
            self.cols
                .iter()
                .map(|c| Column::qualified(alias, &c.name, c.ty))
                .collect(),
        )
    }

    /// Drop all qualifiers (the shape a stored table has).
    pub fn unqualified(&self) -> Schema {
        Schema::new(
            self.cols
                .iter()
                .map(|c| Column::new(&c.name, c.ty))
                .collect(),
        )
    }

    /// Concatenate two schemas (the schema of a product or join).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.as_ref().clone();
        cols.extend(other.cols.iter().cloned());
        Schema::new(cols)
    }

    /// Resolve a (possibly qualified) column reference to an index.
    ///
    /// `"E.F"` matches only columns whose qualifier is `E` and name is `F`;
    /// `"F"` matches any column named `F`. Ambiguity is an error, per SQL.
    pub fn index_of(&self, reference: &str) -> Result<usize> {
        let (qual, name) = match reference.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, reference),
        };
        let mut found: Option<usize> = None;
        for (i, c) in self.cols.iter().enumerate() {
            let matches = match qual {
                Some(q) => c.qualifier.as_deref() == Some(q) && eq_ident(&c.name, name),
                None => eq_ident(&c.name, name),
            };
            if matches {
                if found.is_some() {
                    return Err(StorageError::AmbiguousColumn {
                        column: reference.to_string(),
                        schema: self.describe(),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| StorageError::NoSuchColumn {
            column: reference.to_string(),
            schema: self.describe(),
        })
    }

    /// Human-readable `name type, name type, ...` form for error messages.
    pub fn describe(&self) -> String {
        self.cols
            .iter()
            .map(|c| format!("{} {}", c.full_name(), c.ty))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// SQL identifiers are case-insensitive.
fn eq_ident(a: &str, b: &str) -> bool {
    a.eq_ignore_ascii_case(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_schema() -> Schema {
        Schema::of(&[
            ("F", DataType::Int),
            ("T", DataType::Int),
            ("ew", DataType::Float),
        ])
    }

    #[test]
    fn resolves_unqualified() {
        let s = edge_schema();
        assert_eq!(s.index_of("F").unwrap(), 0);
        assert_eq!(s.index_of("ew").unwrap(), 2);
        assert_eq!(s.index_of("EW").unwrap(), 2, "case-insensitive");
    }

    #[test]
    fn resolves_qualified_after_alias() {
        let s = edge_schema().with_qualifier("E1");
        assert_eq!(s.index_of("E1.T").unwrap(), 1);
        assert!(s.index_of("E2.T").is_err());
        assert_eq!(s.index_of("T").unwrap(), 1, "bare name still resolves");
    }

    #[test]
    fn join_schema_detects_ambiguity() {
        let j = edge_schema()
            .with_qualifier("A")
            .join(&edge_schema().with_qualifier("B"));
        assert_eq!(j.arity(), 6);
        assert_eq!(j.index_of("A.F").unwrap(), 0);
        assert_eq!(j.index_of("B.F").unwrap(), 3);
        assert!(matches!(
            j.index_of("F"),
            Err(StorageError::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn missing_column_names_schema() {
        let err = edge_schema().index_of("vw").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("vw") && msg.contains("ew"), "{msg}");
    }
}
