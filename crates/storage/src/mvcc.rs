//! MVCC snapshot publication: the generation hub.
//!
//! The catalog becomes multi-version by treating every committed WAL
//! boundary — auto-commit, explicit commit, fixpoint-iteration commit,
//! run end, checkpoint — as a *generation*. When MVCC is enabled
//! ([`crate::Catalog::enable_mvcc`]), each boundary publishes an immutable
//! [`Snapshot`] into the [`GenerationHub`]: a read-only fork of the catalog
//! whose table entries are `Arc`-shared with the writer. The writer's next
//! mutation of a shared table copies only that entry (copy-on-write), so a
//! publish costs one table-map clone and a mutation costs at most one
//! relation clone — never a whole-catalog copy.
//!
//! Readers call [`GenerationHub::pin`] to hold the newest committed
//! generation for as long as they like. Pinning is a mutex-guarded `Arc`
//! clone; the writer never waits on readers (it only ever *replaces* the
//! current snapshot under the same short-lived lock), and a pinned snapshot
//! stays fully readable — rows, statistics, cached tries — no matter how
//! far the writer advances. That is the whole snapshot-isolation story:
//! no dirty reads (only committed boundaries publish), no non-repeatable
//! reads (a pin never changes content), no writer stalls (readers share,
//! never lock, the data).

use crate::catalog::Catalog;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One committed catalog generation: an immutable, read-only catalog fork.
///
/// `catalog` has no durable log, no hub and an empty cost-model WAL — it
/// exists purely to serve reads. Its table entries are `Arc`-shared with
/// the writer catalog until the writer mutates them (copy-on-write).
#[derive(Debug)]
pub struct Snapshot {
    /// The generation number ([`Catalog::generation`] at publish time).
    pub gen: u64,
    /// Read-only catalog as of this generation.
    pub catalog: Catalog,
}

/// Publication point between one writer and any number of snapshot readers.
///
/// Holds the newest committed [`Snapshot`] plus a pin gauge. Created by
/// [`Catalog::enable_mvcc`]; the catalog publishes into it at every commit
/// point from then on.
#[derive(Debug)]
pub struct GenerationHub {
    current: Mutex<Arc<Snapshot>>,
    pins: AtomicU64,
}

impl GenerationHub {
    /// A hub primed with the catalog's current state as its first
    /// generation (readers can pin immediately).
    pub fn new(initial: Snapshot) -> GenerationHub {
        GenerationHub {
            current: Mutex::new(Arc::new(initial)),
            pins: AtomicU64::new(0),
        }
    }

    /// Replace the newest committed generation. Called by the catalog at
    /// every commit point; existing pins keep their old snapshot alive
    /// through their own `Arc`.
    pub(crate) fn publish(&self, snap: Snapshot) {
        let gen = snap.gen;
        *self.current.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(snap);
        aio_metrics::hooks::mvcc_publish(gen);
    }

    /// The newest committed generation number.
    pub fn current_gen(&self) -> u64 {
        self.current.lock().unwrap_or_else(|e| e.into_inner()).gen
    }

    /// How many [`PinnedSnapshot`]s are alive right now.
    pub fn pinned(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// Pin the newest committed generation. The returned handle keeps that
    /// generation's catalog readable until dropped; the writer is never
    /// blocked by it.
    pub fn pin(self: &Arc<Self>) -> PinnedSnapshot {
        let snap = self
            .current
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let now = self.pins.fetch_add(1, Ordering::Relaxed) + 1;
        aio_metrics::hooks::mvcc_pin(now);
        PinnedSnapshot { hub: Arc::clone(self), snap }
    }
}

/// A reader's hold on one committed generation (RAII: dropping unpins).
#[derive(Debug)]
pub struct PinnedSnapshot {
    hub: Arc<GenerationHub>,
    snap: Arc<Snapshot>,
}

impl PinnedSnapshot {
    /// The pinned generation number.
    pub fn generation(&self) -> u64 {
        self.snap.gen
    }

    /// The pinned generation's read-only catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.snap.catalog
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        let before = self.hub.pins.fetch_sub(1, Ordering::Relaxed);
        aio_metrics::hooks::mvcc_unpin(before.saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{node_schema, Relation};
    use crate::row;
    use crate::wal::WalPolicy;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshots_cross_threads() {
        // The whole point of the hub: snapshots are read on other threads.
        assert_send_sync::<Catalog>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<GenerationHub>();
        assert_send_sync::<PinnedSnapshot>();
    }

    #[test]
    fn pin_tracks_newest_committed_generation() {
        let mut c = Catalog::new();
        c.create_table("T", Relation::new(node_schema())).unwrap();
        let hub = c.enable_mvcc();
        let g0 = hub.current_gen();
        let p0 = hub.pin();
        assert_eq!(p0.generation(), g0);
        assert_eq!(hub.pinned(), 1);

        // an auto-committed insert is a commit point: a new generation
        c.insert_rows("T", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        assert!(hub.current_gen() > g0);
        let p1 = hub.pin();
        assert_eq!(p1.generation(), c.generation());
        assert_eq!(p1.catalog().relation("T").unwrap().len(), 1);
        // the earlier pin still sees its own (empty) generation
        assert_eq!(p0.catalog().relation("T").unwrap().len(), 0);
        drop(p0);
        drop(p1);
        assert_eq!(hub.pinned(), 0);
    }

    #[test]
    fn explicit_txn_publishes_only_at_commit() {
        let mut c = Catalog::new();
        c.create_table("T", Relation::new(node_schema())).unwrap();
        let hub = c.enable_mvcc();
        c.wal_begin_txn();
        assert!(c.in_txn());
        let before = hub.current_gen();
        c.insert_rows("T", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        c.insert_rows("T", vec![row![2, 2.0]], WalPolicy::None).unwrap();
        // uncommitted: readers still pin the pre-txn generation
        assert_eq!(hub.current_gen(), before);
        assert_eq!(hub.pin().catalog().relation("T").unwrap().len(), 0);
        c.wal_commit_txn().unwrap();
        assert!(!c.in_txn());
        assert!(hub.current_gen() > before);
        assert_eq!(hub.pin().catalog().relation("T").unwrap().len(), 2);
    }

    #[test]
    fn pinned_reader_keeps_its_generations_tries_and_stats() {
        // Satellite regression: caches are per generation, not globally
        // clobbered. A pinned reader keeps hitting its own generation's
        // trie and statistics across writer mutations.
        let mut c = Catalog::new();
        c.create_table("T", Relation::new(crate::relation::edge_schema()))
            .unwrap();
        c.insert_rows("T", vec![row![1, 2, 1.0], row![2, 3, 1.0]], WalPolicy::None)
            .unwrap();
        c.build_trie("T", &[0, 1]).unwrap();
        c.analyze("T").unwrap();
        let hub = c.enable_mvcc();
        let pin = hub.pin();
        assert!(pin.catalog().trie_on("T", &[0, 1]).is_some(), "snapshot carries the cache");
        let snap_rows = pin.catalog().stats("T").unwrap().rows;

        // writer mutates: its own cache invalidates, the pin's must not
        c.insert_rows("T", vec![row![3, 4, 1.0]], WalPolicy::None).unwrap();
        assert!(c.trie_on("T", &[0, 1]).is_none(), "writer cache invalidated");
        assert!(c.stats("T").is_none(), "writer stats invalidated");
        let t = pin.catalog().trie_on("T", &[0, 1]).expect("pinned trie survives");
        assert_eq!(t.len(), 2, "pinned trie indexes the pinned rows");
        assert_eq!(pin.catalog().stats("T").unwrap().rows, snap_rows);
        assert_eq!(pin.catalog().relation("T").unwrap().len(), 2);
        assert_eq!(c.relation("T").unwrap().len(), 3);

        // a lazy build through the *snapshot* must not leak into the writer
        let rebuilt = pin.catalog().trie_for("T", &[1, 0]).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert!(c.trie_on("T", &[1, 0]).is_none(), "writer unaffected by snapshot build");
    }

    #[test]
    fn cow_clones_only_the_touched_table() {
        let mut c = Catalog::new();
        c.create_table("A", Relation::new(node_schema())).unwrap();
        c.create_table("B", Relation::new(node_schema())).unwrap();
        c.insert_rows("A", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        c.insert_rows("B", vec![row![9, 9.0]], WalPolicy::None).unwrap();
        let hub = c.enable_mvcc();
        let pin = hub.pin();
        let a_before = c.relation("A").unwrap().rows().as_ptr();
        let b_before = c.relation("B").unwrap().rows().as_ptr();
        c.insert_rows("A", vec![row![2, 2.0]], WalPolicy::None).unwrap();
        // A was copied-on-write away from the pinned snapshot…
        assert_ne!(c.relation("A").unwrap().rows().as_ptr(), a_before);
        assert_eq!(pin.catalog().relation("A").unwrap().rows().as_ptr(), a_before);
        // …while untouched B is still the very same allocation everywhere
        assert_eq!(c.relation("B").unwrap().rows().as_ptr(), b_before);
        assert_eq!(pin.catalog().relation("B").unwrap().rows().as_ptr(), b_before);
    }

    #[test]
    fn concurrent_pinned_reads_while_writer_advances() {
        let mut c = Catalog::new();
        c.create_table("T", Relation::new(node_schema())).unwrap();
        let hub = c.enable_mvcc();
        let pin = hub.pin();
        let reader = std::thread::spawn(move || {
            // read the pinned (empty) generation from another thread
            pin.catalog().relation("T").unwrap().len()
        });
        for i in 0..10 {
            c.insert_rows("T", vec![row![i, i as f64]], WalPolicy::None).unwrap();
        }
        assert_eq!(reader.join().unwrap(), 0);
        assert_eq!(hub.pin().catalog().relation("T").unwrap().len(), 10);
    }
}
