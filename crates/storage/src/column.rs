//! Typed columnar batches: the SoA execution representation (ISSUE 6).
//!
//! A [`Batch`] is a set of aligned [`ColumnVec`]s sharing one length — the
//! column-major counterpart of a [`Relation`]'s `Vec<Row>`. Each column is
//! stored in the densest layout its values admit:
//!
//! * `Int`   — `Vec<i64>` plus a [`NullMask`] (null slots hold `0`),
//! * `Float` — `Vec<f64>` with the exact IEEE bits preserved (so
//!   `-0.0` / NaN payloads round-trip),
//! * `Str`   — dictionary-encoded: `Vec<u32>` ids into an interned
//!   [`StringTable`] (one entry per distinct string),
//! * `Mixed` — `Vec<Value>` fallback for heterogeneous columns, which the
//!   row layer permits (`Relation::push` checks arity only).
//!
//! Null bitmap semantics: a [`NullMask`] is a little-endian `u64` word
//! vector where bit `i % 64` of word `i / 64` set means *row `i` is NULL*.
//! An empty mask means "no nulls"; the word vector may be shorter than
//! `len/64` words (trailing rows are non-null). Typed columns keep a
//! placeholder value (`0`, `0.0`, id `0`) in null slots so the dense
//! vectors stay aligned.
//!
//! Conversions are exact: `Batch::from_relation(r).to_relation()` yields
//! value-for-value identical rows (storage equality *and* float bits).
//! That exactness is what lets the batch executor hand results back across
//! the `Value`-row bridge at the with+/SQL'99 boundary without the four
//! engines noticing.

use std::sync::Arc;

use crate::hash::{FxHashMap, FxHashSet};
use crate::relation::{ColumnSketch, Relation, RelationStats, Row};
use crate::schema::Schema;
use crate::value::Value;

/// Row index sentinel used by [`Batch::gather`]: `u32::MAX` gathers a NULL
/// (outer-join padding).
pub const GATHER_NULL: u32 = u32::MAX;

/// An interned string table: one [`Arc<str>`] per distinct string, with
/// O(1) id lookup for interning. Ids are dense and assigned in first-seen
/// order.
#[derive(Clone, Debug, Default)]
pub struct StringTable {
    strings: Vec<Arc<str>>,
    index: FxHashMap<Arc<str>, u32>,
}

impl StringTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern `s`, returning its dense id. Re-interning an equal string
    /// returns the same id and allocates nothing.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), id);
        id
    }

    /// The string behind `id` (panics on an out-of-range id — ids only come
    /// from [`StringTable::intern`] on the same table).
    pub fn get(&self, id: u32) -> &Arc<str> {
        &self.strings[id as usize]
    }

    /// All interned strings in id order.
    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }
}

/// Null bitmap: little-endian `u64` words, bit set ⇒ row is NULL. An empty
/// word vector (or any bit past the vector's end) means non-null.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NullMask {
    words: Vec<u64>,
}

impl NullMask {
    /// A mask with no nulls.
    pub fn none() -> Self {
        Self::default()
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Mark row `i` NULL (grows the word vector on demand).
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// True iff any row is NULL.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of NULL rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw words (for the snapshot codec).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words (snapshot decode).
    pub fn from_words(words: Vec<u64>) -> Self {
        NullMask { words }
    }

    /// OR `other` into `self` with every bit shifted up by `offset` rows
    /// (column concatenation for `UNION ALL`).
    pub fn extend_shifted(&mut self, other: &NullMask, offset: usize, other_len: usize) {
        if !other.any() {
            return;
        }
        for i in 0..other_len {
            if other.get(i) {
                self.set(offset + i);
            }
        }
    }
}

/// One typed column of a [`Batch`].
#[derive(Clone, Debug)]
pub enum ColumnVec {
    /// Dense `i64`s; null slots hold `0` and are flagged in `nulls`.
    Int { vals: Vec<i64>, nulls: NullMask },
    /// Dense `f64`s with exact bits; null slots hold `0.0`.
    Float { vals: Vec<f64>, nulls: NullMask },
    /// Dictionary-encoded strings; null slots hold id `0`.
    Str {
        ids: Vec<u32>,
        nulls: NullMask,
        dict: StringTable,
    },
    /// Heterogeneous fallback: the row layer's `Value`s verbatim.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { vals, .. } => vals.len(),
            ColumnVec::Float { vals, .. } => vals.len(),
            ColumnVec::Str { ids, .. } => ids.len(),
            ColumnVec::Mixed(vals) => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1)-ish resident-size estimate (dict strings counted by pointer
    /// width only; null masks by their words). Feeds the batch metrics.
    pub fn approx_bytes(&self) -> u64 {
        let mask = |m: &NullMask| (m.words().len() * 8) as u64;
        match self {
            ColumnVec::Int { vals, nulls } => (vals.len() * 8) as u64 + mask(nulls),
            ColumnVec::Float { vals, nulls } => (vals.len() * 8) as u64 + mask(nulls),
            ColumnVec::Str { ids, nulls, dict } => {
                (ids.len() * 4 + dict.len() * std::mem::size_of::<Arc<str>>()) as u64 + mask(nulls)
            }
            ColumnVec::Mixed(vals) => (vals.len() * std::mem::size_of::<Value>()) as u64,
        }
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Str { nulls, .. } => nulls.get(i),
            ColumnVec::Mixed(vals) => vals[i] == Value::Null,
        }
    }

    /// Materialize row `i` as a [`Value`] (an `Arc` bump for strings).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { vals, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            ColumnVec::Float { vals, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Float(vals[i])
                }
            }
            ColumnVec::Str { ids, nulls, dict } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Text(Arc::clone(dict.get(ids[i])))
                }
            }
            ColumnVec::Mixed(vals) => vals[i].clone(),
        }
    }

    /// Build a typed column from row-major values, sniffing the densest
    /// representation in one pass. A column that mixes types (beyond NULL)
    /// spills to `Mixed` — `Int` and `Float` never coerce into each other
    /// because storage equality distinguishes them.
    pub fn from_values<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnVec {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// Gather rows by index into a new column; [`GATHER_NULL`] produces
    /// NULL (outer-join padding). String gathers share the dictionary work
    /// by interning into a fresh table (ids stay dense in the output).
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Int { vals, nulls } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut on = NullMask::none();
                for (o, &i) in idx.iter().enumerate() {
                    if i == GATHER_NULL || nulls.get(i as usize) {
                        out.push(0);
                        on.set(o);
                    } else {
                        out.push(vals[i as usize]);
                    }
                }
                ColumnVec::Int { vals: out, nulls: on }
            }
            ColumnVec::Float { vals, nulls } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut on = NullMask::none();
                for (o, &i) in idx.iter().enumerate() {
                    if i == GATHER_NULL || nulls.get(i as usize) {
                        out.push(0.0);
                        on.set(o);
                    } else {
                        out.push(vals[i as usize]);
                    }
                }
                ColumnVec::Float { vals: out, nulls: on }
            }
            ColumnVec::Str { ids, nulls, dict } => {
                let mut out = Vec::with_capacity(idx.len());
                let mut on = NullMask::none();
                let mut od = StringTable::new();
                for (o, &i) in idx.iter().enumerate() {
                    if i == GATHER_NULL || nulls.get(i as usize) {
                        out.push(0);
                        on.set(o);
                    } else {
                        out.push(od.intern(dict.get(ids[i as usize])));
                    }
                }
                ColumnVec::Str { ids: out, nulls: on, dict: od }
            }
            ColumnVec::Mixed(vals) => ColumnVec::Mixed(
                idx.iter()
                    .map(|&i| {
                        if i == GATHER_NULL {
                            Value::Null
                        } else {
                            vals[i as usize].clone()
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Concatenate `other` after `self` (UNION ALL). Matching typed
    /// variants stay typed (strings re-intern into `self`'s dictionary);
    /// mismatches spill to `Mixed`.
    pub fn concat(&self, other: &ColumnVec) -> ColumnVec {
        match (self, other) {
            (
                ColumnVec::Int { vals: a, nulls: an },
                ColumnVec::Int { vals: b, nulls: bn },
            ) => {
                let mut vals = a.clone();
                vals.extend_from_slice(b);
                let mut nulls = an.clone();
                nulls.extend_shifted(bn, a.len(), b.len());
                ColumnVec::Int { vals, nulls }
            }
            (
                ColumnVec::Float { vals: a, nulls: an },
                ColumnVec::Float { vals: b, nulls: bn },
            ) => {
                let mut vals = a.clone();
                vals.extend_from_slice(b);
                let mut nulls = an.clone();
                nulls.extend_shifted(bn, a.len(), b.len());
                ColumnVec::Float { vals, nulls }
            }
            (
                ColumnVec::Str { ids: a, nulls: an, dict: ad },
                ColumnVec::Str { ids: b, nulls: bn, dict: bd },
            ) => {
                let mut dict = ad.clone();
                let mut ids = a.clone();
                ids.extend(b.iter().map(|&id| dict.intern(bd.get(id))));
                let mut nulls = an.clone();
                nulls.extend_shifted(bn, a.len(), b.len());
                ColumnVec::Str { ids, nulls, dict }
            }
            _ => {
                let mut vals = Vec::with_capacity(self.len() + other.len());
                for i in 0..self.len() {
                    vals.push(self.value(i));
                }
                for i in 0..other.len() {
                    vals.push(other.value(i));
                }
                ColumnVec::Mixed(vals)
            }
        }
    }

    /// The per-column statistics sketch, computed columnar: typed NDV sets
    /// (`i64` / canonical float bits) instead of hashing `Value` enums.
    /// Produces exactly what [`Relation::collect_stats`] produces row-wise.
    pub fn sketch(&self) -> ColumnSketch {
        match self {
            ColumnVec::Int { vals, nulls } => {
                let mut seen = FxHashSet::default();
                let mut min = None;
                let mut max = None;
                let mut nullc = 0usize;
                for (i, &v) in vals.iter().enumerate() {
                    if nulls.get(i) {
                        nullc += 1;
                        continue;
                    }
                    seen.insert(v);
                    min = Some(min.map_or(v, |m: i64| m.min(v)));
                    max = Some(max.map_or(v, |m: i64| m.max(v)));
                }
                ColumnSketch {
                    ndv: seen.len(),
                    min: min.map(Value::Int),
                    max: max.map(Value::Int),
                    nulls: nullc,
                }
            }
            ColumnVec::Float { vals, nulls } => {
                let mut seen = FxHashSet::default();
                let mut min: Option<f64> = None;
                let mut max: Option<f64> = None;
                let mut nullc = 0usize;
                for (i, &v) in vals.iter().enumerate() {
                    if nulls.get(i) {
                        nullc += 1;
                        continue;
                    }
                    seen.insert(Value::canonical_f64_bits(v));
                    min = Some(min.map_or(v, |m| if v.total_cmp(&m).is_lt() { v } else { m }));
                    max = Some(max.map_or(v, |m| if v.total_cmp(&m).is_gt() { v } else { m }));
                }
                ColumnSketch {
                    ndv: seen.len(),
                    min: min.map(Value::Float),
                    max: max.map(Value::Float),
                    nulls: nullc,
                }
            }
            ColumnVec::Str { ids, nulls, dict } => {
                let mut seen = FxHashSet::default();
                let mut min: Option<u32> = None;
                let mut max: Option<u32> = None;
                let mut nullc = 0usize;
                let pick = |cur: Option<u32>, id: u32, want_lt: bool| -> Option<u32> {
                    Some(match cur {
                        None => id,
                        Some(c) => {
                            let ord = dict.get(id).cmp(dict.get(c));
                            if (want_lt && ord.is_lt()) || (!want_lt && ord.is_gt()) {
                                id
                            } else {
                                c
                            }
                        }
                    })
                };
                for (i, &id) in ids.iter().enumerate() {
                    if nulls.get(i) {
                        nullc += 1;
                        continue;
                    }
                    seen.insert(id);
                    min = pick(min, id, true);
                    max = pick(max, id, false);
                }
                ColumnSketch {
                    ndv: seen.len(),
                    min: min.map(|id| Value::Text(Arc::clone(dict.get(id)))),
                    max: max.map(|id| Value::Text(Arc::clone(dict.get(id)))),
                    nulls: nullc,
                }
            }
            ColumnVec::Mixed(vals) => {
                let mut seen: FxHashSet<&Value> = FxHashSet::default();
                let mut min: Option<&Value> = None;
                let mut max: Option<&Value> = None;
                let mut nullc = 0usize;
                for v in vals {
                    if *v == Value::Null {
                        nullc += 1;
                        continue;
                    }
                    seen.insert(v);
                    if min.is_none_or(|m| v < m) {
                        min = Some(v);
                    }
                    if max.is_none_or(|m| v > m) {
                        max = Some(v);
                    }
                }
                ColumnSketch {
                    ndv: seen.len(),
                    min: min.cloned(),
                    max: max.cloned(),
                    nulls: nullc,
                }
            }
        }
    }
}

/// Incremental single-pass builder for [`ColumnVec`]: starts typed on the
/// first non-null value and spills to `Mixed` on the first type conflict
/// (reconstructing the already-collected prefix from the typed buffers).
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    col: Option<ColumnVec>,
    len: usize,
}

impl ColumnBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn spill(&mut self) -> &mut Vec<Value> {
        let cur = self.col.take().unwrap_or(ColumnVec::Mixed(Vec::new()));
        let vals = match cur {
            ColumnVec::Mixed(v) => v,
            typed => (0..typed.len()).map(|i| typed.value(i)).collect(),
        };
        self.col = Some(ColumnVec::Mixed(vals));
        match self.col.as_mut() {
            Some(ColumnVec::Mixed(v)) => v,
            _ => unreachable!(),
        }
    }

    pub fn push(&mut self, v: &Value) {
        let i = self.len;
        self.len += 1;
        match (&mut self.col, v) {
            (None, Value::Null) => {
                // type still unknown: keep an all-null Int column for now;
                // a later typed value will keep it, a Text will spill
                let mut nulls = NullMask::none();
                nulls.set(i);
                self.col = Some(ColumnVec::Int { vals: vec![0], nulls });
            }
            (None, Value::Int(x)) => {
                self.col = Some(ColumnVec::Int { vals: vec![*x], nulls: NullMask::none() })
            }
            (None, Value::Float(x)) => {
                self.col = Some(ColumnVec::Float { vals: vec![*x], nulls: NullMask::none() })
            }
            (None, Value::Text(s)) => {
                let mut dict = StringTable::new();
                let id = dict.intern(s);
                self.col = Some(ColumnVec::Str { ids: vec![id], nulls: NullMask::none(), dict })
            }
            (Some(ColumnVec::Int { vals, nulls }), Value::Null) => {
                vals.push(0);
                nulls.set(i);
            }
            (Some(ColumnVec::Int { vals, nulls }), Value::Int(x)) => {
                // an all-null prefix is representable as Int regardless of
                // what type the column turns out to be
                let _ = nulls;
                vals.push(*x);
            }
            (Some(ColumnVec::Float { vals, nulls }), Value::Null) => {
                vals.push(0.0);
                nulls.set(i);
            }
            (Some(ColumnVec::Float { vals, .. }), Value::Float(x)) => vals.push(*x),
            (Some(ColumnVec::Str { ids, nulls, .. }), Value::Null) => {
                ids.push(0);
                nulls.set(i);
            }
            (Some(ColumnVec::Str { ids, dict, .. }), Value::Text(s)) => {
                ids.push(dict.intern(s));
            }
            (Some(ColumnVec::Mixed(vals)), v) => vals.push(v.clone()),
            // type conflict (incl. an all-null Int prefix meeting a
            // Float/Text, or Int meeting Float): spill to Mixed
            (Some(col), v) => {
                // all-null Int prefix meeting Float/Text re-types instead
                // of spilling — nothing concrete was committed yet
                let all_null = match col {
                    ColumnVec::Int { vals, nulls } => nulls.count() == vals.len(),
                    _ => false,
                };
                if all_null {
                    let n = col.len();
                    match v {
                        Value::Float(x) => {
                            let mut nulls = NullMask::none();
                            for j in 0..n {
                                nulls.set(j);
                            }
                            let mut vals = vec![0.0; n];
                            vals.push(*x);
                            self.col = Some(ColumnVec::Float { vals, nulls });
                        }
                        Value::Text(s) => {
                            let mut nulls = NullMask::none();
                            for j in 0..n {
                                nulls.set(j);
                            }
                            let mut dict = StringTable::new();
                            let mut ids = vec![0u32; n];
                            ids.push(dict.intern(s));
                            self.col = Some(ColumnVec::Str { ids, nulls, dict });
                        }
                        _ => unreachable!("Null/Int handled above"),
                    }
                } else {
                    self.spill().push(v.clone());
                }
            }
        }
    }

    pub fn finish(self) -> ColumnVec {
        self.col.unwrap_or(ColumnVec::Int { vals: Vec::new(), nulls: NullMask::none() })
    }
}

/// A batch: aligned columns under one schema. Columns are `Arc`-shared so
/// projections and scans can pass them along without copying.
#[derive(Clone, Debug)]
pub struct Batch {
    schema: Schema,
    cols: Vec<Arc<ColumnVec>>,
    len: usize,
}

impl Batch {
    /// Assemble from parts; every column must have length `len`.
    pub fn from_columns(schema: Schema, cols: Vec<Arc<ColumnVec>>, len: usize) -> Batch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        debug_assert_eq!(schema.arity(), cols.len());
        Batch { schema, cols, len }
    }

    /// Convert a row-major relation, sniffing the densest layout per
    /// column. `schema` overrides the relation's (scan-time requalifying);
    /// pass `rel.schema().clone()` to keep it.
    pub fn from_relation_with_schema(rel: &Relation, schema: Schema) -> Batch {
        let arity = schema.arity();
        let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
        for row in rel.iter() {
            for (b, v) in builders.iter_mut().zip(row.iter()) {
                b.push(v);
            }
        }
        Batch {
            schema,
            cols: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            len: rel.len(),
        }
    }

    pub fn from_relation(rel: &Relation) -> Batch {
        Batch::from_relation_with_schema(rel, rel.schema().clone())
    }

    /// Materialize back to rows — the `Value` bridge at the with+/SQL'99
    /// boundary. Exact: float bits and string identities survive.
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::new(self.schema.clone());
        let mut rows = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let row: Row = self.cols.iter().map(|c| c.value(i)).collect();
            rows.push(row);
        }
        rel.extend(rows).expect("batch columns are schema-aligned");
        rel
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn col(&self, i: usize) -> &ColumnVec {
        &self.cols[i]
    }

    /// Estimated resident bytes across all columns (see
    /// [`ColumnVec::approx_bytes`]).
    pub fn approx_bytes(&self) -> u64 {
        self.cols.iter().map(|c| c.approx_bytes()).sum()
    }

    pub fn col_arc(&self, i: usize) -> Arc<ColumnVec> {
        Arc::clone(&self.cols[i])
    }

    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.cols
    }

    /// Same columns (shared), different qualifier — the batch engine's
    /// zero-copy `rename` used at scan time.
    pub fn with_schema(&self, schema: Schema) -> Batch {
        debug_assert_eq!(schema.arity(), self.schema.arity());
        Batch { schema, cols: self.cols.clone(), len: self.len }
    }

    /// Materialize row `i` into `out` (scratch-row bridge for generic
    /// expression evaluation).
    pub fn fill_row(&self, i: usize, out: &mut [Value]) {
        for (slot, c) in out.iter_mut().zip(&self.cols) {
            *slot = c.value(i);
        }
    }

    /// Gather rows by index ([`GATHER_NULL`] ⇒ NULL padding) across every
    /// column.
    pub fn gather(&self, idx: &[u32]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            cols: self.cols.iter().map(|c| Arc::new(c.gather(idx))).collect(),
            len: idx.len(),
        }
    }

    /// Column-wise statistics: same result as
    /// [`Relation::collect_stats`], computed over typed vectors.
    pub fn collect_stats(&self) -> RelationStats {
        RelationStats {
            rows: self.len,
            columns: self.cols.iter().map(|c| c.sketch()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;
    use crate::schema::DataType;

    fn mixed_rel() -> Relation {
        let mut r = Relation::new(Schema::of(&[("a", DataType::Any), ("b", DataType::Any)]));
        r.push(row![1, 1.5]).unwrap();
        r.push(row![Value::Null, "x"]).unwrap();
        r.push(row![3, Value::Null]).unwrap();
        r.push(row![-0.0, "x"]).unwrap();
        r
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = mixed_rel();
        let b = Batch::from_relation(&r);
        assert_eq!(b.len(), 4);
        let back = b.to_relation();
        assert_eq!(r.rows(), back.rows());
        // float bits survive: -0.0 stays -0.0
        match &back.rows()[3][0] {
            Value::Float(f) => assert!(f.is_sign_negative()),
            v => panic!("expected float, got {v:?}"),
        }
    }

    #[test]
    fn typed_sniffing() {
        let mut r = Relation::new(edge_schema());
        r.push(row![1, 2, 0.5]).unwrap();
        r.push(row![Value::Null, 3, 1.5]).unwrap();
        let b = Batch::from_relation(&r);
        assert!(matches!(b.col(0), ColumnVec::Int { .. }));
        assert!(matches!(b.col(1), ColumnVec::Int { .. }));
        assert!(matches!(b.col(2), ColumnVec::Float { .. }));
        assert!(b.col(0).is_null(1));
        assert!(!b.col(0).is_null(0));
        // column 0 mixes Int and Float in `a` of mixed_rel → Mixed
        let m = Batch::from_relation(&mixed_rel());
        assert!(matches!(m.col(0), ColumnVec::Mixed(_)));
        assert!(matches!(m.col(1), ColumnVec::Mixed(_)));
    }

    #[test]
    fn all_null_prefix_retypes() {
        let mut r = Relation::new(Schema::of(&[("a", DataType::Any)]));
        r.push(row![Value::Null]).unwrap();
        r.push(row![Value::Null]).unwrap();
        r.push(row![2.5]).unwrap();
        let b = Batch::from_relation(&r);
        assert!(matches!(b.col(0), ColumnVec::Float { .. }));
        assert_eq!(b.to_relation().rows(), r.rows());
    }

    #[test]
    fn dictionary_interns() {
        let mut r = Relation::new(Schema::of(&[("s", DataType::Text)]));
        for w in ["a", "b", "a", "c", "b", "a"] {
            r.push(row![w]).unwrap();
        }
        let b = Batch::from_relation(&r);
        match b.col(0) {
            ColumnVec::Str { ids, dict, .. } => {
                assert_eq!(dict.len(), 3);
                assert_eq!(ids, &[0, 1, 0, 2, 1, 0]);
            }
            c => panic!("expected Str, got {c:?}"),
        }
        assert_eq!(b.to_relation().rows(), r.rows());
    }

    #[test]
    fn gather_pads_nulls() {
        let mut r = Relation::new(node_schema());
        r.push(row![1, 0.1]).unwrap();
        r.push(row![2, 0.2]).unwrap();
        r.push(row![3, 0.3]).unwrap();
        let b = Batch::from_relation(&r);
        let g = b.gather(&[2, GATHER_NULL, 0]);
        assert_eq!(g.len(), 3);
        let rows = g.to_relation();
        assert_eq!(rows.rows()[0], row![3, 0.3]);
        assert_eq!(rows.rows()[1], row![Value::Null, Value::Null]);
        assert_eq!(rows.rows()[2], row![1, 0.1]);
    }

    #[test]
    fn concat_matches_union_all() {
        let mut a = Relation::new(node_schema());
        a.push(row![1, 0.1]).unwrap();
        let mut b = Relation::new(node_schema());
        b.push(row![Value::Null, 0.2]).unwrap();
        b.push(row![2, Value::Null]).unwrap();
        let (ba, bb) = (Batch::from_relation(&a), Batch::from_relation(&b));
        let cat = ColumnVec::concat(ba.col(0), bb.col(0));
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.value(0), Value::Int(1));
        assert_eq!(cat.value(1), Value::Null);
        assert_eq!(cat.value(2), Value::Int(2));
    }

    /// Row-at-a-time reference implementation of the stats sketch (the
    /// pre-columnar `collect_stats`), kept as the oracle.
    fn row_stats(r: &Relation) -> RelationStats {
        let arity = r.schema().arity();
        let mut seen: Vec<FxHashSet<&Value>> = (0..arity).map(|_| Default::default()).collect();
        let mut columns: Vec<ColumnSketch> = (0..arity)
            .map(|_| ColumnSketch { ndv: 0, min: None, max: None, nulls: 0 })
            .collect();
        for row in r.iter() {
            for (i, v) in row.iter().enumerate() {
                if *v == Value::Null {
                    columns[i].nulls += 1;
                    continue;
                }
                seen[i].insert(v);
                let c = &mut columns[i];
                if c.min.as_ref().is_none_or(|m| v < m) {
                    c.min = Some(v.clone());
                }
                if c.max.as_ref().is_none_or(|m| v > m) {
                    c.max = Some(v.clone());
                }
            }
        }
        for (c, s) in columns.iter_mut().zip(&seen) {
            c.ndv = s.len();
        }
        RelationStats { rows: r.len(), columns }
    }

    #[test]
    fn columnar_stats_match_row_stats() {
        let r = mixed_rel();
        let a = row_stats(&r);
        let b = Batch::from_relation(&r).collect_stats();
        assert_eq!(r.collect_stats().rows, b.rows);
        let mut typed = Relation::new(edge_schema());
        typed.push(row![1, 2, 0.5]).unwrap();
        typed.push(row![Value::Null, 2, -0.0]).unwrap();
        typed.push(row![1, 7, f64::NAN]).unwrap();
        typed.push(row![4, Value::Null, 0.0]).unwrap();
        for (rel, (a, b)) in [
            (&r, (a, b)),
            (
                &typed,
                (row_stats(&typed), Batch::from_relation(&typed).collect_stats()),
            ),
        ] {
            assert_eq!(a.rows, b.rows);
            for i in 0..rel.schema().arity() {
                let (x, y) = (a.column(i).unwrap(), b.column(i).unwrap());
                assert_eq!(x.ndv, y.ndv, "col {i} ndv");
                assert_eq!(x.min, y.min, "col {i} min");
                assert_eq!(x.max, y.max, "col {i} max");
                assert_eq!(x.nulls, y.nulls, "col {i} nulls");
            }
        }
    }
}
