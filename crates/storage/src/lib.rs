//! # aio-storage — the relational storage substrate
//!
//! In-memory relations, schemas, indexes, a catalog with temporary tables,
//! and a simulated write-ahead log. This is the bottom layer of the
//! `all-in-one` reproduction of *"All-in-One: Graph Processing in RDBMSs
//! Revisited"* (Zhao & Yu, SIGMOD 2017): everything above it — relational
//! algebra, the four new operations, the with+ engine — manipulates the
//! [`Relation`]s and [`Catalog`] defined here.
//!
//! Graphs are stored exactly as the paper stores them (Section 4): a node
//! relation `V(ID, vw)` and an edge relation `E(F, T, ew)` with `(F, T)` as
//! the primary key, which double as the relation representations of the
//! node vector and adjacency matrix.

pub mod catalog;
pub mod column;
pub mod error;
pub mod hash;
pub mod index;
pub mod keyidx;
pub mod mvcc;
pub mod recover;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod trie;
pub mod value;
pub mod vfs;
pub mod wal;

pub use catalog::{Catalog, CheckpointStats, TableEntry};
pub use column::{Batch, ColumnBuilder, ColumnVec, NullMask, StringTable, GATHER_NULL};
pub use error::{Result, StorageError};
pub use hash::{FxHashMap, FxHashSet};
pub use index::{HashIndex, SortedIndex};
pub use keyidx::{key_has_null, key_hash, keys_eq, KeyIndex};
pub use mvcc::{GenerationHub, PinnedSnapshot, Snapshot};
pub use recover::{open_catalog, InterruptedRun, RecoveryReport};
pub use relation::{edge_schema, node_schema, ColumnSketch, Key, Relation, RelationStats, Row};
pub use schema::{Column, DataType, Schema};
pub use trie::{TrieCache, TrieCursor, TrieIndex};
pub use value::Value;
pub use vfs::{SimVfs, StdVfs, UnsyncedFate, Vfs};
pub use wal::{CommitKind, Durability, Wal, WalPolicy, WalRecord};
