//! Secondary indexes over relations.
//!
//! The paper's Exp-A studies the effect of building indexes on the temporary
//! tables the PSM translation creates: in PostgreSQL the optimizer picks a
//! merge join for statistics-free temp tables, and a sorted index on the
//! join attribute lets it index-scan instead of sorting (Fig. 10). We model
//! exactly those two structures:
//!
//! * [`HashIndex`] — equality lookups (what a hash join builds ad hoc).
//! * [`SortedIndex`] — a permutation of row ids ordered by the key columns
//!   (a B+-tree's leaf order); a merge join can consume it without sorting.

use crate::hash::FxHashMap;
use crate::relation::{Key, Relation};

/// Equality index: key columns → row indexes.
#[derive(Clone, Debug)]
pub struct HashIndex {
    cols: Vec<usize>,
    map: FxHashMap<Key, Vec<u32>>,
}

impl HashIndex {
    /// Build over `rel[cols]`.
    pub fn build(rel: &Relation, cols: &[usize]) -> Self {
        HashIndex {
            cols: cols.to_vec(),
            map: rel.key_multimap(cols),
        }
    }

    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Row ids matching `key` (empty if none).
    pub fn get(&self, key: &Key) -> &[u32] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index: a permutation of row ids sorted by the key columns.
#[derive(Clone, Debug)]
pub struct SortedIndex {
    cols: Vec<usize>,
    perm: Vec<u32>,
}

impl SortedIndex {
    /// Build over `rel[cols]` (one O(n log n) sort, paid at build time —
    /// this is the cost the PSM procedure pays once per temp-table fill).
    pub fn build(rel: &Relation, cols: &[usize]) -> Self {
        let rows = rel.rows();
        let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
            for &c in cols {
                match ra[c].cmp(&rb[c]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        SortedIndex {
            cols: cols.to_vec(),
            perm,
        }
    }

    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Row ids in key order. Consuming this is an *index scan*: sequential
    /// over the permutation but random-access into the heap rows — the
    /// paper's explanation for why indexing can lose on Orkut (Fig. 10(d)).
    pub fn order(&self) -> &[u32] {
        &self.perm
    }

    /// Does this index cover exactly the requested key columns?
    pub fn covers(&self, cols: &[usize]) -> bool {
        self.cols == cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::edge_schema;
    use crate::row;

    fn rel() -> Relation {
        let mut r = Relation::new(edge_schema());
        r.extend([
            row![3, 1, 1.0],
            row![1, 2, 1.0],
            row![2, 3, 1.0],
            row![1, 3, 1.0],
        ])
        .unwrap();
        r
    }

    #[test]
    fn hash_index_lookup() {
        let r = rel();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.distinct_keys(), 3);
        let k = Key(vec![1i64.into()].into());
        let hits = idx.get(&k);
        assert_eq!(hits.len(), 2);
        for &h in hits {
            assert_eq!(r.rows()[h as usize][0].as_int(), Some(1));
        }
        let miss = Key(vec![9i64.into()].into());
        assert!(idx.get(&miss).is_empty());
    }

    #[test]
    fn sorted_index_orders_rows() {
        let r = rel();
        let idx = SortedIndex::build(&r, &[0, 1]);
        let keys: Vec<(i64, i64)> = idx
            .order()
            .iter()
            .map(|&i| {
                let row = &r.rows()[i as usize];
                (row[0].as_int().unwrap(), row[1].as_int().unwrap())
            })
            .collect();
        assert_eq!(keys, vec![(1, 2), (1, 3), (2, 3), (3, 1)]);
        assert!(idx.covers(&[0, 1]));
        assert!(!idx.covers(&[1]));
    }
}
