//! Snapshot checkpointing: the catalog serialized to a versioned binary
//! file, paired with a fresh WAL generation.
//!
//! ## File format
//!
//! ```text
//! file    := magic "AIOSNAP1" body crc:u32le     (crc = CRC32/IEEE of body)
//! body    := version:u32 seq:u64 ntables:u32 table*
//! table   := name temp:u8 schema pk rows         (codec from `wal`)
//! ```
//!
//! The trailing CRC covers the whole body, so a single flipped bit anywhere
//! invalidates the snapshot and recovery falls back to the previous
//! generation (checkpointing only deletes generation `n` after generation
//! `n+1` is durably in place — see [`crate::Catalog::checkpoint`]).
//!
//! Temp tables are included: a crash can land while a with+ run's working
//! tables exist, and resuming from the last committed iteration needs them.
//! Optimizer statistics are *not* serialized — recovery recomputes them
//! (`Catalog::analyze`) so the cost optimizer never plans against sketches
//! that predate the replayed WAL tail.

use crate::error::{Result, StorageError};
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::wal::{codec, crc32};
use crate::Catalog;

/// Magic prefix of every snapshot file (name + format version).
pub const SNAP_MAGIC: &[u8; 8] = b"AIOSNAP1";

/// Bumped when the body layout changes; decode refuses newer versions.
pub const SNAP_VERSION: u32 = 1;

/// Path of snapshot generation `seq` under `dir`.
pub fn snapshot_file(dir: &str, seq: u64) -> String {
    format!("{dir}/snapshot.{seq}")
}

/// Parse `snapshot.<seq>` back into a sequence number (rejects `.tmp` and
/// anything else).
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot.")?.parse().ok()
}

/// Parse `wal.<seq>` back into a sequence number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal.")?.parse().ok()
}

/// One table as stored in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TableImage {
    pub name: String,
    pub temp: bool,
    pub schema: Schema,
    pub pk: Option<Vec<usize>>,
    pub rows: Vec<Row>,
}

impl TableImage {
    /// Rebuild the relation (arity-checked).
    pub fn into_relation(self) -> Result<(String, bool, Relation)> {
        let mut rel = Relation::new(self.schema);
        rel.set_pk(self.pk);
        rel.extend(self.rows)?;
        Ok((self.name, self.temp, rel))
    }
}

/// Serialize the whole catalog as snapshot generation `seq`.
pub fn encode_snapshot(seq: u64, catalog: &Catalog) -> Vec<u8> {
    let mut body = Vec::new();
    codec::put_u32(&mut body, SNAP_VERSION);
    codec::put_u64(&mut body, seq);
    let names = catalog.names();
    codec::put_u32(&mut body, names.len() as u32);
    for name in &names {
        let e = catalog.entry(name).expect("names() returned a live table");
        codec::put_str(&mut body, name);
        body.push(e.temp as u8);
        codec::put_schema(&mut body, e.rel.schema());
        codec::put_pk(&mut body, e.rel.pk());
        codec::put_rows(&mut body, e.rel.rows());
    }
    let mut file = SNAP_MAGIC.to_vec();
    file.extend_from_slice(&body);
    file.extend_from_slice(&crc32(&body).to_le_bytes());
    file
}

/// Decode and fully validate a snapshot file. Any structural problem is a
/// [`StorageError::Corrupt`] — never a panic.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<TableImage>)> {
    let corrupt = |m: String| StorageError::Corrupt(format!("snapshot: {m}"));
    let magic_len = SNAP_MAGIC.len();
    if bytes.len() < magic_len + 4 || &bytes[..magic_len] != SNAP_MAGIC {
        return Err(corrupt("bad or missing magic".to_string()));
    }
    let body = &bytes[magic_len..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored {
        return Err(corrupt("crc mismatch".to_string()));
    }
    let mut d = codec::Dec::new(body);
    let version = d.u32().map_err(&corrupt)?;
    if version != SNAP_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let seq = d.u64().map_err(&corrupt)?;
    let ntables = d.u32().map_err(&corrupt)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(4096));
    for _ in 0..ntables {
        let name = d.str().map_err(&corrupt)?;
        let temp = d.u8().map_err(&corrupt)? != 0;
        let schema = d.schema().map_err(&corrupt)?;
        let pk = d.pk().map_err(&corrupt)?;
        let rows = d.rows().map_err(&corrupt)?;
        tables.push(TableImage { name, temp, schema, pk, rows });
    }
    if !d.done() {
        return Err(corrupt("trailing garbage after table list".to_string()));
    }
    Ok((seq, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut e = Relation::new(edge_schema());
        e.set_pk(Some(vec![0, 1]));
        e.extend(vec![row![1, 2, 1.0], row![2, 3, 0.5]]).unwrap();
        c.create_table("E", e).unwrap();
        c.create_temp("tmp", Relation::new(node_schema())).unwrap();
        c
    }

    #[test]
    fn snapshot_roundtrip() {
        let c = sample_catalog();
        let bytes = encode_snapshot(4, &c);
        let (seq, tables) = decode_snapshot(&bytes).unwrap();
        assert_eq!(seq, 4);
        assert_eq!(tables.len(), 2);
        let (name, temp, rel) = tables[0].clone().into_relation().unwrap();
        assert_eq!((name.as_str(), temp), ("e", false));
        assert_eq!(rel.pk(), Some(&[0usize, 1][..]));
        assert_eq!(rel.rows(), c.relation("E").unwrap().rows());
        assert!(tables[1].temp);
    }

    #[test]
    fn any_bit_flip_invalidates() {
        let bytes = encode_snapshot(1, &sample_catalog());
        for pos in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at {pos} must invalidate");
        }
        for cut in [0, 7, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "truncation to {cut}");
        }
    }

    #[test]
    fn file_names_parse() {
        assert_eq!(parse_snapshot_name("snapshot.12"), Some(12));
        assert_eq!(parse_snapshot_name("snapshot.12.tmp"), None);
        assert_eq!(parse_snapshot_name("wal.3"), None);
        assert_eq!(parse_wal_name("wal.3"), Some(3));
        assert_eq!(parse_wal_name("wal.x"), None);
    }
}
