//! Snapshot checkpointing: the catalog serialized to a versioned binary
//! file, paired with a fresh WAL generation.
//!
//! ## File format
//!
//! ```text
//! file    := magic "AIOSNAP1" body crc:u32le     (crc = CRC32/IEEE of body)
//! body    := version:u32 seq:u64 ntables:u32 table*
//! table   := name temp:u8 schema pk columns      (codec from `wal`)
//! columns := nrows:u32 column{schema arity}      (version 2, column-major)
//! column  := tag:u8 payload                      (0 mixed, 1 int, 2 float,
//!                                                 3 dictionary string)
//! ```
//!
//! Version 2 serializes each table column-major through the typed
//! [`ColumnVec`] layout: ints as zigzag varints, floats as raw LE bits,
//! strings dictionary-encoded (each distinct string written once), with a
//! null bitmask per column and null slots omitted from the payload.
//! Version 1 (row-major `put_rows`) files are still decoded — recovery
//! accepts both. The WAL record codec itself stays row-major: its tags are
//! format-frozen and individual log records are small.
//!
//! The trailing CRC covers the whole body, so a single flipped bit anywhere
//! invalidates the snapshot and recovery falls back to the previous
//! generation (checkpointing only deletes generation `n` after generation
//! `n+1` is durably in place — see [`crate::Catalog::checkpoint`]).
//!
//! Temp tables are included: a crash can land while a with+ run's working
//! tables exist, and resuming from the last committed iteration needs them.
//! Optimizer statistics are *not* serialized — recovery recomputes them
//! (`Catalog::analyze`) so the cost optimizer never plans against sketches
//! that predate the replayed WAL tail.

use crate::column::{Batch, ColumnVec, NullMask, StringTable};
use crate::error::{Result, StorageError};
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::wal::{codec, crc32};
use crate::Catalog;

/// Magic prefix of every snapshot file (name + format version).
pub const SNAP_MAGIC: &[u8; 8] = b"AIOSNAP1";

/// Bumped when the body layout changes; decode refuses newer versions but
/// still reads every older one (v1 = row-major tables).
pub const SNAP_VERSION: u32 = 2;

/// Path of snapshot generation `seq` under `dir`.
pub fn snapshot_file(dir: &str, seq: u64) -> String {
    format!("{dir}/snapshot.{seq}")
}

/// Parse `snapshot.<seq>` back into a sequence number (rejects `.tmp` and
/// anything else).
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot.")?.parse().ok()
}

/// Parse `wal.<seq>` back into a sequence number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal.")?.parse().ok()
}

/// One table as stored in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TableImage {
    pub name: String,
    pub temp: bool,
    pub schema: Schema,
    pub pk: Option<Vec<usize>>,
    pub rows: Vec<Row>,
}

impl TableImage {
    /// Rebuild the relation (arity-checked).
    pub fn into_relation(self) -> Result<(String, bool, Relation)> {
        let mut rel = Relation::new(self.schema);
        rel.set_pk(self.pk);
        rel.extend(self.rows)?;
        Ok((self.name, self.temp, rel))
    }
}

/// Serialize the whole catalog as snapshot generation `seq` (version 2:
/// tables column-major through the typed [`ColumnVec`] layout).
pub fn encode_snapshot(seq: u64, catalog: &Catalog) -> Vec<u8> {
    let mut body = Vec::new();
    codec::put_u32(&mut body, SNAP_VERSION);
    codec::put_u64(&mut body, seq);
    let names = catalog.names();
    codec::put_u32(&mut body, names.len() as u32);
    for name in &names {
        let e = catalog.entry(name).expect("names() returned a live table");
        codec::put_str(&mut body, name);
        body.push(e.temp as u8);
        codec::put_schema(&mut body, e.rel.schema());
        codec::put_pk(&mut body, e.rel.pk());
        let batch = Batch::from_relation(&e.rel);
        codec::put_u32(&mut body, batch.len() as u32);
        for col in batch.columns() {
            put_column(&mut body, col);
        }
    }
    let mut file = SNAP_MAGIC.to_vec();
    file.extend_from_slice(&body);
    file.extend_from_slice(&crc32(&body).to_le_bytes());
    file
}

/// Column tags in v2 table payloads (distinct from the `Value` tags of
/// `put_value`, which v1 rows and `Mixed` cells use).
const COL_MIXED: u8 = 0;
const COL_INT: u8 = 1;
const COL_FLOAT: u8 = 2;
const COL_STR: u8 = 3;

fn put_null_mask(buf: &mut Vec<u8>, nulls: &NullMask) {
    let words = nulls.words();
    codec::put_varu(buf, words.len() as u64);
    for &w in words {
        codec::put_u64(buf, w);
    }
}

/// One v2 column: null slots are flagged in the mask and *omitted* from
/// the value payload.
fn put_column(buf: &mut Vec<u8>, col: &ColumnVec) {
    match col {
        ColumnVec::Int { vals, nulls } => {
            buf.push(COL_INT);
            put_null_mask(buf, nulls);
            for (i, &v) in vals.iter().enumerate() {
                if !nulls.get(i) {
                    codec::put_varu(buf, codec::zigzag(v));
                }
            }
        }
        ColumnVec::Float { vals, nulls } => {
            buf.push(COL_FLOAT);
            put_null_mask(buf, nulls);
            for (i, &v) in vals.iter().enumerate() {
                if !nulls.get(i) {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        ColumnVec::Str { ids, nulls, dict } => {
            buf.push(COL_STR);
            put_null_mask(buf, nulls);
            codec::put_u32(buf, dict.len() as u32);
            for s in dict.strings() {
                codec::put_str(buf, s);
            }
            for (i, &id) in ids.iter().enumerate() {
                if !nulls.get(i) {
                    codec::put_varu(buf, id as u64);
                }
            }
        }
        ColumnVec::Mixed(vals) => {
            buf.push(COL_MIXED);
            for v in vals {
                codec::put_value(buf, v);
            }
        }
    }
}

fn read_null_mask(d: &mut codec::Dec<'_>) -> std::result::Result<NullMask, String> {
    let nwords = d.varu()? as usize;
    if nwords > d.remaining() / 8 + 1 {
        return Err(format!("null mask of {nwords} words exceeds remaining bytes"));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(d.u64()?);
    }
    Ok(NullMask::from_words(words))
}

fn read_column(d: &mut codec::Dec<'_>, nrows: usize) -> std::result::Result<ColumnVec, String> {
    let tag = d.u8()?;
    if tag != COL_MIXED && nrows > d.remaining() * 8 {
        // even an all-null typed column costs ≥ nrows/64 mask words
        return Err(format!("column of {nrows} rows exceeds remaining bytes"));
    }
    match tag {
        COL_MIXED => {
            let mut vals = Vec::with_capacity(nrows.min(d.remaining()));
            for _ in 0..nrows {
                vals.push(d.value()?);
            }
            Ok(ColumnVec::Mixed(vals))
        }
        COL_INT => {
            let nulls = read_null_mask(d)?;
            let mut vals = Vec::with_capacity(nrows);
            for i in 0..nrows {
                vals.push(if nulls.get(i) { 0 } else { codec::unzigzag(d.varu()?) });
            }
            Ok(ColumnVec::Int { vals, nulls })
        }
        COL_FLOAT => {
            let nulls = read_null_mask(d)?;
            let mut vals = Vec::with_capacity(nrows);
            for i in 0..nrows {
                vals.push(if nulls.get(i) {
                    0.0
                } else {
                    f64::from_le_bytes(d.take(8)?.try_into().unwrap())
                });
            }
            Ok(ColumnVec::Float { vals, nulls })
        }
        COL_STR => {
            let nulls = read_null_mask(d)?;
            let ndict = d.u32()? as usize;
            if ndict > d.remaining() {
                return Err(format!("dictionary of {ndict} strings exceeds remaining bytes"));
            }
            let mut dict = StringTable::new();
            for _ in 0..ndict {
                let s: std::sync::Arc<str> = d.str()?.into();
                dict.intern(&s);
            }
            let mut ids = Vec::with_capacity(nrows);
            for i in 0..nrows {
                if nulls.get(i) {
                    ids.push(0);
                } else {
                    let id = d.varu()?;
                    if id >= dict.len() as u64 {
                        return Err(format!("string id {id} out of dictionary range {}", dict.len()));
                    }
                    ids.push(id as u32);
                }
            }
            Ok(ColumnVec::Str { ids, nulls, dict })
        }
        t => Err(format!("unknown column tag {t}")),
    }
}

/// Decode a v2 column-major table payload back to rows.
fn read_column_rows(
    d: &mut codec::Dec<'_>,
    arity: usize,
) -> std::result::Result<Vec<Row>, String> {
    let nrows = d.u32()? as usize;
    if arity > 0 && nrows > d.remaining() * 64 {
        return Err(format!("row count {nrows} exceeds remaining bytes"));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        cols.push(read_column(d, nrows)?);
    }
    let mut rows = Vec::with_capacity(nrows);
    for i in 0..nrows {
        rows.push(cols.iter().map(|c| c.value(i)).collect::<Row>());
    }
    Ok(rows)
}

/// Decode and fully validate a snapshot file. Any structural problem is a
/// [`StorageError::Corrupt`] — never a panic.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<TableImage>)> {
    let corrupt = |m: String| StorageError::Corrupt(format!("snapshot: {m}"));
    let magic_len = SNAP_MAGIC.len();
    if bytes.len() < magic_len + 4 || &bytes[..magic_len] != SNAP_MAGIC {
        return Err(corrupt("bad or missing magic".to_string()));
    }
    let body = &bytes[magic_len..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored {
        return Err(corrupt("crc mismatch".to_string()));
    }
    let mut d = codec::Dec::new(body);
    let version = d.u32().map_err(&corrupt)?;
    if version == 0 || version > SNAP_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let seq = d.u64().map_err(&corrupt)?;
    let ntables = d.u32().map_err(&corrupt)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(4096));
    for _ in 0..ntables {
        let name = d.str().map_err(&corrupt)?;
        let temp = d.u8().map_err(&corrupt)? != 0;
        let schema = d.schema().map_err(&corrupt)?;
        let pk = d.pk().map_err(&corrupt)?;
        let rows = if version == 1 {
            d.rows().map_err(&corrupt)?
        } else {
            read_column_rows(&mut d, schema.arity()).map_err(&corrupt)?
        };
        tables.push(TableImage { name, temp, schema, pk, rows });
    }
    if !d.done() {
        return Err(corrupt("trailing garbage after table list".to_string()));
    }
    Ok((seq, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;
    use crate::value::Value;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut e = Relation::new(edge_schema());
        e.set_pk(Some(vec![0, 1]));
        e.extend(vec![row![1, 2, 1.0], row![2, 3, 0.5]]).unwrap();
        c.create_table("E", e).unwrap();
        c.create_temp("tmp", Relation::new(node_schema())).unwrap();
        c
    }

    #[test]
    fn snapshot_roundtrip() {
        let c = sample_catalog();
        let bytes = encode_snapshot(4, &c);
        let (seq, tables) = decode_snapshot(&bytes).unwrap();
        assert_eq!(seq, 4);
        assert_eq!(tables.len(), 2);
        let (name, temp, rel) = tables[0].clone().into_relation().unwrap();
        assert_eq!((name.as_str(), temp), ("e", false));
        assert_eq!(rel.pk(), Some(&[0usize, 1][..]));
        assert_eq!(rel.rows(), c.relation("E").unwrap().rows());
        assert!(tables[1].temp);
    }

    #[test]
    fn any_bit_flip_invalidates() {
        let bytes = encode_snapshot(1, &sample_catalog());
        for pos in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at {pos} must invalidate");
        }
        for cut in [0, 7, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "truncation to {cut}");
        }
    }

    /// v1 (row-major) snapshot files written by older builds still decode.
    #[test]
    fn v1_snapshots_still_decode() {
        let c = sample_catalog();
        let mut body = Vec::new();
        codec::put_u32(&mut body, 1);
        codec::put_u64(&mut body, 9);
        let names = c.names();
        codec::put_u32(&mut body, names.len() as u32);
        for name in &names {
            let e = c.entry(name).unwrap();
            codec::put_str(&mut body, name);
            body.push(e.temp as u8);
            codec::put_schema(&mut body, e.rel.schema());
            codec::put_pk(&mut body, e.rel.pk());
            codec::put_rows(&mut body, e.rel.rows());
        }
        let mut file = SNAP_MAGIC.to_vec();
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc32(&body).to_le_bytes());
        let (seq, tables) = decode_snapshot(&file).unwrap();
        assert_eq!(seq, 9);
        let (name, _, rel) = tables[0].clone().into_relation().unwrap();
        assert_eq!(name, "e");
        assert_eq!(rel.rows(), c.relation("E").unwrap().rows());
    }

    /// Text columns roundtrip through the v2 dictionary encoding, and the
    /// dictionary actually dedups: each distinct string is written once.
    #[test]
    fn v2_dictionary_roundtrip_and_dedup() {
        use crate::schema::DataType;
        let mut c = Catalog::new();
        let mut t = Relation::new(Schema::of(&[("id", DataType::Int), ("s", DataType::Text)]));
        let long = "x".repeat(64);
        for i in 0..50i64 {
            t.push(vec![Value::Int(i), Value::Text(long.as_str().into())].into_boxed_slice())
                .unwrap();
        }
        t.push(vec![Value::Null, Value::Null].into_boxed_slice()).unwrap();
        c.create_table("S", t).unwrap();
        let bytes = encode_snapshot(2, &c);
        // 50 copies of a 64-byte string stored once: far below row-major size
        assert!(bytes.len() < 50 * 64, "dictionary did not dedup: {} bytes", bytes.len());
        let (_, tables) = decode_snapshot(&bytes).unwrap();
        let (_, _, rel) = tables[0].clone().into_relation().unwrap();
        assert_eq!(rel.rows(), c.relation("S").unwrap().rows());
    }

    #[test]
    fn file_names_parse() {
        assert_eq!(parse_snapshot_name("snapshot.12"), Some(12));
        assert_eq!(parse_snapshot_name("snapshot.12.tmp"), None);
        assert_eq!(parse_snapshot_name("wal.3"), None);
        assert_eq!(parse_wal_name("wal.3"), Some(3));
        assert_eq!(parse_wal_name("wal.x"), None);
    }
}
