//! Scalar values stored in relations.
//!
//! The paper models graphs as relations `V(ID, vw)` and `E(F, T, ew)` where
//! identifiers are integers and weights are numeric (Section 4). We therefore
//! support a deliberately small set of scalar types: 64-bit integers, 64-bit
//! floats, interned text (node labels for Label-Propagation / Keyword-Search)
//! and SQL `NULL`.
//!
//! Two distinct notions of equality coexist:
//!
//! * **Storage equality** ([`PartialEq`]/[`Eq`]/[`Hash`]/[`Ord`]) is a total,
//!   structural relation used for grouping, duplicate elimination and join
//!   keys. `Null == Null`, floats compare by IEEE total order, and values of
//!   different types are never equal.
//! * **SQL comparison** ([`Value::sql_cmp`]) implements three-valued logic:
//!   any comparison involving `NULL` is *unknown* (`None`), and integers
//!   coerce to floats when compared against them. Predicate evaluation in
//!   `aio-algebra` uses this form.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single scalar value.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (node identifiers, levels, counts).
    Int(i64),
    /// 64-bit IEEE float (edge weights, PageRank mass, distances).
    Float(f64),
    /// Interned string (node labels).
    Text(Arc<str>),
}

impl Value {
    /// A string value, interning the given text.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// True iff this is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (ints coerce), if numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The text payload, if this is a `Text`.
    #[inline]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL three-valued comparison. `None` means *unknown* (a NULL operand
    /// or incomparable types). Integers and floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Text(_) => 2,
        }
    }

    /// Canonical float bits used for hashing: `-0.0` folds into `0.0` and
    /// every NaN folds into one canonical NaN, so that storage-equal values
    /// hash equally.
    fn float_bits(f: f64) -> u64 {
        if f == 0.0 {
            0u64 // +0.0 and -0.0
        } else if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// The canonical float bits above, exposed so columnar code (NDV
    /// sketches, dictionary hashing) agrees with `Value`'s storage
    /// equality without re-deriving the folding rules.
    pub fn canonical_f64_bits(f: f64) -> u64 {
        Self::float_bits(f)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            (Text(a), Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(Value::float_bits(*f));
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl Ord for Value {
    /// Total storage order: NULL first, then numerics (ints and floats
    /// interleaved numerically; NaN greatest), then text.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_num(*a as f64, *b),
            (Float(a), Int(b)) => cmp_num(*a, *b as f64),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

fn cmp_num(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn storage_equality_is_total() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Int(1), Value::Float(1.0)); // strict by type
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(h(&Value::Float(f64::NAN)), h(&Value::Float(f64::NAN)));
        assert_eq!(h(&Value::text("ab")), h(&Value::text("ab")));
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(3).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(3).sql_eq(&Value::Float(3.0)), Some(true));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_sorts_null_first() {
        let mut v = [
            Value::text("z"),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
        ];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Float(2.5));
        assert_eq!(v[2], Value::Int(5));
        assert_eq!(v[3], Value::text("z"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::text("lbl").to_string(), "lbl");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("x"), Value::text("x"));
    }
}
