//! Sorted trie indexes for worst-case-optimal (leapfrog) joins.
//!
//! A [`TrieIndex`] is a permutation of row ids ordered lexicographically by a
//! sequence of key columns — the same shape as [`crate::index::SortedIndex`]
//! but consumed level-wise: a [`TrieCursor`] walks the key columns as a trie
//! whose depth-`d` nodes are the distinct values of `cols[d]` within the run
//! of rows sharing the values chosen at depths `0..d`. The cursor exposes
//! exactly the leapfrog-triejoin primitives (`open`/`up`/`key`/`next`/`seek`)
//! of Veldhuizen's LFTJ, and `matches()` returns the row ids under the
//! current full prefix so the join can emit payload columns (weights,
//! duplicate rows) with bag semantics — multiplicity lives in the rows, not
//! in the trie.
//!
//! Tries are derived data: the catalog caches them per table in a
//! [`TrieCache`] and drops the cache on any mutation (insert / truncate /
//! in-place access), like sorted indexes. They are never WAL-logged.

use crate::relation::Relation;
use crate::value::Value;
use std::sync::{Arc, Mutex};

/// Layered trie over `rel[cols]`: row ids sorted lexicographically by the
/// key columns, plus one [`Level`] per key column holding the *distinct*
/// key prefixes of that depth with child-offset ranges into the next
/// level (and row-offset ranges into `perm`). Duplicate rows collapse
/// into one node, so cursor `next` is a single position increment and
/// `open` is two contiguous offset reads — no searching over duplicate
/// runs, and the root level is a compact array that stays cache-resident
/// during leapfrog probes.
#[derive(Clone, Debug)]
pub struct TrieIndex {
    cols: Vec<usize>,
    /// Row ids in key order.
    perm: Vec<u32>,
    levels: Vec<Level>,
}

/// One trie level: node `j` holds the `j`-th distinct depth-`d` key
/// prefix (in sorted order), its children occupying
/// `[child_end[j-1], child_end[j])` at level `d+1` and its rows
/// `[row_start[j], row_start[j+1])` in `perm`.
#[derive(Clone, Debug)]
struct Level {
    keys: Vec<Value>,
    /// `keys` unboxed to `i64` when the whole level is `Int` — enables
    /// machine-integer comparisons in the leapfrog hot path.
    ints: Option<Vec<i64>>,
    /// First row (in `perm`) under node `j`; node `j`'s rows end where
    /// node `j+1`'s begin (nodes are globally ordered).
    row_start: Vec<u32>,
    /// End offset (exclusive) of node `j`'s children at level `d+1`;
    /// empty for the deepest level.
    child_end: Vec<u32>,
}

impl TrieIndex {
    /// Build over `rel[cols]`: one O(n log n) sort plus a linear layering
    /// pass, paid once per (relation, column order) and cached on the
    /// catalog.
    pub fn build(rel: &Relation, cols: &[usize]) -> Self {
        let rows = rel.rows();
        let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
            for &c in cols {
                match ra[c].cmp(&rb[c]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            // ties broken by row id: deterministic output order
            a.cmp(&b)
        });
        // Node boundaries: row i starts a new node at level d (and every
        // deeper level) iff its key prefix through d differs from row
        // i-1's. Record each node's first row, then derive child ranges
        // by counting the next level's nodes inside each row range.
        let depth = cols.len();
        let mut starts: Vec<Vec<u32>> = vec![Vec::new(); depth];
        for (i, &r) in perm.iter().enumerate() {
            let d0 = if i == 0 {
                0
            } else {
                let (pr, cr) = (&rows[perm[i - 1] as usize], &rows[r as usize]);
                match cols.iter().position(|&c| pr[c] != cr[c]) {
                    Some(d) => d,
                    None => continue, // duplicate full key: same node
                }
            };
            for s in &mut starts[d0..] {
                s.push(i as u32);
            }
        }
        let mut levels: Vec<Level> = Vec::with_capacity(depth);
        for (d, start) in starts.iter().enumerate() {
            let keys: Vec<Value> = start
                .iter()
                .map(|&i| rows[perm[i as usize] as usize][cols[d]].clone())
                .collect();
            let ints = keys.iter().map(Value::as_int).collect::<Option<Vec<i64>>>();
            // child_end[j] = number of level-(d+1) nodes starting before
            // node j+1 does; starts[d] is a subsequence of starts[d+1],
            // so a single forward walk suffices.
            let child_end = if d + 1 < depth {
                let next = &starts[d + 1];
                let mut out = Vec::with_capacity(start.len());
                let mut k = 0usize;
                for j in 0..start.len() {
                    let end_row =
                        start.get(j + 1).copied().unwrap_or(perm.len() as u32);
                    while k < next.len() && next[k] < end_row {
                        k += 1;
                    }
                    out.push(k as u32);
                }
                out
            } else {
                Vec::new()
            };
            levels.push(Level { keys, ints, row_start: start.clone(), child_end });
        }
        TrieIndex { cols: cols.to_vec(), perm, levels }
    }

    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Does this trie cover exactly the requested key-column order?
    /// (Unlike a plain sorted index, a prefix is not enough: leapfrog
    /// needs the levels in elimination order.)
    pub fn covers(&self, cols: &[usize]) -> bool {
        self.cols == cols
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Number of trie levels.
    pub fn depth(&self) -> usize {
        self.cols.len()
    }

    /// The distinct level-`d` keys as a raw `i64` array (sorted within
    /// each parent's child range), when the whole level is `Int`.
    /// Executors can bypass the cursor and leapfrog on machine integers.
    pub fn int_keys(&self, d: usize) -> Option<&[i64]> {
        self.levels[d].ints.as_deref()
    }

    /// True iff every key level is all-`Int` (so [`Self::int_keys`] is
    /// `Some` at every depth) — the precondition for the integer leapfrog
    /// fast path. Vacuously true for a keyless (zero-column) trie.
    pub fn all_int(&self) -> bool {
        self.levels.iter().all(|l| l.ints.is_some())
    }

    /// `child_end[j]` offsets of level `d` (see [`Self::child_range`]);
    /// empty for the deepest level.
    pub fn child_ends(&self, d: usize) -> &[u32] {
        &self.levels[d].child_end
    }

    /// Children of node `j` at level `d` occupy `[start, end)` at level
    /// `d+1`.
    pub fn child_range(&self, d: usize, j: usize) -> (usize, usize) {
        let ends = &self.levels[d].child_end;
        let lo = if j == 0 { 0 } else { ends[j - 1] as usize };
        (lo, ends[j] as usize)
    }

    /// Row ids under node `j` at level `d` (the run of rows sharing that
    /// node's full key prefix, in deterministic row order).
    pub fn rows_under(&self, d: usize, j: usize) -> &[u32] {
        let rs = &self.levels[d].row_start;
        let lo = rs[j] as usize;
        let hi = rs.get(j + 1).map_or(self.perm.len(), |&e| e as usize);
        &self.perm[lo..hi]
    }

    /// Row ids in key order: level offsets index into this.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// A fresh cursor positioned above the root.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor { trie: self, frames: Vec::new() }
    }

    /// First node in `[from, hi)` at level `d` whose key is `>= v`.
    fn lower_bound(&self, d: usize, from: usize, hi: usize, v: &Value) -> usize {
        let l = &self.levels[d];
        if let (Some(col), Some(t)) = (&l.ints, v.as_int()) {
            gallop(&col[..hi], from, |k| *k < t)
        } else if matches!((&l.ints, v), (Some(_), Value::Null)) {
            from // NULL sorts before every Int: nothing to skip
        } else {
            gallop(&l.keys[..hi], from, |k| k < v)
        }
    }
}

/// First index in `[from, s.len())` where the monotone predicate `holds`
/// turns false: exponential probe from `from`, then binary search inside
/// the bracket. Leapfrog seeks usually land a handful of positions ahead
/// of the cursor, so galloping costs O(log distance) instead of
/// O(log level-width).
fn gallop<T>(s: &[T], from: usize, holds: impl Fn(&T) -> bool) -> usize {
    let hi = s.len();
    if from >= hi || !holds(&s[from]) {
        return from;
    }
    let mut lo = from; // invariant: holds(s[lo])
    let mut step = 1usize;
    while lo + step < hi && holds(&s[lo + step]) {
        lo += step;
        step <<= 1;
    }
    let end = hi.min(lo.saturating_add(step));
    lo + 1 + s[lo + 1..end].partition_point(holds)
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    /// End of this level's node range (exclusive); `pos == hi` = at-end.
    hi: usize,
    pos: usize,
}

/// Leapfrog cursor over a [`TrieIndex`].
///
/// Contract (LFTJ):
/// * `open` descends to the first key of the next level; `up` returns.
/// * At each level the distinct keys are visited in strictly increasing
///   order by `next`; `seek(v)` positions at the least key `>= v`.
/// * `next`/`seek` return `false` (at-end) when the level is exhausted;
///   `key` must not be called at-end.
#[derive(Clone, Debug)]
pub struct TrieCursor<'a> {
    trie: &'a TrieIndex,
    frames: Vec<Frame>,
}

impl<'a> TrieCursor<'a> {
    /// Current level (0-based); `None` above the root.
    pub fn level(&self) -> Option<usize> {
        self.frames.len().checked_sub(1)
    }

    /// True iff the current level's keys are exhausted.
    pub fn at_end(&self) -> bool {
        let f = self.frames.last().expect("at_end above the root");
        f.pos >= f.hi
    }

    /// The key at the cursor. Panics at-end or above the root.
    pub fn key(&self) -> &'a Value {
        let d = self.level().expect("key above the root");
        let f = self.frames[d];
        assert!(f.pos < f.hi, "key at end of level {d}");
        &self.trie.levels[d].keys[f.pos]
    }

    /// Descend into the first key of the next level. Panics if the parent
    /// level is at-end or the trie has no further level.
    pub fn open(&mut self) {
        match self.frames.last() {
            None => {
                assert!(self.trie.depth() > 0, "open on a zero-column trie");
                self.frames.push(Frame { hi: self.trie.levels[0].keys.len(), pos: 0 });
            }
            Some(&f) => {
                let d = self.frames.len() - 1;
                assert!(f.pos < f.hi, "open at end of level {d}");
                assert!(d + 1 < self.trie.depth(), "open below the deepest level");
                let (lo, hi) = self.trie.child_range(d, f.pos);
                self.frames.push(Frame { hi, pos: lo });
            }
        }
    }

    /// Return to the parent level.
    pub fn up(&mut self) {
        self.frames.pop().expect("up above the root");
    }

    /// Advance to the next distinct key at this level; `false` at-end.
    /// Nodes are distinct by construction, so this is one increment.
    /// (Named per the LFTJ cursor contract, not `Iterator::next`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        let d = self.level().expect("next above the root");
        let f = self.frames[d];
        assert!(f.pos < f.hi, "next at end of level {d}");
        self.frames[d].pos = f.pos + 1;
        !self.at_end()
    }

    /// Position at the least key `>= v` (not before the current key);
    /// `false` at-end. `seek` never moves backwards.
    pub fn seek(&mut self, v: &Value) -> bool {
        let d = self.level().expect("seek above the root");
        let f = self.frames[d];
        assert!(f.pos < f.hi, "seek at end of level {d}");
        self.frames[d].pos = self.trie.lower_bound(d, f.pos, f.hi, v);
        !self.at_end()
    }

    /// Row ids matching the key prefix chosen down to the current key (in
    /// deterministic row order).
    pub fn matches(&self) -> &'a [u32] {
        let d = self.level().expect("matches above the root");
        let f = self.frames[d];
        assert!(f.pos < f.hi, "matches at end of level {d}");
        self.trie.rows_under(d, f.pos)
    }
}

/// Per-table cache of built tries, shared through `&Catalog` so lazy builds
/// can happen during (immutable) plan execution. Cloning an entry clones the
/// list of `Arc`'d tries into an independent cache; the tries themselves are
/// immutable and shared.
#[derive(Default)]
pub struct TrieCache(Mutex<Vec<Arc<TrieIndex>>>);

impl Clone for TrieCache {
    fn clone(&self) -> Self {
        TrieCache(Mutex::new(self.lock().clone()))
    }
}

impl std::fmt::Debug for TrieCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TrieCache({} tries)", self.lock().len())
    }
}

impl TrieCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Arc<TrieIndex>>> {
        // a poisoned cache holds only complete, immutable tries
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cached trie for exactly `cols`, if built.
    pub fn cached(&self, cols: &[usize]) -> Option<Arc<TrieIndex>> {
        self.lock().iter().find(|t| t.covers(cols)).cloned()
    }

    /// Get the trie for `cols`, building and caching it on a miss.
    pub fn get_or_build(&self, rel: &Relation, cols: &[usize]) -> Arc<TrieIndex> {
        let mut g = self.lock();
        if let Some(t) = g.iter().find(|t| t.covers(cols)) {
            aio_metrics::hooks::trie_cache(true);
            return Arc::clone(t);
        }
        aio_metrics::hooks::trie_cache(false);
        let started = std::time::Instant::now();
        let t = Arc::new(TrieIndex::build(rel, cols));
        aio_metrics::global()
            .engine
            .trie_build_ms
            .observe(started.elapsed().as_millis() as u64);
        g.push(Arc::clone(&t));
        t
    }

    /// Drop every cached trie (any mutation of the base rows).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Number of cached tries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::edge_schema;
    use crate::row;

    fn rel() -> Relation {
        let mut r = Relation::new(edge_schema());
        r.extend([
            row![3, 1, 1.0],
            row![1, 2, 1.0],
            row![2, 3, 1.0],
            row![1, 2, 2.0], // duplicate (F, T) key, distinct payload
            row![1, 3, 1.0],
        ])
        .unwrap();
        r
    }

    /// DFS over the whole trie via the cursor.
    fn enumerate(t: &TrieIndex) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let mut cur = t.cursor();
        fn walk(cur: &mut TrieCursor<'_>, t: &TrieIndex, prefix: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
            cur.open();
            while !cur.at_end() {
                prefix.push(cur.key().as_int().unwrap());
                if cur.level().unwrap() + 1 < t.depth() {
                    walk(cur, t, prefix, out);
                } else {
                    out.push(prefix.clone());
                }
                prefix.pop();
                if !cur.next() {
                    break;
                }
            }
            cur.up();
        }
        if t.depth() > 0 && !t.is_empty() {
            let mut prefix = Vec::new();
            walk(&mut cur, t, &mut prefix, &mut out);
        }
        out
    }

    #[test]
    fn iterate_yields_sorted_distinct_tuples() {
        let r = rel();
        let t = TrieIndex::build(&r, &[0, 1]);
        assert_eq!(t.len(), 5);
        assert_eq!(enumerate(&t), vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![3, 1]]);
    }

    #[test]
    fn matches_returns_all_duplicate_rows() {
        let r = rel();
        let t = TrieIndex::build(&r, &[0, 1]);
        let mut cur = t.cursor();
        cur.open(); // F level, at 1
        cur.open(); // T level, at 2
        assert_eq!(cur.key().as_int(), Some(2));
        let m = cur.matches();
        assert_eq!(m.len(), 2, "both (1,2) rows");
        for &rid in m {
            let row = &r.rows()[rid as usize];
            assert_eq!((row[0].as_int(), row[1].as_int()), (Some(1), Some(2)));
        }
    }

    #[test]
    fn seek_is_least_upper_bound_and_monotone() {
        let r = rel();
        let t = TrieIndex::build(&r, &[0]);
        let mut cur = t.cursor();
        cur.open();
        assert_eq!(cur.key().as_int(), Some(1));
        assert!(cur.seek(&Value::from(2)));
        assert_eq!(cur.key().as_int(), Some(2));
        // seek to the current key is a no-op
        assert!(cur.seek(&Value::from(2)));
        assert_eq!(cur.key().as_int(), Some(2));
        assert!(cur.seek(&Value::from(3)));
        assert_eq!(cur.key().as_int(), Some(3));
        assert!(!cur.seek(&Value::from(9)), "past the last key is at-end");
        assert!(cur.at_end());
        cur.up();
    }

    #[test]
    fn next_visits_strictly_increasing_keys() {
        let r = rel();
        let t = TrieIndex::build(&r, &[1]); // T column: 1,2,2,3,3
        let mut cur = t.cursor();
        cur.open();
        let mut seen = Vec::new();
        loop {
            seen.push(cur.key().as_int().unwrap());
            if !cur.next() {
                break;
            }
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn cache_builds_once_and_clears() {
        let r = rel();
        let cache = TrieCache::default();
        assert!(cache.cached(&[0, 1]).is_none());
        let a = cache.get_or_build(&r, &[0, 1]);
        let b = cache.get_or_build(&r, &[0, 1]);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        assert_eq!(cache.len(), 1);
        let _ = cache.get_or_build(&r, &[1, 0]);
        assert_eq!(cache.len(), 2, "distinct column orders cache separately");
        cache.clear();
        assert!(cache.cached(&[0, 1]).is_none());
    }
}
