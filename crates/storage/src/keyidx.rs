//! Borrowed-key hash index for allocation-free join probes.
//!
//! [`Relation::key_multimap`](crate::Relation::key_multimap) forces every
//! probe to materialize a [`Key`](crate::Key) — one `Box<[Value]>` clone per
//! probe row, which dominates the probe loop on large inputs. [`KeyIndex`]
//! removes that: it is a two-level map from a precomputed `FxHasher` hash of
//! the projected key columns to the row indices bearing that hash, and
//! probes compare column values *in place* (`&[Value]` against `&[Value]`).
//! No per-probe allocation, same match order as the keyed multimap (row
//! order within a bucket, hash collisions resolved by the equality filter).
//!
//! The index is built in `P` hash-disjoint partitions so builds can run on
//! `P` threads (partition `p` owns the rows with `hash % P == p`); partition
//! contents are independent of `P`, so probe results are too.
//!
//! Rows with a NULL in any key column are *not* indexed: SQL join semantics
//! never match NULL keys, and every probe path checks its own NULL rule
//! before probing ([`had_null_keys`](KeyIndex::had_null_keys) reports their
//! presence for `NOT IN`'s null-awareness).

use crate::hash::{FxHashMap, FxHasher};
use crate::relation::Relation;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Hash of `row` projected to `cols`, matching [`Key`](crate::Key)'s `Hash`.
#[inline]
pub fn key_hash(row: &[Value], cols: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// Is any of `row`'s `cols` NULL?
#[inline]
pub fn key_has_null(row: &[Value], cols: &[usize]) -> bool {
    cols.iter().any(|&c| row[c].is_null())
}

/// Do two rows agree on their respective key columns? Uses storage equality
/// (the same notion [`Key`](crate::Key) uses), so a `KeyIndex` probe and a
/// `Key`-map lookup see identical matches.
#[inline]
pub fn keys_eq(a: &[Value], a_cols: &[usize], b: &[Value], b_cols: &[usize]) -> bool {
    a_cols
        .iter()
        .zip(b_cols)
        .all(|(&ac, &bc)| a[ac] == b[bc])
}

/// Hash-partitioned, borrowed-key multimap over one relation's key columns.
pub struct KeyIndex {
    cols: Vec<usize>,
    parts: Vec<FxHashMap<u64, Vec<u32>>>,
    skipped_nulls: usize,
}

impl KeyIndex {
    /// Single-partition (serial) build.
    pub fn build(rel: &Relation, cols: &[usize]) -> KeyIndex {
        KeyIndex::build_partitioned(rel, cols, 1)
    }

    /// Build with `partitions` hash-disjoint sub-tables, one thread each.
    /// The resulting index is independent of `partitions` (only the physical
    /// layout changes), so any partition count yields identical probes.
    pub fn build_partitioned(rel: &Relation, cols: &[usize], partitions: usize) -> KeyIndex {
        let p = partitions.max(1);
        if p == 1 || rel.len() < p {
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            let mut skipped = 0usize;
            for (i, row) in rel.rows().iter().enumerate() {
                if key_has_null(row, cols) {
                    skipped += 1;
                    continue;
                }
                map.entry(key_hash(row, cols)).or_default().push(i as u32);
            }
            return KeyIndex {
                cols: cols.to_vec(),
                parts: vec![map],
                skipped_nulls: skipped,
            };
        }
        let mut parts: Vec<FxHashMap<u64, Vec<u32>>> = Vec::with_capacity(p);
        let mut skipped = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|part| {
                    scope.spawn(move || {
                        let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                        let mut nulls = 0usize;
                        for (i, row) in rel.rows().iter().enumerate() {
                            if key_has_null(row, cols) {
                                nulls += 1;
                                continue;
                            }
                            let h = key_hash(row, cols);
                            if (h as usize) % p == part {
                                map.entry(h).or_default().push(i as u32);
                            }
                        }
                        (map, nulls)
                    })
                })
                .collect();
            for (part, handle) in handles.into_iter().enumerate() {
                let (map, nulls) = handle.join().expect("key index build worker panicked");
                parts.push(map);
                // every worker scans all rows; count NULL rows once
                if part == 0 {
                    skipped = nulls;
                }
            }
        });
        KeyIndex {
            cols: cols.to_vec(),
            parts,
            skipped_nulls: skipped,
        }
    }

    /// Key columns this index was built over.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Were any build rows skipped for NULL key columns? (`NOT IN` cares.)
    pub fn had_null_keys(&self) -> bool {
        self.skipped_nulls > 0
    }

    /// Row indices whose key hashed to `hash` (superset of the true
    /// matches; callers filter with [`keys_eq`]).
    #[inline]
    pub fn candidates(&self, hash: u64) -> &[u32] {
        self.parts[(hash as usize) % self.parts.len()]
            .get(&hash)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Indices of `rel`'s rows whose key equals `probe_row[probe_cols]`, in
    /// row order. The caller must ensure the probe key is NULL-free (NULL
    /// semantics are the probe site's business). Allocation-free.
    #[inline]
    pub fn probe<'a>(
        &'a self,
        rel: &'a Relation,
        probe_row: &'a [Value],
        probe_cols: &'a [usize],
    ) -> impl Iterator<Item = u32> + 'a {
        let hash = key_hash(probe_row, probe_cols);
        self.candidates(hash).iter().copied().filter(move |&ri| {
            keys_eq(&rel.rows()[ri as usize], &self.cols, probe_row, probe_cols)
        })
    }

    /// Does any indexed row match the probe key?
    #[inline]
    pub fn contains(&self, rel: &Relation, probe_row: &[Value], probe_cols: &[usize]) -> bool {
        self.probe(rel, probe_row, probe_cols).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, Key};
    use crate::row;

    fn rel() -> Relation {
        let mut e = Relation::new(edge_schema());
        e.extend([
            row![1, 2, 1.0],
            row![2, 3, 1.0],
            row![1, 3, 2.0],
            row![4, 1, 1.0],
            row![1, 2, 9.0],
        ])
        .unwrap();
        e.push(vec![Value::Null, Value::Int(7), Value::Float(0.0)].into_boxed_slice())
            .unwrap();
        e
    }

    #[test]
    fn probe_matches_key_multimap_in_order() {
        let r = rel();
        for parts in [1, 2, 4, 7] {
            let idx = KeyIndex::build_partitioned(&r, &[0], parts);
            let map = r.key_multimap(&[0]);
            for probe in r.rows() {
                if key_has_null(probe, &[0]) {
                    continue;
                }
                let got: Vec<u32> = idx.probe(&r, probe, &[0]).collect();
                let want = map.get(&Key::of(probe, &[0])).cloned().unwrap_or_default();
                assert_eq!(got, want, "parts={parts}");
            }
        }
    }

    #[test]
    fn null_rows_not_indexed_but_reported() {
        let r = rel();
        let idx = KeyIndex::build(&r, &[0]);
        assert!(idx.had_null_keys());
        let total: usize = (0..r.len() as u32)
            .filter(|&i| !key_has_null(&r.rows()[i as usize], &[0]))
            .count();
        let indexed: usize = r
            .rows()
            .iter()
            .filter(|row| !key_has_null(row, &[0]))
            .map(|row| idx.probe(&r, row, &[0]).count())
            .sum::<usize>()
            / 2; // each duplicate F=1 row sees all three F=1 rows ... just check nonzero
        assert!(indexed > 0 && total == 5);
    }

    #[test]
    fn cross_column_probe() {
        // probe a different relation on different column positions
        let r = rel();
        let idx = KeyIndex::build(&r, &[1]); // key on T
        let probe_row = [Value::Float(0.0), Value::Int(3)];
        let hits: Vec<u32> = idx.probe(&r, &probe_row, &[1]).collect();
        assert_eq!(hits, vec![1, 2], "rows with T=3, in row order");
        assert!(idx.contains(&r, &probe_row, &[1]));
        let miss = [Value::Float(0.0), Value::Int(99)];
        assert!(!idx.contains(&r, &miss, &[1]));
    }

    #[test]
    fn partitioned_build_is_layout_only() {
        let r = rel();
        let a = KeyIndex::build_partitioned(&r, &[0, 1], 1);
        let b = KeyIndex::build_partitioned(&r, &[0, 1], 3);
        assert_eq!(b.partitions(), 3);
        for probe in r.rows() {
            if key_has_null(probe, &[0, 1]) {
                continue;
            }
            let va: Vec<u32> = a.probe(&r, probe, &[0, 1]).collect();
            let vb: Vec<u32> = b.probe(&r, probe, &[0, 1]).collect();
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn keys_eq_uses_storage_equality() {
        let a = [Value::Null, Value::Int(1)];
        let b = [Value::Int(1), Value::Null];
        assert!(keys_eq(&a, &[0], &b, &[1]), "storage equality: NULL == NULL");
        assert!(keys_eq(&a, &[1], &b, &[0]));
        assert!(!keys_eq(&a, &[0], &b, &[0]));
    }
}
