//! Error type shared across the storage layer.

use std::fmt;

/// Errors raised by the storage layer (and re-used upward by the algebra and
/// with+ layers, which wrap it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table was referenced that the catalog does not contain.
    NoSuchTable(String),
    /// A table was created under a name already in use.
    TableExists(String),
    /// A column reference did not resolve against a schema.
    NoSuchColumn { column: String, schema: String },
    /// A column reference resolved against several columns.
    AmbiguousColumn { column: String, schema: String },
    /// A row's arity did not match the schema it was inserted into.
    ArityMismatch { expected: usize, got: usize },
    /// A primary-key constraint was violated.
    DuplicateKey(String),
    /// A durable-storage syscall failed (message carries the op + path).
    /// Stored as a string so the error stays `Clone + PartialEq`.
    Io(String),
    /// On-disk state failed validation (bad magic, CRC mismatch, torn
    /// frame, undecodable record).
    Corrupt(String),
    /// Catch-all for invariant violations with a message.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::TableExists(t) => write!(f, "table already exists: {t}"),
            StorageError::NoSuchColumn { column, schema } => {
                write!(f, "no such column {column} in schema ({schema})")
            }
            StorageError::AmbiguousColumn { column, schema } => {
                write!(f, "ambiguous column {column} in schema ({schema})")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: schema has {expected} columns, row has {got}")
            }
            StorageError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            StorageError::Io(m) => write!(f, "io error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
