//! In-memory relations (bags of rows under a schema).
//!
//! The with+ execution model materializes a relation per operator, mirroring
//! the paper's SQL/PSM translation where every step is an `INSERT INTO` a
//! temporary table (Section 6, "The implementation"). `Relation` is therefore
//! an owned, materialized row store rather than a streaming iterator.

use crate::error::{Result, StorageError};
use crate::hash::FxHashMap;
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// A stored row. Boxed slice: two words, no spare capacity.
pub type Row = Box<[Value]>;

/// Build a [`Row`] from anything convertible to [`Value`]s.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*].into_boxed_slice()
    };
}

/// Estimated resident bytes of one row of the given arity: the boxed-slice
/// header plus one `Value` slot per column (string spill ignored).
pub fn approx_row_bytes(arity: usize) -> u64 {
    (std::mem::size_of::<Row>() + arity * std::mem::size_of::<Value>()) as u64
}

/// A composite key extracted from a row (group-by keys, join keys,
/// primary keys).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub Box<[Value]>);

impl Key {
    /// Extract the values of `cols` from `row`.
    #[inline]
    pub fn of(row: &[Value], cols: &[usize]) -> Key {
        Key(cols.iter().map(|&c| row[c].clone()).collect())
    }

    /// True iff any component is NULL (such keys never join in SQL).
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }
}

/// A bag of rows with a schema and an optional primary key.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
    /// Column indexes forming the primary key, if declared.
    pk: Option<Vec<usize>>,
}

impl Relation {
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            pk: None,
        }
    }

    /// Create with a declared primary key (by column reference).
    ///
    /// The paper declares `(F, T)` the primary key of `E` and `ID` of `V`
    /// (Section 4); union-by-update relies on it for match uniqueness.
    pub fn with_pk(schema: Schema, pk_cols: &[&str]) -> Result<Self> {
        let pk = pk_cols
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(Relation {
            schema,
            rows: Vec::new(),
            pk: Some(pk),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn pk(&self) -> Option<&[usize]> {
        self.pk.as_deref()
    }

    /// Replace the primary-key declaration (used when re-deriving relations).
    pub fn set_pk(&mut self, pk: Option<Vec<usize>>) {
        self.pk = pk;
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// O(1) resident-size estimate: per-row `Vec` header plus one `Value`
    /// slot per column. Ignores string spill — this feeds metrics (peak
    /// memory, catalog footprint), not an allocator.
    pub fn approx_bytes(&self) -> u64 {
        self.rows.len() as u64 * approx_row_bytes(self.schema.arity())
    }

    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Append one row, checking arity (primary keys are checked in bulk by
    /// [`Relation::check_pk`] because per-insert checks would hide the cost
    /// model of bulk `INSERT ... SELECT`).
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk append with arity checks.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for r in rows {
            self.push(r)?;
        }
        Ok(())
    }

    /// Build a relation from a schema and literal rows (tests, loaders).
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let mut r = Relation::new(schema);
        r.extend(rows)?;
        Ok(r)
    }

    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Remove each row in `victims` once (multiset semantics): a victim
    /// appearing k times removes at most k matching rows. Rows absent from
    /// the relation are ignored. Returns how many rows were removed.
    /// First-occurrence order of the survivors is preserved — deletions must
    /// not reorder a table whose bytes the WAL after-images.
    pub fn remove_rows(&mut self, victims: &[Row]) -> usize {
        if victims.is_empty() || self.rows.is_empty() {
            return 0;
        }
        let mut pending: FxHashMap<&Row, usize> = FxHashMap::default();
        for v in victims {
            *pending.entry(v).or_insert(0) += 1;
        }
        let before = self.rows.len();
        self.rows.retain(|r| match pending.get_mut(r) {
            Some(c) if *c > 0 => {
                *c -= 1;
                false
            }
            _ => true,
        });
        before - self.rows.len()
    }

    /// Verify the declared primary key is actually unique.
    pub fn check_pk(&self) -> Result<()> {
        let Some(pk) = &self.pk else { return Ok(()) };
        let mut seen: FxHashMap<Key, ()> = FxHashMap::default();
        seen.reserve(self.rows.len());
        for row in &self.rows {
            let k = Key::of(row, pk);
            if seen.insert(k.clone(), ()).is_some() {
                return Err(StorageError::DuplicateKey(format!("{k:?}")));
            }
        }
        Ok(())
    }

    /// Build a unique-key → row-index map over `cols`.
    ///
    /// Errors with [`StorageError::DuplicateKey`] if two rows share a key;
    /// this is exactly the condition under which the paper declares
    /// union-by-update's answer non-unique ("we do not allow multiple s to
    /// match a single r", Section 4.1).
    pub fn unique_key_map(&self, cols: &[usize]) -> Result<FxHashMap<Key, usize>> {
        let mut map: FxHashMap<Key, usize> = FxHashMap::default();
        map.reserve(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            let k = Key::of(row, cols);
            if map.insert(k.clone(), i).is_some() {
                return Err(StorageError::DuplicateKey(format!("{k:?}")));
            }
        }
        Ok(map)
    }

    /// Build a multi-map key → row indexes over `cols` (hash-join build side).
    pub fn key_multimap(&self, cols: &[usize]) -> FxHashMap<Key, Vec<u32>> {
        let mut map: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
        map.reserve(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            map.entry(Key::of(row, cols)).or_default().push(i as u32);
        }
        map
    }

    /// Sort rows in place by the given columns (storage total order).
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        self.rows.sort_unstable_by(|a, b| {
            for &c in cols {
                match a[c].cmp(&b[c]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Remove exact duplicate rows (set semantics), preserving first
    /// occurrence order.
    pub fn dedup_rows(&mut self) {
        let mut seen: FxHashMap<Row, ()> = FxHashMap::default();
        seen.reserve(self.rows.len());
        self.rows.retain(|r| seen.insert(r.clone(), ()).is_none());
    }

    /// Bag equality ignoring row order (for tests and fixpoint detection).
    pub fn same_rows_unordered(&self, other: &Relation) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut counts: FxHashMap<&Row, i64> = FxHashMap::default();
        for r in &self.rows {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in &other.rows {
            match counts.get_mut(r) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// Render the first `limit` rows as an aligned text table (debugging,
    /// examples).
    pub fn display(&self, limit: usize) -> String {
        let mut out = String::new();
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.full_name())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(limit)
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        };
        line(&headers, &mut out);
        for row in &shown {
            line(row, &mut out);
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }
}

/// Per-column sketch: distinct count plus min/max (NULLs excluded), the
/// inputs of textbook selectivity formulas. An exact pass — relations here
/// are in-memory, so one scan is cheap relative to query execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnSketch {
    /// Number of distinct non-NULL values.
    pub ndv: usize,
    /// Smallest non-NULL value, if any row has one.
    pub min: Option<Value>,
    /// Largest non-NULL value, if any row has one.
    pub max: Option<Value>,
    /// Rows whose value in this column is NULL.
    pub nulls: usize,
}

/// Table-level statistics: cardinality + one [`ColumnSketch`] per column,
/// positionally aligned with the schema.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationStats {
    pub rows: usize,
    pub columns: Vec<ColumnSketch>,
}

impl RelationStats {
    /// The sketch for the column at schema position `i`, if in range.
    pub fn column(&self, i: usize) -> Option<&ColumnSketch> {
        self.columns.get(i)
    }
}

impl Relation {
    /// Collect [`RelationStats`] column-at-a-time: each column is lifted
    /// into its typed [`crate::column::ColumnVec`] layout and sketched over
    /// dense `i64`/`f64` vectors (NDV via primitive hash sets, min/max over
    /// machine types) instead of hashing `Value` enums per cell.
    /// Heterogeneous columns fall back to the generic `Value` path; the
    /// resulting sketches are identical either way — NULLs counted
    /// separately, excluded from NDV and bounds, ordering per the total
    /// `Ord` on [`Value`].
    pub fn collect_stats(&self) -> RelationStats {
        let arity = self.schema.arity();
        let mut columns = Vec::with_capacity(arity);
        for i in 0..arity {
            let col =
                crate::column::ColumnVec::from_values(self.rows.iter().map(|r| &r[i]));
            columns.push(col.sketch());
        }
        RelationStats {
            rows: self.rows.len(),
            columns,
        }
    }
}

/// Convenience: the paper's canonical edge relation schema `E(F, T, ew)`.
pub fn edge_schema() -> Schema {
    Schema::of(&[
        ("F", DataType::Int),
        ("T", DataType::Int),
        ("ew", DataType::Float),
    ])
}

/// Convenience: the paper's canonical node relation schema `V(ID, vw)`.
pub fn node_schema() -> Schema {
    Schema::of(&[("ID", DataType::Int), ("vw", DataType::Float)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::with_pk(edge_schema(), &["F", "T"]).unwrap();
        r.extend([row![1, 2, 1.0], row![2, 3, 1.0], row![1, 3, 0.5]])
            .unwrap();
        r
    }

    #[test]
    fn arity_enforced() {
        let mut r = Relation::new(node_schema());
        assert!(r.push(row![1, 2.0]).is_ok());
        assert!(matches!(
            r.push(row![1]),
            Err(StorageError::ArityMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn pk_uniqueness_check() {
        let mut r = sample();
        assert!(r.check_pk().is_ok());
        r.push(row![1, 2, 9.0]).unwrap();
        assert!(matches!(r.check_pk(), Err(StorageError::DuplicateKey(_))));
    }

    #[test]
    fn unique_key_map_detects_duplicates() {
        let r = sample();
        let by_f = r.unique_key_map(&[0]);
        assert!(by_f.is_err(), "F alone is not unique");
        let by_ft = r.unique_key_map(&[0, 1]).unwrap();
        assert_eq!(by_ft.len(), 3);
    }

    #[test]
    fn multimap_groups() {
        let r = sample();
        let m = r.key_multimap(&[0]);
        assert_eq!(m[&Key(vec![Value::Int(1)].into())].len(), 2);
        assert_eq!(m[&Key(vec![Value::Int(2)].into())].len(), 1);
    }

    #[test]
    fn sort_and_dedup() {
        let mut r = Relation::new(node_schema());
        r.extend([row![3, 1.0], row![1, 1.0], row![3, 1.0], row![2, 5.0]])
            .unwrap();
        r.dedup_rows();
        assert_eq!(r.len(), 3);
        r.sort_by_cols(&[0]);
        let ids: Vec<i64> = r.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn remove_rows_multiset_first_match() {
        let mut r = Relation::new(node_schema());
        r.extend([row![1, 1.0], row![2, 2.0], row![1, 1.0], row![3, 3.0]])
            .unwrap();
        // one victim removes only one of the two duplicates
        let removed = r.remove_rows(&[row![1, 1.0], row![9, 9.0]]);
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 3);
        // duplicate victims remove both copies; survivor order preserved
        let mut r2 = Relation::new(node_schema());
        r2.extend([row![1, 1.0], row![2, 2.0], row![1, 1.0], row![3, 3.0]])
            .unwrap();
        assert_eq!(r2.remove_rows(&[row![1, 1.0], row![1, 1.0]]), 2);
        let ids: Vec<i64> = r2.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn unordered_equality() {
        let mut a = Relation::new(node_schema());
        a.extend([row![1, 1.0], row![2, 2.0], row![1, 1.0]]).unwrap();
        let mut b = Relation::new(node_schema());
        b.extend([row![2, 2.0], row![1, 1.0], row![1, 1.0]]).unwrap();
        assert!(a.same_rows_unordered(&b));
        b.rows_mut().pop();
        assert!(!a.same_rows_unordered(&b));
    }

    #[test]
    fn null_keys_flagged() {
        let k = Key(vec![Value::Int(1), Value::Null].into());
        assert!(k.has_null());
        let k = Key(vec![Value::Int(1)].into());
        assert!(!k.has_null());
    }

    #[test]
    fn display_renders_header_and_rows() {
        let r = sample();
        let s = r.display(2);
        assert!(s.contains('F') && s.contains("ew"));
        assert!(s.contains("(3 rows total)"));
    }
}
