//! Crash recovery: latest valid snapshot + committed WAL tail → a live,
//! durable [`Catalog`].
//!
//! The protocol (`open_catalog`):
//!
//! 1. Pick the newest snapshot that passes its whole-file CRC; corrupt
//!    newer generations fall back to older ones (checkpointing never
//!    deletes generation *n* before *n+1* is durable, so one of them is
//!    valid unless the disk lost both).
//! 2. Scan `wal.<seq>` frame by frame, stopping at the first torn or
//!    CRC-failing frame. Group records into transactions at `Commit`
//!    markers; *validate* each transaction against a lightweight shadow of
//!    the catalog before applying it, so a half-applied transaction can
//!    never leave the catalog inconsistent. Uncommitted or invalid tails
//!    are discarded and the file is rewritten to its committed prefix.
//! 3. `RunBegin` / `Commit(Iter)` / `Commit(RunEnd)` records reconstruct
//!    whether a with+ statement was interrupted mid-fixpoint and how many
//!    iterations are durable — surfaced as [`InterruptedRun`] so the
//!    caller (withplus' `Database::resume_interrupted`) can resume from
//!    the last completed iteration instead of restarting.
//! 4. Recompute optimizer statistics for every base table: replay
//!    invalidates them, and the cost optimizer must never plan against
//!    sketches that predate the replayed tail.
//!
//! Recovery is *total*: any corruption degrades to an older consistent
//! state and is reported in the typed [`RecoveryReport`]; it never panics
//! and never surfaces partial rows.

use crate::catalog::Catalog;
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::snapshot::{self, TableImage};
use crate::value::Value;
use crate::vfs::Vfs;
use crate::wal::{self, CommitKind, Durability, WalRecord, WalPolicy};
use aio_trace::{maybe_span, Tracer};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A with+ statement that began but never logged its `RunEnd`: everything
/// needed to resume (or discard) it.
#[derive(Clone, Debug, PartialEq)]
pub struct InterruptedRun {
    /// Normalized name of the recursive relation.
    pub rec_name: String,
    /// The original statement text.
    pub sql: String,
    /// Parameter bindings in effect when the run began.
    pub params: Vec<(String, Value)>,
    /// `None` — the run began but no iteration boundary committed: re-run
    /// from scratch. `Some(0)` — the init queries are durable. `Some(k)` —
    /// `k` fixpoint iterations are durable; resume at iteration `k`.
    pub committed_iters: Option<u64>,
}

/// What recovery found and did. `Display` renders a deterministic
/// multi-line summary (no timings) used by the golden test.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Fresh directory: nothing to recover, generation 0 was initialized.
    pub fresh: bool,
    /// Generation of the snapshot recovery started from.
    pub snapshot_seq: u64,
    pub snapshot_tables: usize,
    /// Newer snapshot generations that failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// WAL records applied (commit markers included).
    pub wal_records_replayed: usize,
    /// Committed transactions applied.
    pub wal_txns_applied: usize,
    /// Records discarded: decoded but uncommitted, plus any unreadable tail.
    pub wal_records_discarded: usize,
    pub wal_bytes_replayed: u64,
    /// Bytes truncated off the WAL's torn/uncommitted suffix.
    pub wal_bytes_truncated: u64,
    /// First corruption encountered, if any.
    pub corrupt: Option<String>,
    /// A with+ run that never completed; resumable via the withplus layer.
    pub interrupted: Option<InterruptedRun>,
    /// Base tables whose optimizer statistics were recomputed after replay.
    pub stats_recomputed: usize,
    /// Recovery checkpointed immediately because it found corruption.
    pub post_recovery_checkpoint: bool,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recovery report")?;
        writeln!(f, "  fresh: {}", self.fresh)?;
        writeln!(
            f,
            "  snapshot: seq {} ({} tables, {} newer skipped)",
            self.snapshot_seq, self.snapshot_tables, self.snapshots_skipped
        )?;
        writeln!(
            f,
            "  wal: {} records in {} txns replayed ({} bytes), {} records discarded ({} bytes truncated)",
            self.wal_records_replayed,
            self.wal_txns_applied,
            self.wal_bytes_replayed,
            self.wal_records_discarded,
            self.wal_bytes_truncated
        )?;
        writeln!(
            f,
            "  corrupt: {}",
            self.corrupt.as_deref().unwrap_or("none")
        )?;
        match &self.interrupted {
            None => writeln!(f, "  interrupted run: none")?,
            Some(ir) => writeln!(
                f,
                "  interrupted run: {} at {}",
                ir.rec_name,
                match ir.committed_iters {
                    None => "begin (no durable iterations)".to_string(),
                    Some(k) => format!("iteration {k}"),
                }
            )?,
        }
        writeln!(f, "  stats recomputed: {}", self.stats_recomputed)?;
        write!(
            f,
            "  post-recovery checkpoint: {}",
            self.post_recovery_checkpoint
        )
    }
}

/// Cheap simulation of the catalog (name → arity) used to validate a whole
/// transaction before any of it is applied. The only ways a well-formed
/// record can fail to apply are missing/existing tables and arity
/// mismatches — exactly what this tracks.
#[derive(Clone, Default)]
struct Shadow {
    arity: HashMap<String, usize>,
}

impl Shadow {
    fn of(catalog: &Catalog) -> Self {
        let mut s = Shadow::default();
        for n in catalog.names() {
            let e = catalog.entry(&n).expect("listed name");
            s.arity.insert(n, e.rel.schema().arity());
        }
        s
    }

    fn check(&mut self, rec: &WalRecord) -> std::result::Result<(), String> {
        match rec {
            WalRecord::CreateTable { name, replace, schema, rows, pk, .. } => {
                if !replace && self.arity.contains_key(name) {
                    return Err(format!("create of existing table {name}"));
                }
                let a = schema.arity();
                if rows.iter().any(|r| r.len() != a) {
                    return Err(format!("create {name}: row arity != {a}"));
                }
                if pk.as_ref().is_some_and(|p| p.iter().any(|&c| c >= a)) {
                    return Err(format!("create {name}: pk column out of range"));
                }
                self.arity.insert(name.clone(), a);
            }
            WalRecord::Insert { table, rows } | WalRecord::ReplaceRows { table, rows } => {
                let a = *self
                    .arity
                    .get(table)
                    .ok_or_else(|| format!("write to missing table {table}"))?;
                if rows.iter().any(|r| r.len() != a) {
                    return Err(format!("write to {table}: row arity != {a}"));
                }
            }
            WalRecord::Truncate { table } => {
                if !self.arity.contains_key(table) {
                    return Err(format!("truncate of missing table {table}"));
                }
            }
            WalRecord::Drop { table } => {
                self.arity
                    .remove(table)
                    .ok_or_else(|| format!("drop of missing table {table}"))?;
            }
            WalRecord::Rename { old, new } => {
                if self.arity.contains_key(new) {
                    return Err(format!("rename onto existing table {new}"));
                }
                let a = self
                    .arity
                    .remove(old)
                    .ok_or_else(|| format!("rename of missing table {old}"))?;
                self.arity.insert(new.clone(), a);
            }
            WalRecord::EdgeDelta { table, adds, dels } => {
                let a = *self
                    .arity
                    .get(table)
                    .ok_or_else(|| format!("edge delta on missing table {table}"))?;
                if adds.iter().chain(dels.iter()).any(|r| r.len() != a) {
                    return Err(format!("edge delta on {table}: row arity != {a}"));
                }
            }
            WalRecord::RunBegin { .. } | WalRecord::Commit(_) => {}
        }
        Ok(())
    }
}

/// Apply one pre-validated record. The catalog has no durability attached
/// yet, so none of this is re-logged.
fn apply(catalog: &mut Catalog, rec: WalRecord) -> Result<()> {
    match rec {
        WalRecord::CreateTable { name, temp, replace, schema, pk, rows } => {
            let mut rel = Relation::new(schema);
            rel.set_pk(pk);
            rel.extend(rows)?;
            if replace {
                catalog.create_or_replace(&name, rel, temp)?;
            } else if temp {
                catalog.create_temp(&name, rel)?;
            } else {
                catalog.create_table(&name, rel)?;
            }
        }
        WalRecord::Insert { table, rows } => {
            catalog.insert_rows(&table, rows, WalPolicy::None)?;
        }
        WalRecord::Truncate { table } => catalog.truncate(&table)?,
        WalRecord::Drop { table } => {
            catalog.drop_table(&table)?;
        }
        WalRecord::Rename { old, new } => catalog.rename_table(&old, &new)?,
        WalRecord::ReplaceRows { table, rows } => {
            let rel = catalog.relation_mut(&table)?;
            rel.truncate();
            rel.extend(rows)?;
        }
        WalRecord::EdgeDelta { table, adds, dels } => {
            let rel = catalog.relation_mut(&table)?;
            rel.extend(adds)?;
            rel.remove_rows(&dels);
        }
        WalRecord::RunBegin { .. } | WalRecord::Commit(_) => {}
    }
    Ok(())
}

fn io_err(op: &str, path: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{op} {path}: {e}"))
}

/// Open (or initialize) the database directory `dir` through `vfs`,
/// recovering to the last durable, consistent state. Returns the catalog
/// with durability attached plus a report of what happened.
pub fn open_catalog(
    vfs: Arc<dyn Vfs>,
    dir: &str,
    tracer: Option<&Tracer>,
) -> Result<(Catalog, RecoveryReport)> {
    let span = maybe_span(tracer, "recovery");
    let recovery_started = std::time::Instant::now();
    let mut report = RecoveryReport::default();
    vfs.create_dir_all(dir).map_err(|e| io_err("mkdir", dir, e))?;
    let names = vfs.list(dir).unwrap_or_default();

    // Newest-first snapshot candidates; also track every generation number
    // seen so a fresh WAL generation never collides with leftovers.
    let mut snap_seqs: Vec<u64> = names.iter().filter_map(|n| snapshot::parse_snapshot_name(n)).collect();
    snap_seqs.sort_unstable();
    snap_seqs.reverse();
    let max_seen = names
        .iter()
        .filter_map(|n| snapshot::parse_snapshot_name(n).or_else(|| snapshot::parse_wal_name(n)))
        .max();

    let mut chosen: Option<(u64, Vec<TableImage>)> = None;
    for &seq in &snap_seqs {
        let path = snapshot::snapshot_file(dir, seq);
        match vfs.read(&path).map_err(|e| io_err("read", &path, e)).and_then(|b| snapshot::decode_snapshot(&b)) {
            Ok((stored_seq, tables)) if stored_seq == seq => {
                chosen = Some((seq, tables));
                break;
            }
            Ok(_) => {
                report.snapshots_skipped += 1;
                if report.corrupt.is_none() {
                    report.corrupt = Some(format!("snapshot {seq}: sequence mismatch"));
                }
            }
            Err(e) => {
                report.snapshots_skipped += 1;
                if report.corrupt.is_none() {
                    report.corrupt = Some(format!("snapshot {seq}: {e}"));
                }
            }
        }
    }

    let mut catalog = Catalog::new();
    let seq = match chosen {
        Some((seq, tables)) => {
            report.snapshot_seq = seq;
            report.snapshot_tables = tables.len();
            for t in tables {
                let (name, temp, rel) = t.into_relation()?;
                catalog.create_or_replace(&name, rel, temp)?;
            }
            seq
        }
        None if max_seen.is_none() => {
            // Brand-new directory: initialize generation 0.
            report.fresh = true;
            let path = snapshot::snapshot_file(dir, 0);
            let bytes = snapshot::encode_snapshot(0, &catalog);
            vfs.write(&path, &bytes).map_err(|e| io_err("write", &path, e))?;
            vfs.sync(&path).map_err(|e| io_err("sync", &path, e))?;
            wal::init_wal(&vfs, dir, 0)?;
            0
        }
        None => {
            // Files exist but no snapshot decodes: total snapshot loss.
            // Start empty at a generation past everything seen, and
            // checkpoint below so the directory becomes consistent again.
            let seq = max_seen.unwrap_or(0) + 1;
            if report.corrupt.is_none() {
                report.corrupt = Some("no valid snapshot found".to_string());
            }
            report.snapshot_seq = seq;
            let path = snapshot::snapshot_file(dir, seq);
            let bytes = snapshot::encode_snapshot(seq, &catalog);
            vfs.write(&path, &bytes).map_err(|e| io_err("write", &path, e))?;
            vfs.sync(&path).map_err(|e| io_err("sync", &path, e))?;
            wal::init_wal(&vfs, dir, seq)?;
            seq
        }
    };

    // Replay the matching WAL generation.
    let wal_path = wal::wal_file(dir, seq);
    let bytes = if vfs.exists(&wal_path) {
        vfs.read(&wal_path).map_err(|e| io_err("read", &wal_path, e))?
    } else {
        wal::init_wal(&vfs, dir, seq)?;
        wal::WAL_MAGIC.to_vec()
    };

    let scan = wal::scan_wal(&bytes);
    if let Some(reason) = &scan.torn {
        // An empty-but-unreadable file (e.g. crash before the magic
        // synced) is normal, not corruption worth reporting.
        if !(scan.records.is_empty() && bytes.len() < wal::WAL_MAGIC.len() + 8) && report.corrupt.is_none() {
            report.corrupt = Some(format!("wal: {reason}"));
        }
    }

    let mut shadow = Shadow::of(&catalog);
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut committed_end: usize = wal::WAL_MAGIC.len().min(bytes.len());
    let mut interrupted: Option<InterruptedRun> = None;
    let mut stopped: Option<String> = None;
    let total_records = scan.records.len();

    'replay: for (end, rec) in scan.records {
        match rec {
            WalRecord::Commit(kind) => {
                // Validate the whole transaction against the shadow before
                // touching the catalog: all-or-nothing.
                let mut trial = shadow.clone();
                for r in &pending {
                    if let Err(e) = trial.check(r) {
                        stopped = Some(e);
                        break 'replay;
                    }
                }
                shadow = trial;
                for r in pending.drain(..) {
                    match &r {
                        WalRecord::RunBegin { rec, sql, params } => {
                            interrupted = Some(InterruptedRun {
                                rec_name: rec.clone(),
                                sql: sql.clone(),
                                params: params.clone(),
                                committed_iters: None,
                            });
                        }
                        _ => apply(&mut catalog, r)?,
                    }
                    report.wal_records_replayed += 1;
                }
                match &kind {
                    CommitKind::Auto => {}
                    CommitKind::Iter { rec, iters_done } => {
                        if let Some(ir) = interrupted.as_mut() {
                            if ir.rec_name == *rec {
                                ir.committed_iters = Some(*iters_done);
                            }
                        }
                    }
                    CommitKind::RunEnd { rec } => {
                        if interrupted.as_ref().is_some_and(|ir| ir.rec_name == *rec) {
                            interrupted = None;
                        }
                    }
                }
                report.wal_records_replayed += 1;
                report.wal_txns_applied += 1;
                committed_end = end;
            }
            other => pending.push(other),
        }
    }

    report.wal_records_discarded = total_records - report.wal_records_replayed;
    if let Some(reason) = stopped {
        if report.corrupt.is_none() {
            report.corrupt = Some(format!("wal: unreplayable transaction: {reason}"));
        }
    }
    report.wal_bytes_replayed = committed_end.saturating_sub(wal::WAL_MAGIC.len()) as u64;

    // Rewrite the WAL to its committed prefix whenever a tail was
    // discarded, so new appends never land after garbage.
    if committed_end < bytes.len() || bytes.len() < wal::WAL_MAGIC.len() {
        let keep = if committed_end >= wal::WAL_MAGIC.len() {
            bytes[..committed_end].to_vec()
        } else {
            wal::WAL_MAGIC.to_vec()
        };
        report.wal_bytes_truncated = (bytes.len() as u64).saturating_sub(keep.len() as u64);
        vfs.write(&wal_path, &keep).map_err(|e| io_err("write", &wal_path, e))?;
        vfs.sync(&wal_path).map_err(|e| io_err("sync", &wal_path, e))?;
    }

    // Satellite fix: replay invalidates `RelationStats`; recompute for all
    // base tables so the cost optimizer never sees stale sketches.
    for name in catalog.names() {
        if !catalog.entry(&name)?.temp {
            catalog.analyze(&name)?;
            report.stats_recomputed += 1;
        }
    }

    report.interrupted = interrupted;
    catalog.attach_durability(Durability::new(Arc::clone(&vfs), dir, seq));

    // If recovery had to discard anything structural, fold the repaired
    // state into a fresh generation immediately.
    if report.corrupt.is_some() {
        catalog.checkpoint()?;
        report.post_recovery_checkpoint = true;
    }

    if let Some(s) = &span {
        s.field("snapshot_seq", report.snapshot_seq);
        s.field("records_replayed", report.wal_records_replayed as u64);
        s.field("records_discarded", report.wal_records_discarded as u64);
        s.field("txns", report.wal_txns_applied as u64);
        s.field("corrupt", report.corrupt.is_some());
        s.field("interrupted", report.interrupted.is_some());
        s.field("stats_recomputed", report.stats_recomputed as u64);
    }
    aio_metrics::hooks::recovery(recovery_started.elapsed().as_millis() as u64);
    Ok((catalog, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;
    use crate::vfs::SimVfs;

    fn open(vfs: &Arc<dyn Vfs>) -> (Catalog, RecoveryReport) {
        open_catalog(Arc::clone(vfs), "db", None).expect("recovery is total")
    }

    fn sim() -> (Arc<SimVfs>, Arc<dyn Vfs>) {
        let v = Arc::new(SimVfs::new());
        let d: Arc<dyn Vfs> = Arc::clone(&v) as Arc<dyn Vfs>;
        (v, d)
    }

    #[test]
    fn fresh_directory_initializes_generation_zero() {
        let (_, vfs) = sim();
        let (cat, report) = open(&vfs);
        assert!(report.fresh);
        assert!(cat.is_durable());
        assert!(vfs.exists("db/snapshot.0") && vfs.exists("db/wal.0"));
        // Re-open: no longer fresh, nothing replayed.
        let (_, report) = open(&vfs);
        assert!(!report.fresh);
        assert_eq!(report.wal_txns_applied, 0);
    }

    #[test]
    fn mutations_survive_reopen() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        let mut e = Relation::new(edge_schema());
        e.set_pk(Some(vec![0, 1]));
        cat.create_table("E", e).unwrap();
        cat.insert_rows("E", vec![row![1, 2, 1.0], row![2, 3, 0.5]], WalPolicy::None)
            .unwrap();
        cat.create_temp("tmp", Relation::new(node_schema())).unwrap();
        cat.rename_table("tmp", "tmp2").unwrap();
        cat.truncate("tmp2").unwrap();

        let (recovered, report) = open(&vfs);
        assert!(report.corrupt.is_none(), "{report}");
        assert!(cat.same_content(&recovered));
        assert_eq!(recovered.relation("E").unwrap().len(), 2);
        assert_eq!(recovered.relation("E").unwrap().pk(), Some(&[0usize, 1][..]));
        assert!(recovered.contains("tmp2") && !recovered.contains("tmp"));
    }

    #[test]
    fn checkpoint_truncates_log_and_reopens() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("V", Relation::new(node_schema())).unwrap();
        cat.insert_rows("V", vec![row![1, 0.5]], WalPolicy::None).unwrap();
        let stats = cat.checkpoint().unwrap();
        assert_eq!(stats.seq, 1);
        assert!(vfs.exists("db/snapshot.1") && vfs.exists("db/wal.1"));
        assert!(!vfs.exists("db/snapshot.0") && !vfs.exists("db/wal.0"));

        let (recovered, report) = open(&vfs);
        assert_eq!(report.snapshot_seq, 1);
        assert_eq!(report.wal_txns_applied, 0, "log was truncated");
        assert!(cat.same_content(&recovered));
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("V", Relation::new(node_schema())).unwrap();
        // Open a txn and leave a mutation uncommitted.
        cat.wal_begin_txn();
        cat.insert_rows("V", vec![row![9, 9.0]], WalPolicy::None).unwrap();
        // No commit marker: replay must not see the insert.
        let (recovered, report) = open(&vfs);
        assert!(recovered.relation("V").unwrap().is_empty());
        assert!(report.wal_records_discarded > 0);
        assert!(report.wal_bytes_truncated > 0);
        // And the rewritten WAL stays consistent on a third open.
        let (again, _) = open(&vfs);
        assert!(recovered.same_content(&again));
    }

    #[test]
    fn torn_wal_suffix_keeps_committed_prefix() {
        let (sv, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("V", Relation::new(node_schema())).unwrap();
        cat.insert_rows("V", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        cat.insert_rows("V", vec![row![2, 2.0]], WalPolicy::None).unwrap();
        // Tear the file mid-frame: the second insert's commit marker is
        // damaged, so that whole transaction rolls back; the first insert
        // is untouched.
        sv.corrupt("db/wal.0", |b| {
            let n = b.len();
            b.truncate(n - 3);
        });
        let (recovered, report) = open(&vfs);
        assert_eq!(recovered.relation("V").unwrap().len(), 1);
        assert_eq!(recovered.relation("V").unwrap().rows()[0], row![1, 1.0]);
        assert!(report.corrupt.is_some());
        assert!(report.post_recovery_checkpoint);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let (sv, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("V", Relation::new(node_schema())).unwrap();
        cat.insert_rows("V", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        cat.checkpoint().unwrap(); // generation 1
        // Resurrect a stale-but-valid generation 0 as the fallback, then
        // corrupt generation 1.
        let bytes = snapshot::encode_snapshot(0, &Catalog::new());
        vfs.write("db/snapshot.0", &bytes).unwrap();
        vfs.sync("db/snapshot.0").unwrap();
        sv.corrupt("db/snapshot.1", |b| b[10] ^= 0xFF);
        let (recovered, report) = open(&vfs);
        assert_eq!(report.snapshots_skipped, 1);
        assert_eq!(report.snapshot_seq, 0);
        assert!(report.corrupt.is_some());
        // Fallback is the *older* durable state: V does not exist there.
        assert!(!recovered.contains("V"));
        assert!(report.post_recovery_checkpoint);
    }

    #[test]
    fn stats_recomputed_after_replay() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("V", Relation::new(node_schema())).unwrap();
        // Mutation invalidates stats in the live catalog...
        cat.insert_rows("V", vec![row![1, 0.5], row![2, 0.5]], WalPolicy::None)
            .unwrap();
        assert!(cat.stats("V").is_none());
        // ...but recovery must hand back fresh sketches (the PR 4
        // regression this satellite fixes).
        let (recovered, report) = open(&vfs);
        assert_eq!(report.stats_recomputed, 1);
        let stats = recovered.stats("V").expect("recomputed");
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.columns[0].ndv, 2);
    }

    #[test]
    fn edge_deltas_survive_reopen() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("E", Relation::new(edge_schema())).unwrap();
        cat.insert_rows("E", vec![row![1, 2, 1.0], row![2, 3, 1.0]], WalPolicy::None)
            .unwrap();
        cat.apply_delta(
            "E",
            vec![row![3, 4, 1.0]],
            vec![row![1, 2, 1.0]],
            WalPolicy::None,
        )
        .unwrap();
        let (recovered, report) = open(&vfs);
        assert!(report.corrupt.is_none(), "{report}");
        assert!(cat.same_content(&recovered));
        let mut got: Vec<(i64, i64)> = recovered
            .relation("E")
            .unwrap()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 3), (3, 4)]);
    }

    #[test]
    fn interrupted_run_reported_with_last_iteration() {
        let (_, vfs) = sim();
        let (mut cat, _) = open(&vfs);
        cat.create_table("E", Relation::new(edge_schema())).unwrap();
        let params = vec![("c".to_string(), Value::Float(0.85))];
        cat.wal_run_begin("pr", "with+ ...", &params).unwrap();
        cat.create_or_replace("pr", Relation::new(node_schema()), true).unwrap();
        cat.wal_commit_iter("pr", 0).unwrap();
        cat.insert_rows("pr", vec![row![1, 0.1]], WalPolicy::None).unwrap();
        cat.wal_commit_iter("pr", 3).unwrap();
        // Crash here: no RunEnd.
        let (recovered, report) = open(&vfs);
        let ir = report.interrupted.expect("interrupted run");
        assert_eq!(ir.rec_name, "pr");
        assert_eq!(ir.sql, "with+ ...");
        assert_eq!(ir.params, params);
        assert_eq!(ir.committed_iters, Some(3));
        assert_eq!(recovered.relation("pr").unwrap().len(), 1);

        // A completed run reports nothing.
        let (mut cat2, _) = open(&vfs);
        cat2.wal_run_begin("pr2", "with+ 2", &[]).unwrap();
        cat2.wal_run_end("pr2").unwrap();
        let (_, report) = open(&vfs);
        assert!(report.interrupted.is_none());
    }
}
