//! The catalog: named base tables and session temporary tables.
//!
//! The PSM translation of a with+ query (Algorithm 1) creates a temporary
//! table per `computed by` relation plus the recursive relation itself,
//! fills them with `INSERT ... SELECT`, and truncates them between
//! iterations. The catalog tracks which tables are temporary because the
//! paper's PostgreSQL behaviour hinges on it: *"PostgreSQL does not generate
//! the optimal plan for temporary tables due to the lack of sufficient
//! statistical information"* (Section 7.2). Base tables have statistics;
//! temp tables do not.

use crate::error::{Result, StorageError};
use crate::index::SortedIndex;
use crate::relation::{Relation, RelationStats, Row};
use crate::wal::{Wal, WalPolicy};
use std::collections::HashMap;

/// A catalog entry.
#[derive(Clone, Debug)]
pub struct TableEntry {
    pub rel: Relation,
    /// Temporary (session) table: no optimizer statistics.
    pub temp: bool,
    /// Sorted indexes built over this table (Exp-A, Fig. 10).
    pub indexes: Vec<SortedIndex>,
    /// Optimizer statistics. Base tables get them at load time; temp
    /// tables only via an explicit [`Catalog::analyze`] (the paper's
    /// PostgreSQL pain point is exactly their absence). Mutation through
    /// `insert_rows`/`truncate`/`relation_mut` invalidates them.
    pub stats: Option<RelationStats>,
}

/// Named relations plus the WAL.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    /// Simulated redo log shared by all tables.
    pub wal: Wal,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a base table (has statistics).
    pub fn create_table(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.create(name, rel, false)
    }

    /// Register a temporary table (no statistics; optimizer-relevant).
    pub fn create_temp(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.create(name, rel, true)
    }

    fn create(&mut self, name: &str, rel: Relation, temp: bool) -> Result<()> {
        let key = norm(name);
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        // Base tables are analyzed at load time; temp tables start without
        // statistics, like the paper's PostgreSQL temp tables.
        let stats = (!temp).then(|| rel.collect_stats());
        self.tables.insert(
            key,
            TableEntry {
                rel,
                temp,
                indexes: Vec::new(),
                stats,
            },
        );
        Ok(())
    }

    /// Register, replacing any previous table of that name (used by the
    /// `drop`/`alter` union-by-update implementation and by experiment
    /// set-up code).
    pub fn create_or_replace(&mut self, name: &str, rel: Relation, temp: bool) {
        let stats = (!temp).then(|| rel.collect_stats());
        self.tables.insert(
            norm(name),
            TableEntry {
                rel,
                temp,
                indexes: Vec::new(),
                stats,
            },
        );
    }

    /// `ANALYZE name` — (re)collect statistics for one table, temp or not.
    /// This is the cheap per-iteration refresh path for the recursive
    /// delta relation under the cost-based optimizer.
    pub fn analyze(&mut self, name: &str) -> Result<()> {
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = Some(e.rel.collect_stats());
        Ok(())
    }

    /// Statistics for `name`, if collected and still valid.
    pub fn stats(&self, name: &str) -> Option<&RelationStats> {
        self.tables.get(&norm(name)).and_then(|e| e.stats.as_ref())
    }

    fn entry_mut_keep_stats(&mut self, name: &str) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(&norm(name))
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn drop_table(&mut self, name: &str) -> Result<Relation> {
        self.tables
            .remove(&norm(name))
            .map(|e| e.rel)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// `ALTER TABLE old RENAME TO new` (the second half of the drop/alter
    /// union-by-update implementation, Table 4/5).
    pub fn rename_table(&mut self, old: &str, new: &str) -> Result<()> {
        if self.tables.contains_key(&norm(new)) {
            return Err(StorageError::TableExists(new.to_string()));
        }
        let e = self
            .tables
            .remove(&norm(old))
            .ok_or_else(|| StorageError::NoSuchTable(old.to_string()))?;
        self.tables.insert(norm(new), e);
        Ok(())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&norm(name))
    }

    pub fn entry(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(&norm(name))
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Mutable entry access. Conservatively drops the table's statistics:
    /// the caller may mutate rows, and stale sketches are worse for the
    /// optimizer than none. Use [`Catalog::analyze`] to re-collect.
    pub fn entry_mut(&mut self, name: &str) -> Result<&mut TableEntry> {
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = None;
        Ok(e)
    }

    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.entry(name).map(|e| &e.rel)
    }

    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.entry_mut(name).map(|e| &mut e.rel)
    }

    /// `TRUNCATE TABLE` — the paper's per-iteration cleanup of intermediate
    /// results ("the intermediate result of Q_i is cleaned up by the
    /// truncate table clause", appendix). Drops indexes too, since they
    /// index nothing afterwards.
    pub fn truncate(&mut self, name: &str) -> Result<()> {
        let e = self.entry_mut(name)?;
        e.rel.truncate();
        e.indexes.clear();
        Ok(())
    }

    /// Bulk insert, logging per `policy`.
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Row>, policy: WalPolicy) -> Result<()> {
        self.wal.log_insert(policy, &rows);
        let e = self.entry_mut(name)?;
        // Inserts invalidate sorted order; a real engine maintains the
        // B-tree incrementally, we rebuild lazily on next use instead.
        e.indexes.clear();
        e.rel.extend(rows)
    }

    /// Build (or rebuild) a sorted index on `cols`. Leaves statistics
    /// intact — indexing does not change row contents.
    pub fn build_index(&mut self, name: &str, cols: &[usize]) -> Result<()> {
        let e = self.entry_mut_keep_stats(name)?;
        if e.indexes.iter().any(|i| i.covers(cols)) {
            return Ok(());
        }
        let idx = SortedIndex::build(&e.rel, cols);
        e.indexes.push(idx);
        Ok(())
    }

    /// A sorted index covering exactly `cols`, if one was built.
    pub fn index_on(&self, name: &str, cols: &[usize]) -> Option<&SortedIndex> {
        self.tables
            .get(&norm(name))
            .and_then(|e| e.indexes.iter().find(|i| i.covers(cols)))
    }

    /// All table names (normalized), sorted for determinism.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;

    #[test]
    fn create_get_drop_roundtrip() {
        let mut c = Catalog::new();
        c.create_table("E", Relation::new(edge_schema())).unwrap();
        assert!(c.contains("e"), "names are case-insensitive");
        assert!(matches!(
            c.create_table("e", Relation::new(edge_schema())),
            Err(StorageError::TableExists(_))
        ));
        c.drop_table("E").unwrap();
        assert!(!c.contains("E"));
        assert!(c.drop_table("E").is_err());
    }

    #[test]
    fn rename_moves_entry() {
        let mut c = Catalog::new();
        c.create_temp("V_new", Relation::new(node_schema())).unwrap();
        c.create_table("V", Relation::new(node_schema())).unwrap();
        c.drop_table("V").unwrap();
        c.rename_table("V_new", "V").unwrap();
        assert!(c.contains("V"));
        assert!(!c.contains("V_new"));
    }

    #[test]
    fn rename_refuses_to_clobber() {
        let mut c = Catalog::new();
        c.create_table("A", Relation::new(node_schema())).unwrap();
        c.create_table("B", Relation::new(node_schema())).unwrap();
        assert!(c.rename_table("A", "B").is_err());
    }

    #[test]
    fn insert_logs_and_invalidates_indexes() {
        let mut c = Catalog::new();
        c.create_temp("T", Relation::new(node_schema())).unwrap();
        c.insert_rows("T", vec![row![1, 1.0], row![2, 2.0]], WalPolicy::Light)
            .unwrap();
        assert_eq!(c.relation("T").unwrap().len(), 2);
        assert!(c.wal.bytes_written() > 0);
        c.build_index("T", &[0]).unwrap();
        assert!(c.index_on("T", &[0]).is_some());
        c.insert_rows("T", vec![row![3, 3.0]], WalPolicy::None).unwrap();
        assert!(c.index_on("T", &[0]).is_none(), "insert invalidates index");
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut c = Catalog::new();
        c.create_temp("T", Relation::new(node_schema())).unwrap();
        c.insert_rows("T", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        c.build_index("T", &[0]).unwrap();
        c.truncate("T").unwrap();
        assert!(c.relation("T").unwrap().is_empty());
        assert!(c.index_on("T", &[0]).is_none());
    }

    #[test]
    fn temp_flag_tracked() {
        let mut c = Catalog::new();
        c.create_table("base", Relation::new(node_schema())).unwrap();
        c.create_temp("tmp", Relation::new(node_schema())).unwrap();
        assert!(!c.entry("base").unwrap().temp);
        assert!(c.entry("tmp").unwrap().temp);
    }
}
