//! The catalog: named base tables and session temporary tables.
//!
//! The PSM translation of a with+ query (Algorithm 1) creates a temporary
//! table per `computed by` relation plus the recursive relation itself,
//! fills them with `INSERT ... SELECT`, and truncates them between
//! iterations. The catalog tracks which tables are temporary because the
//! paper's PostgreSQL behaviour hinges on it: *"PostgreSQL does not generate
//! the optimal plan for temporary tables due to the lack of sufficient
//! statistical information"* (Section 7.2). Base tables have statistics;
//! temp tables do not.

use crate::error::{Result, StorageError};
use crate::index::SortedIndex;
use crate::mvcc::{GenerationHub, Snapshot};
use crate::relation::{Relation, RelationStats, Row};
use crate::snapshot;
use crate::trie::{TrieCache, TrieIndex};
use crate::value::Value;
use crate::wal::{self, CommitKind, Durability, Wal, WalPolicy};
use std::collections::HashMap;
use std::sync::Arc;

/// A catalog entry.
#[derive(Clone, Debug)]
pub struct TableEntry {
    pub rel: Relation,
    /// Temporary (session) table: no optimizer statistics.
    pub temp: bool,
    /// Sorted indexes built over this table (Exp-A, Fig. 10).
    pub indexes: Vec<SortedIndex>,
    /// Trie indexes for worst-case-optimal joins, built lazily per key
    /// order through `&Catalog` and invalidated on any mutation. Derived
    /// data: never WAL-logged, rebuilt on demand after recovery.
    pub tries: TrieCache,
    /// Optimizer statistics. Base tables get them at load time; temp
    /// tables only via an explicit [`Catalog::analyze`] (the paper's
    /// PostgreSQL pain point is exactly their absence). Mutation through
    /// `insert_rows`/`truncate`/`relation_mut` invalidates them.
    pub stats: Option<RelationStats>,
}

/// Named relations plus the WAL.
///
/// Entries are held behind `Arc` so a committed generation can be forked
/// as a read-only snapshot in O(tables) ([`Catalog::fork_readonly`]): the
/// fork shares every entry, and the writer's next mutation of a shared
/// entry clones only that entry (copy-on-write, see [`Catalog::table_mut`]).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<TableEntry>>,
    /// Simulated redo log shared by all tables (the paper's logging cost
    /// model; see `wal.rs`).
    pub wal: Wal,
    /// The *real* durable log, present when this catalog was opened from a
    /// database directory (`recover::open_catalog`). `None` = in-memory
    /// catalog, every durable hook below is a no-op.
    pub(crate) durable: Option<Durability>,
    /// Committed-generation counter: bumped at every commit point
    /// (auto-commit, explicit/iteration commit, run end, checkpoint).
    gen: u64,
    /// MVCC publication point, present after [`Catalog::enable_mvcc`].
    /// Every commit point publishes a read-only snapshot fork into it.
    hub: Option<Arc<GenerationHub>>,
    /// Explicit-transaction flag for *in-memory* catalogs (durable
    /// catalogs track it in [`Durability::in_txn`]); suppresses
    /// per-mutation generation publishes until the commit.
    mem_txn: bool,
}

/// What a [`Catalog::checkpoint`] wrote.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointStats {
    /// The new generation number.
    pub seq: u64,
    /// Snapshot file size.
    pub bytes: u64,
    pub tables: usize,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a base table (has statistics).
    pub fn create_table(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.create(name, rel, false)
    }

    /// Register a temporary table (no statistics; optimizer-relevant).
    pub fn create_temp(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.create(name, rel, true)
    }

    fn create(&mut self, name: &str, rel: Relation, temp: bool) -> Result<()> {
        let key = norm(name);
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_create_table(
                &key,
                temp,
                false,
                rel.schema(),
                rel.pk(),
                rel.rows(),
            ))?;
        }
        // Base tables are analyzed at load time; temp tables start without
        // statistics, like the paper's PostgreSQL temp tables.
        let stats = (!temp).then(|| rel.collect_stats());
        aio_metrics::global().engine.relation_bytes_total.add(rel.approx_bytes());
        self.tables.insert(
            key,
            Arc::new(TableEntry {
                rel,
                temp,
                indexes: Vec::new(),
                tries: TrieCache::default(),
                stats,
            }),
        );
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        Ok(())
    }

    /// Register, replacing any previous table of that name (used by the
    /// `drop`/`alter` union-by-update implementation and by experiment
    /// set-up code). Only fails on a durable catalog whose log append
    /// failed; in-memory it cannot error.
    pub fn create_or_replace(&mut self, name: &str, rel: Relation, temp: bool) -> Result<()> {
        let key = norm(name);
        if self.durable.is_some() {
            self.wal_append(wal::enc_create_table(
                &key,
                temp,
                true,
                rel.schema(),
                rel.pk(),
                rel.rows(),
            ))?;
        }
        let stats = (!temp).then(|| rel.collect_stats());
        aio_metrics::global().engine.relation_bytes_total.add(rel.approx_bytes());
        self.tables.insert(
            key,
            Arc::new(TableEntry {
                rel,
                temp,
                indexes: Vec::new(),
                tries: TrieCache::default(),
                stats,
            }),
        );
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        Ok(())
    }

    /// Install or overwrite a *system* relation (`aio_metrics`,
    /// `aio_query_log`): derived data like tries — never WAL-logged, gone
    /// after recovery, re-materialized on demand by the engine. Gets fresh
    /// statistics so the cost optimizer can plan over it.
    pub fn put_system_table(&mut self, name: &str, rel: Relation) {
        let stats = Some(rel.collect_stats());
        self.tables.insert(
            norm(name),
            Arc::new(TableEntry {
                rel,
                temp: true,
                indexes: Vec::new(),
                tries: TrieCache::default(),
                stats,
            }),
        );
    }

    /// `ANALYZE name` — (re)collect statistics for one table, temp or not.
    /// This is the cheap per-iteration refresh path for the recursive
    /// delta relation under the cost-based optimizer.
    pub fn analyze(&mut self, name: &str) -> Result<()> {
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = Some(e.rel.collect_stats());
        Ok(())
    }

    /// Statistics for `name`, if collected and still valid. Probes on
    /// existing tables count toward the stats-cache hit/miss metrics (a
    /// miss is the paper's "temp table without statistics" pain point).
    pub fn stats(&self, name: &str) -> Option<&RelationStats> {
        let e = self.tables.get(&norm(name))?;
        let stats = e.stats.as_ref();
        aio_metrics::hooks::stats_cache(stats.is_some());
        stats
    }

    /// Mutable access to one entry with copy-on-write: if the entry is
    /// shared with a published snapshot (or a pinned reader), it is cloned
    /// first so the snapshot keeps its own rows, statistics and trie cache
    /// untouched. This is the only place the writer diverges from readers.
    fn table_mut(&mut self, key: &str) -> Option<&mut TableEntry> {
        let arc = self.tables.get_mut(key)?;
        if Arc::strong_count(arc) > 1 {
            aio_metrics::hooks::mvcc_cow_clone(arc.rel.len() as u64);
        }
        Some(Arc::make_mut(arc))
    }

    fn entry_mut_keep_stats(&mut self, name: &str) -> Result<&mut TableEntry> {
        let key = norm(name);
        self.table_mut(&key)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn drop_table(&mut self, name: &str) -> Result<Relation> {
        let key = norm(name);
        if !self.tables.contains_key(&key) {
            return Err(StorageError::NoSuchTable(name.to_string()));
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_drop(&key))?;
        }
        let entry = self.tables.remove(&key).expect("checked above");
        // Snapshots may still share the entry; hand the caller its own copy.
        let rel = match Arc::try_unwrap(entry) {
            Ok(e) => e.rel,
            Err(shared) => shared.rel.clone(),
        };
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        Ok(rel)
    }

    /// `ALTER TABLE old RENAME TO new` (the second half of the drop/alter
    /// union-by-update implementation, Table 4/5).
    pub fn rename_table(&mut self, old: &str, new: &str) -> Result<()> {
        let (okey, nkey) = (norm(old), norm(new));
        if self.tables.contains_key(&nkey) {
            return Err(StorageError::TableExists(new.to_string()));
        }
        if !self.tables.contains_key(&okey) {
            return Err(StorageError::NoSuchTable(old.to_string()));
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_rename(&okey, &nkey))?;
        }
        let e = self.tables.remove(&okey).expect("checked above");
        self.tables.insert(nkey.clone(), e);
        // A pending in-place-mutation image must follow the table to its
        // new name, or the mutation silently vanishes on replay.
        if let Some(d) = self.durable.as_mut() {
            for n in d.dirty.iter_mut() {
                if *n == okey {
                    *n = nkey.clone();
                }
            }
        }
        self.maybe_autocommit_publish();
        Ok(())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&norm(name))
    }

    pub fn entry(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(&norm(name))
            .map(|e| e.as_ref())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Mutable entry access. Conservatively drops the table's statistics:
    /// the caller may mutate rows, and stale sketches are worse for the
    /// optimizer than none. Use [`Catalog::analyze`] to re-collect.
    ///
    /// On a durable catalog this also marks the table *dirty*: in-place
    /// mutations cannot be logged physically, so the table's full
    /// after-image is appended to the WAL at the next commit point.
    pub fn entry_mut(&mut self, name: &str) -> Result<&mut TableEntry> {
        let key = norm(name);
        if !self.tables.contains_key(&key) {
            return Err(StorageError::NoSuchTable(name.to_string()));
        }
        if let Some(d) = self.durable.as_mut() {
            if !d.dirty.contains(&key) {
                d.dirty.push(key.clone());
            }
        }
        let e = self.table_mut(&key).expect("checked above");
        e.stats = None;
        // The caller may mutate rows in place; cached tries would silently
        // index the old contents.
        e.tries.clear();
        Ok(e)
    }

    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.entry(name).map(|e| &e.rel)
    }

    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.entry_mut(name).map(|e| &mut e.rel)
    }

    /// `TRUNCATE TABLE` — the paper's per-iteration cleanup of intermediate
    /// results ("the intermediate result of Q_i is cleaned up by the
    /// truncate table clause", appendix). Drops indexes too, since they
    /// index nothing afterwards.
    pub fn truncate(&mut self, name: &str) -> Result<()> {
        if !self.contains(name) {
            return Err(StorageError::NoSuchTable(name.to_string()));
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_truncate(&norm(name)))?;
        }
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = None;
        e.rel.truncate();
        e.indexes.clear();
        e.tries.clear();
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        Ok(())
    }

    /// Bulk insert, logging per `policy`.
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Row>, policy: WalPolicy) -> Result<()> {
        self.wal.log_insert(policy, &rows);
        // Validate arity *before* logging durably: a record must never hit
        // the WAL for a mutation that then fails to apply.
        let expected = self.relation(name)?.schema().arity();
        if let Some(r) = rows.iter().find(|r| r.len() != expected) {
            return Err(StorageError::ArityMismatch { expected, got: r.len() });
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_insert(&norm(name), &rows))?;
        }
        aio_metrics::global()
            .engine
            .relation_bytes_total
            .add(rows.len() as u64 * crate::relation::approx_row_bytes(expected));
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = None;
        // Inserts invalidate sorted order; a real engine maintains the
        // B-tree incrementally, we rebuild lazily on next use instead.
        e.indexes.clear();
        e.tries.clear();
        let out = e.rel.extend(rows);
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        out
    }

    /// Apply a logical edge-delta batch: append `adds`, remove `dels` by
    /// full-row match (multiset, first occurrence). The IVM ingestion path:
    /// one `EdgeDelta` WAL record of size O(|delta|) instead of a full
    /// after-image. Rows in `dels` absent from the table are ignored, so
    /// replaying the same record is idempotent on the add/remove pairing.
    /// Returns the number of rows actually removed.
    pub fn apply_delta(
        &mut self,
        name: &str,
        adds: Vec<Row>,
        dels: Vec<Row>,
        policy: WalPolicy,
    ) -> Result<usize> {
        self.wal.log_insert(policy, &adds);
        self.wal.log_insert(policy, &dels);
        // Validate arity *before* the durable log, as insert_rows does.
        let expected = self.relation(name)?.schema().arity();
        if let Some(r) = adds.iter().chain(dels.iter()).find(|r| r.len() != expected) {
            return Err(StorageError::ArityMismatch { expected, got: r.len() });
        }
        if self.durable.is_some() {
            self.wal_append(wal::enc_edge_delta(&norm(name), &adds, &dels))?;
        }
        aio_metrics::hooks::ivm_base_delta(adds.len() as u64, dels.len() as u64);
        let e = self.entry_mut_keep_stats(name)?;
        e.stats = None;
        e.indexes.clear();
        e.tries.clear();
        // Adds land before deletes so a batch that inserts and deletes the
        // same row nets out (insert-then-delete is a no-op).
        e.rel.extend(adds)?;
        let removed = e.rel.remove_rows(&dels);
        self.refresh_size_gauges();
        self.maybe_autocommit_publish();
        Ok(removed)
    }

    /// Build (or rebuild) a sorted index on `cols`. Leaves statistics
    /// intact — indexing does not change row contents.
    pub fn build_index(&mut self, name: &str, cols: &[usize]) -> Result<()> {
        let e = self.entry_mut_keep_stats(name)?;
        if e.indexes.iter().any(|i| i.covers(cols)) {
            return Ok(());
        }
        let idx = SortedIndex::build(&e.rel, cols);
        e.indexes.push(idx);
        Ok(())
    }

    /// A sorted index covering exactly `cols`, if one was built.
    pub fn index_on(&self, name: &str, cols: &[usize]) -> Option<&SortedIndex> {
        self.tables
            .get(&norm(name))
            .and_then(|e| e.indexes.iter().find(|i| i.covers(cols)))
    }

    /// The trie for `name[cols]`, building and caching it on a miss. Works
    /// through `&self` (interior mutability) so plan execution can build
    /// lazily; any mutation of the table drops the cache.
    pub fn trie_for(&self, name: &str, cols: &[usize]) -> Result<std::sync::Arc<TrieIndex>> {
        let e = self.entry(name)?;
        Ok(e.tries.get_or_build(&e.rel, cols))
    }

    /// The cached trie covering exactly `cols`, if one was built and has
    /// not been invalidated since.
    pub fn trie_on(&self, name: &str, cols: &[usize]) -> Option<std::sync::Arc<TrieIndex>> {
        self.tables.get(&norm(name)).and_then(|e| e.tries.cached(cols))
    }

    /// Eagerly build (or rebuild) the trie on `cols` — the warm-up path
    /// benchmarks use; lazy builds via [`Catalog::trie_for`] are the norm.
    pub fn build_trie(&mut self, name: &str, cols: &[usize]) -> Result<()> {
        let e = self.entry_mut_keep_stats(name)?;
        e.tries.get_or_build(&e.rel, cols);
        Ok(())
    }

    /// All table names (normalized), sorted for determinism.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    // -- MVCC generations --------------------------------------------------

    /// The committed-generation counter. Bumped at every commit point:
    /// auto-commits (any mutating method outside a transaction), explicit
    /// commits, fixpoint-iteration commits, run begin/end, checkpoints.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Is a transaction open (durable WAL transaction, or the in-memory
    /// equivalent)? While open, mutations do not publish generations —
    /// readers keep seeing the pre-transaction state until the commit.
    pub fn in_txn(&self) -> bool {
        match &self.durable {
            Some(d) => d.in_txn,
            None => self.mem_txn,
        }
    }

    /// Turn on MVCC publication: every commit point from here on publishes
    /// a read-only snapshot of this catalog into the returned
    /// [`GenerationHub`], which readers pin via [`GenerationHub::pin`].
    /// The hub is primed with the current state; calling again returns the
    /// existing hub. Catalogs without a hub pay nothing (one `Option`
    /// check per commit point).
    pub fn enable_mvcc(&mut self) -> Arc<GenerationHub> {
        if let Some(h) = &self.hub {
            return Arc::clone(h);
        }
        let hub = Arc::new(GenerationHub::new(Snapshot {
            gen: self.gen,
            catalog: self.fork_readonly(),
        }));
        self.hub = Some(Arc::clone(&hub));
        hub
    }

    /// A read-only fork: shares every table entry with this catalog
    /// (copy-on-write protects it from future writer mutations), carries
    /// the same generation number, and has no durable log, no hub and a
    /// fresh cost-model WAL. O(tables), independent of row counts.
    pub fn fork_readonly(&self) -> Catalog {
        Catalog {
            tables: self.tables.clone(),
            wal: Wal::new(),
            durable: None,
            gen: self.gen,
            hub: None,
            mem_txn: false,
        }
    }

    /// A commit point: bump the generation and, when MVCC is on, publish
    /// the new committed state.
    fn bump_generation(&mut self) {
        self.gen += 1;
        if let Some(hub) = &self.hub {
            hub.publish(Snapshot {
                gen: self.gen,
                catalog: self.fork_readonly(),
            });
        }
    }

    /// Auto-commit boundary at the end of every mutating method: outside a
    /// transaction each mutation is its own committed generation (matching
    /// the durable WAL's auto-commit records); inside one, the commit
    /// publishes instead.
    fn maybe_autocommit_publish(&mut self) {
        if !self.in_txn() {
            self.bump_generation();
        }
    }

    // -- durability -------------------------------------------------------

    /// Whether this catalog writes a durable WAL.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable-log handle, for counters and paths.
    pub fn durability(&self) -> Option<&Durability> {
        self.durable.as_ref()
    }

    /// Attach a durable log (done by `recover::open_catalog` after replay;
    /// mutations from here on are logged).
    pub fn attach_durability(&mut self, d: Durability) {
        self.durable = Some(d);
    }

    /// Append one record; outside a transaction this is its own committed,
    /// synced transaction (auto-commit).
    fn wal_append(&mut self, payload: Vec<u8>) -> Result<()> {
        let Some(d) = self.durable.as_ref() else {
            return Ok(());
        };
        let in_txn = d.in_txn;
        if !in_txn {
            // Straggler in-place mutations commit together with this record.
            self.wal_flush_dirty()?;
        }
        let d = self.durable.as_mut().expect("checked above");
        d.append_record(&payload)?;
        if !in_txn {
            d.append_record(&wal::enc_commit(&CommitKind::Auto))?;
            d.sync_wal()?;
        }
        Ok(())
    }

    /// Turn every dirty table into a `ReplaceRows` after-image. Tables
    /// dropped since they were dirtied are skipped (the drop record already
    /// covers them).
    fn wal_flush_dirty(&mut self) -> Result<()> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        let names = std::mem::take(&mut d.dirty);
        for n in names {
            if let Some(e) = self.tables.get(&n) {
                d.append_record(&wal::enc_replace_rows(&n, e.rel.rows()))?;
            }
        }
        Ok(())
    }

    /// Start an explicit WAL transaction: mutations accumulate un-synced
    /// until the next commit marker. Used by the PSM loop (a whole
    /// iteration is one transaction) and by bulk loaders. On an in-memory
    /// catalog the flag still groups mutations into one MVCC generation.
    pub fn wal_begin_txn(&mut self) {
        match self.durable.as_mut() {
            Some(d) => d.in_txn = true,
            None => self.mem_txn = true,
        }
    }

    fn wal_commit(&mut self, kind: CommitKind, close: bool) -> Result<(u64, u64)> {
        let out = if self.durable.is_some() {
            let d = self.durable.as_ref().expect("checked above");
            let before = (d.records_appended(), d.bytes_appended());
            self.wal_flush_dirty()?;
            let d = self.durable.as_mut().expect("checked above");
            d.append_record(&wal::enc_commit(&kind))?;
            d.sync_wal()?;
            if close {
                d.in_txn = false;
            }
            (d.records_appended() - before.0, d.bytes_appended() - before.1)
        } else {
            if close {
                self.mem_txn = false;
            }
            (0, 0)
        };
        // Every commit marker — including the iteration commits that leave
        // the run transaction open — is an MVCC generation boundary.
        self.bump_generation();
        Ok(out)
    }

    /// Commit and close an explicit transaction. Returns (records, bytes)
    /// appended by the commit (dirty images + marker).
    pub fn wal_commit_txn(&mut self) -> Result<(u64, u64)> {
        self.wal_commit(CommitKind::Auto, true)
    }

    /// Iteration-boundary commit emitted by the PSM fixpoint loop:
    /// `iters_done` iterations of `rec`'s recursion are now durable
    /// (0 = the init queries). Leaves the run's transaction open.
    pub fn wal_commit_iter(&mut self, rec: &str, iters_done: u64) -> Result<(u64, u64)> {
        self.wal_commit(CommitKind::Iter { rec: norm(rec), iters_done }, false)
    }

    /// A with+ statement is starting: durably record enough context (SQL
    /// text + parameter bindings) to resume it after a crash, then open its
    /// transaction.
    pub fn wal_run_begin(&mut self, rec: &str, sql: &str, params: &[(String, Value)]) -> Result<()> {
        if self.durable.is_some() {
            self.wal_flush_dirty()?;
            let d = self.durable.as_mut().expect("checked above");
            d.append_record(&wal::enc_run_begin(&norm(rec), sql, params))?;
            d.append_record(&wal::enc_commit(&CommitKind::Auto))?;
            d.sync_wal()?;
        }
        // The pre-run state commits here (stragglers flush durably above);
        // publish it, then open the run's transaction so the fixpoint's
        // mutations stay invisible until the first iteration commit.
        self.bump_generation();
        self.wal_begin_txn();
        Ok(())
    }

    /// The with+ statement finished (or aborted): commit its trailing
    /// mutations and mark the run complete so recovery won't offer it for
    /// resumption.
    pub fn wal_run_end(&mut self, rec: &str) -> Result<()> {
        self.wal_commit(CommitKind::RunEnd { rec: norm(rec) }, true).map(|_| ())
    }

    /// Write snapshot generation `seq+1`, start a fresh WAL generation and
    /// delete the previous generation's files.
    ///
    /// Crash-safe ordering: tmp-write → fsync → rename → new WAL (synced)
    /// → delete old files. A crash anywhere leaves either the old
    /// generation intact or both generations present — recovery picks the
    /// newest *valid* snapshot, so no window loses data.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats> {
        let Some(d) = self.durable.as_ref() else {
            return Err(StorageError::Invalid("checkpoint: catalog is not durable".into()));
        };
        if d.in_txn {
            return Err(StorageError::Invalid(
                "checkpoint: WAL transaction in progress".into(),
            ));
        }
        let old_seq = d.seq();
        let next = old_seq + 1;
        let dir = d.dir().to_string();
        let vfs = d.vfs();
        let started = std::time::Instant::now();
        let bytes = snapshot::encode_snapshot(next, self);
        let fin = snapshot::snapshot_file(&dir, next);
        let tmp = format!("{fin}.tmp");
        let io = |op: &str, p: &str, e: std::io::Error| StorageError::Io(format!("{op} {p}: {e}"));
        vfs.write(&tmp, &bytes).map_err(|e| io("write", &tmp, e))?;
        vfs.sync(&tmp).map_err(|e| io("sync", &tmp, e))?;
        vfs.rename(&tmp, &fin).map_err(|e| io("rename", &tmp, e))?;
        wal::init_wal(&vfs, &dir, next)?;
        // The old generation is now garbage; removal failures are harmless
        // (recovery always prefers the newest valid snapshot).
        let _ = vfs.remove(&wal::wal_file(&dir, old_seq));
        let _ = vfs.remove(&snapshot::snapshot_file(&dir, old_seq));
        let d = self.durable.as_mut().expect("checked above");
        d.set_seq(next);
        // In-place mutations up to here are inside the snapshot.
        d.dirty.clear();
        aio_metrics::hooks::checkpoint(bytes.len() as u64, started.elapsed().as_millis() as u64);
        // A checkpoint is a commit point: same content, new generation.
        self.bump_generation();
        Ok(CheckpointStats {
            seq: next,
            bytes: bytes.len() as u64,
            tables: self.tables.len(),
        })
    }

    /// Refresh the catalog-footprint gauges (row count and estimated bytes
    /// across all tables). O(tables), called after structural mutations.
    fn refresh_size_gauges(&self) {
        if !aio_metrics::enabled() {
            return;
        }
        let (mut rows, mut bytes) = (0u64, 0u64);
        for e in self.tables.values() {
            rows += e.rel.len() as u64;
            bytes += e.rel.approx_bytes();
        }
        aio_metrics::hooks::catalog_size(rows, bytes);
    }

    /// Row-for-row equality of the visible contents (names, temp flags,
    /// schemas, primary keys, rows in order). Indexes, statistics and WAL
    /// state are ignored — this is the equivalence the recovery tests
    /// assert.
    pub fn same_content(&self, other: &Catalog) -> bool {
        let (a, b) = (self.names(), other.names());
        if a != b {
            return false;
        }
        a.iter().all(|n| {
            let (x, y) = (
                self.entry(n).expect("listed name"),
                other.entry(n).expect("listed name"),
            );
            x.temp == y.temp
                && x.rel.schema() == y.rel.schema()
                && x.rel.pk() == y.rel.pk()
                && x.rel.rows() == y.rel.rows()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{edge_schema, node_schema};
    use crate::row;

    #[test]
    fn create_get_drop_roundtrip() {
        let mut c = Catalog::new();
        c.create_table("E", Relation::new(edge_schema())).unwrap();
        assert!(c.contains("e"), "names are case-insensitive");
        assert!(matches!(
            c.create_table("e", Relation::new(edge_schema())),
            Err(StorageError::TableExists(_))
        ));
        c.drop_table("E").unwrap();
        assert!(!c.contains("E"));
        assert!(c.drop_table("E").is_err());
    }

    #[test]
    fn rename_moves_entry() {
        let mut c = Catalog::new();
        c.create_temp("V_new", Relation::new(node_schema())).unwrap();
        c.create_table("V", Relation::new(node_schema())).unwrap();
        c.drop_table("V").unwrap();
        c.rename_table("V_new", "V").unwrap();
        assert!(c.contains("V"));
        assert!(!c.contains("V_new"));
    }

    #[test]
    fn rename_refuses_to_clobber() {
        let mut c = Catalog::new();
        c.create_table("A", Relation::new(node_schema())).unwrap();
        c.create_table("B", Relation::new(node_schema())).unwrap();
        assert!(c.rename_table("A", "B").is_err());
    }

    #[test]
    fn insert_logs_and_invalidates_indexes() {
        let mut c = Catalog::new();
        c.create_temp("T", Relation::new(node_schema())).unwrap();
        c.insert_rows("T", vec![row![1, 1.0], row![2, 2.0]], WalPolicy::Light)
            .unwrap();
        assert_eq!(c.relation("T").unwrap().len(), 2);
        assert!(c.wal.bytes_written() > 0);
        c.build_index("T", &[0]).unwrap();
        assert!(c.index_on("T", &[0]).is_some());
        c.insert_rows("T", vec![row![3, 3.0]], WalPolicy::None).unwrap();
        assert!(c.index_on("T", &[0]).is_none(), "insert invalidates index");
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut c = Catalog::new();
        c.create_temp("T", Relation::new(node_schema())).unwrap();
        c.insert_rows("T", vec![row![1, 1.0]], WalPolicy::None).unwrap();
        c.build_index("T", &[0]).unwrap();
        c.truncate("T").unwrap();
        assert!(c.relation("T").unwrap().is_empty());
        assert!(c.index_on("T", &[0]).is_none());
    }

    #[test]
    fn insert_and_truncate_invalidate_tries() {
        let mut c = Catalog::new();
        c.create_temp("T", Relation::new(edge_schema())).unwrap();
        c.insert_rows("T", vec![row![1, 2, 1.0], row![2, 3, 1.0]], WalPolicy::None)
            .unwrap();
        // lazy build through &Catalog, then a cache hit
        let t = c.trie_for("T", &[0, 1]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(c.trie_on("T", &[0, 1]).is_some());
        c.insert_rows("T", vec![row![3, 1, 1.0]], WalPolicy::None).unwrap();
        assert!(c.trie_on("T", &[0, 1]).is_none(), "insert invalidates tries");
        assert_eq!(c.trie_for("T", &[0, 1]).unwrap().len(), 3, "rebuilt over new rows");
        c.truncate("T").unwrap();
        assert!(c.trie_on("T", &[0, 1]).is_none(), "truncate invalidates tries");
        // in-place mutation via entry_mut drops the cache too
        c.insert_rows("T", vec![row![1, 2, 1.0]], WalPolicy::None).unwrap();
        c.build_trie("T", &[1, 0]).unwrap();
        assert!(c.trie_on("T", &[1, 0]).is_some());
        let _ = c.entry_mut("T").unwrap();
        assert!(c.trie_on("T", &[1, 0]).is_none(), "entry_mut invalidates tries");
        c.drop_table("T").unwrap();
        assert!(c.trie_on("T", &[0, 1]).is_none(), "drop removes the table's tries");
        assert!(c.trie_for("T", &[0, 1]).is_err());
    }

    #[test]
    fn apply_delta_adds_removes_and_invalidates() {
        let mut c = Catalog::new();
        c.create_table("E", Relation::new(edge_schema())).unwrap();
        c.insert_rows("E", vec![row![1, 2, 1.0], row![2, 3, 1.0]], WalPolicy::None)
            .unwrap();
        c.build_index("E", &[0]).unwrap();
        let gen_before = c.generation();
        let removed = c
            .apply_delta(
                "E",
                vec![row![3, 4, 1.0]],
                vec![row![1, 2, 1.0], row![9, 9, 9.0]],
                WalPolicy::None,
            )
            .unwrap();
        assert_eq!(removed, 1, "absent delete rows are ignored");
        let mut got: Vec<(i64, i64)> = c
            .relation("E")
            .unwrap()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 3), (3, 4)]);
        assert!(c.index_on("E", &[0]).is_none(), "delta invalidates indexes");
        assert!(c.generation() > gen_before, "delta is a commit point");
        // arity is validated up front
        assert!(c
            .apply_delta("E", vec![row![1]], vec![], WalPolicy::None)
            .is_err());
    }

    #[test]
    fn temp_flag_tracked() {
        let mut c = Catalog::new();
        c.create_table("base", Relation::new(node_schema())).unwrap();
        c.create_temp("tmp", Relation::new(node_schema())).unwrap();
        assert!(!c.entry("base").unwrap().temp);
        assert!(c.entry("tmp").unwrap().temp);
    }
}
