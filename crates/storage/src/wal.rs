//! Write-ahead logging: the simulated cost model *and* the durable log.
//!
//! Two distinct things live here, deliberately side by side:
//!
//! 1. [`Wal`] — the paper's *cost model*. Section 7 observes that "even
//!    though RDBMSs can bypass the redo-log for temporary tables, it still
//!    needs to log", and attributes part of the inter-system performance gap
//!    to logging/IO. We model logging as *honest work*: every logged insert
//!    serializes the rows into a byte buffer (variable-length encoding, as a
//!    real redo record would), and the buffer is recycled in fixed-size
//!    chunks to bound memory. There are no sleeps or fudge factors — the
//!    cost is the encode itself. Profiles choose a [`WalPolicy`].
//!
//! 2. The *durable* WAL ([`WalRecord`], [`Durability`]) — an actual
//!    length+CRC32-framed redo log written through the [`Vfs`] trait, giving
//!    the catalog crash recovery. Records are grouped into transactions by
//!    [`WalRecord::Commit`] markers; the PSM fixpoint loop emits a
//!    `Commit(Iter)` at every iteration boundary so an interrupted with+
//!    run can resume from the last completed iteration (see
//!    `crates/storage/src/recover.rs`).
//!
//! ## Durable frame format
//!
//! ```text
//! file      := magic "AIOWAL01" frame*
//! frame     := len:u32le crc:u32le payload[len]      (crc = CRC32/IEEE of payload)
//! payload   := tag:u8 record-specific fields (see `codec`)
//! ```
//!
//! Replay stops at the first frame whose length is insane, whose bytes run
//! past EOF (torn append) or whose CRC mismatches (bit rot); everything
//! after it — and any record group not terminated by a `Commit` — is
//! discarded, which is exactly the write-ahead contract: a transaction is
//! durable iff its commit frame is fully on disk.

use crate::error::{Result, StorageError};
use crate::relation::Row;
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;
use crate::vfs::Vfs;
use std::sync::Arc;

/// How much logging an operation incurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalPolicy {
    /// No logging at all (direct-path insert).
    None,
    /// Log only a compact record per row (temp tables).
    Light,
    /// Log the full before/after images (in-place updates of base tables).
    Full,
}

/// Chunk size after which the in-memory log buffer is "flushed" (reset).
const FLUSH_CHUNK: usize = 1 << 20;

/// An in-memory redo-log simulator.
#[derive(Debug, Default)]
pub struct Wal {
    buf: Vec<u8>,
    /// Total bytes ever encoded (monotone; survives flushes).
    bytes_written: u64,
    /// Number of simulated flushes.
    flushes: u64,
    records: u64,
}

impl Wal {
    pub fn new() -> Self {
        Wal::default()
    }

    /// Log an insert of `rows` under `policy`.
    pub fn log_insert(&mut self, policy: WalPolicy, rows: &[Row]) {
        match policy {
            WalPolicy::None => {}
            WalPolicy::Light => {
                for r in rows {
                    self.encode_row(r);
                }
            }
            WalPolicy::Full => {
                for r in rows {
                    // before-image tombstone + after-image
                    self.buf.push(0xFF);
                    self.encode_row(r);
                    self.encode_row(r);
                }
            }
        }
        self.maybe_flush();
    }

    /// Log an in-place update (before and after images).
    pub fn log_update(&mut self, policy: WalPolicy, before: &[Value], after: &[Value]) {
        if policy == WalPolicy::None {
            return;
        }
        self.encode_values(before);
        self.encode_values(after);
        self.records += 1;
        self.maybe_flush();
    }

    fn encode_row(&mut self, row: &Row) {
        self.encode_values(row);
        self.records += 1;
    }

    fn encode_values(&mut self, vals: &[Value]) {
        self.buf.push(vals.len() as u8);
        for v in vals {
            match v {
                Value::Null => self.buf.push(0),
                Value::Int(i) => {
                    self.buf.push(1);
                    self.buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    self.buf.push(2);
                    self.buf.extend_from_slice(&f.to_le_bytes());
                }
                Value::Text(s) => {
                    self.buf.push(3);
                    let b = s.as_bytes();
                    self.buf
                        .extend_from_slice(&(b.len() as u32).to_le_bytes());
                    self.buf.extend_from_slice(b);
                }
            }
        }
    }

    fn maybe_flush(&mut self) {
        if self.buf.len() >= FLUSH_CHUNK {
            self.bytes_written += self.buf.len() as u64;
            self.buf.clear();
            self.flushes += 1;
        }
    }

    /// Total bytes encoded so far (flushed + pending).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written + self.buf.len() as u64
    }

    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    /// Forget everything (new experiment run).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.bytes_written = 0;
        self.flushes = 0;
        self.records = 0;
    }
}

// ---------------------------------------------------------------------------
// Durable WAL
// ---------------------------------------------------------------------------

/// Magic prefix of every durable WAL file (name + format version).
pub const WAL_MAGIC: &[u8; 8] = b"AIOWAL01";

/// Path of WAL generation `seq` under `dir`.
pub fn wal_file(dir: &str, seq: u64) -> String {
    format!("{dir}/wal.{seq}")
}

/// CRC32 (IEEE, as used by zip/png), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a transaction committed — `Auto` for standalone catalog mutations,
/// `Iter` at each PSM fixpoint iteration boundary, `RunEnd` when a with+
/// statement finishes (successfully or not).
#[derive(Clone, Debug, PartialEq)]
pub enum CommitKind {
    Auto,
    Iter { rec: String, iters_done: u64 },
    RunEnd { rec: String },
}

/// One durable redo record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Table creation carrying its full initial contents (`replace` mirrors
    /// `Catalog::create_or_replace`).
    CreateTable {
        name: String,
        temp: bool,
        replace: bool,
        schema: Schema,
        pk: Option<Vec<usize>>,
        rows: Vec<Row>,
    },
    Insert { table: String, rows: Vec<Row> },
    Truncate { table: String },
    Drop { table: String },
    Rename { old: String, new: String },
    /// Full after-image of a table mutated in place (`relation_mut` /
    /// `entry_mut` callers like union-by-update cannot be logged
    /// physically, so dirty tables are re-imaged at commit points).
    ReplaceRows { table: String, rows: Vec<Row> },
    /// A with+ statement started: enough context (SQL text + parameter
    /// bindings) to re-compile and resume it after a crash.
    RunBegin {
        rec: String,
        sql: String,
        params: Vec<(String, Value)>,
    },
    Commit(CommitKind),
    /// A batch of edge-level mutations applied to a base table: `adds` are
    /// appended, `dels` removed by full-row match (multiset, first match).
    /// Logged logically — unlike `ReplaceRows` this stays O(|delta|), which
    /// is the whole point of incremental view maintenance.
    EdgeDelta {
        table: String,
        adds: Vec<Row>,
        dels: Vec<Row>,
    },
}

/// Byte codec shared by WAL frames and snapshots.
pub(crate) mod codec {
    use super::*;

    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 varint: integers dominate graph workloads (edge endpoints),
    /// and small ids cost 1–3 bytes instead of a fixed 8. Used for row
    /// arity and (zigzag-mapped) `Value::Int` payloads.
    pub fn put_varu(buf: &mut Vec<u8>, mut v: u64) {
        while v >= 0x80 {
            buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        buf.push(v as u8);
    }

    /// Zigzag map so small negative ints stay small: 0,-1,1,-2 → 0,1,2,3.
    pub fn zigzag(i: i64) -> u64 {
        ((i << 1) ^ (i >> 63)) as u64
    }

    pub fn unzigzag(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }

    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Null => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                put_varu(buf, zigzag(*i));
            }
            Value::Float(f) => {
                buf.push(2);
                buf.extend_from_slice(&f.to_le_bytes());
            }
            Value::Text(s) => {
                buf.push(3);
                put_str(buf, s);
            }
        }
    }

    pub fn put_rows(buf: &mut Vec<u8>, rows: &[Row]) {
        put_u32(buf, rows.len() as u32);
        for r in rows {
            put_varu(buf, r.len() as u64);
            for v in r.iter() {
                put_value(buf, v);
            }
        }
    }

    pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
        let cols = schema.columns();
        put_u32(buf, cols.len() as u32);
        for c in cols {
            match &c.qualifier {
                Some(q) => {
                    buf.push(1);
                    put_str(buf, q);
                }
                None => buf.push(0),
            }
            put_str(buf, &c.name);
            buf.push(match c.ty {
                DataType::Int => 0,
                DataType::Float => 1,
                DataType::Text => 2,
                DataType::Any => 3,
            });
        }
    }

    pub fn put_pk(buf: &mut Vec<u8>, pk: Option<&[usize]>) {
        match pk {
            None => buf.push(0),
            Some(cols) => {
                buf.push(1);
                put_u32(buf, cols.len() as u32);
                for &c in cols {
                    put_u32(buf, c as u32);
                }
            }
        }
    }

    /// Bounds-checked little-endian reader; every failure is a reason
    /// string so corruption reports say *what* was wrong.
    pub struct Dec<'a> {
        b: &'a [u8],
        pos: usize,
    }

    impl<'a> Dec<'a> {
        pub fn new(b: &'a [u8]) -> Self {
            Dec { b, pos: 0 }
        }

        pub fn done(&self) -> bool {
            self.pos == self.b.len()
        }

        /// Bytes not yet consumed (sanity bounds for count fields).
        pub fn remaining(&self) -> usize {
            self.b.len() - self.pos
        }

        pub fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
            if self.b.len() - self.pos < n {
                return Err(format!(
                    "truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.b.len() - self.pos
                ));
            }
            let s = &self.b[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub fn u8(&mut self) -> std::result::Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        pub fn u32(&mut self) -> std::result::Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        pub fn u64(&mut self) -> std::result::Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        pub fn varu(&mut self) -> std::result::Result<u64, String> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let b = self.u8()?;
                if shift > 63 {
                    return Err("varint longer than 64 bits".to_string());
                }
                v |= ((b & 0x7F) as u64) << shift;
                if b & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }

        pub fn str(&mut self) -> std::result::Result<String, String> {
            let n = self.u32()? as usize;
            let bytes = self.take(n)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
        }

        pub fn value(&mut self) -> std::result::Result<Value, String> {
            match self.u8()? {
                0 => Ok(Value::Null),
                1 => Ok(Value::Int(unzigzag(self.varu()?))),
                2 => Ok(Value::Float(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))),
                3 => Ok(Value::Text(self.str()?.into())),
                t => Err(format!("unknown value tag {t}")),
            }
        }

        pub fn rows(&mut self) -> std::result::Result<Vec<Row>, String> {
            let n = self.u32()? as usize;
            // A row is ≥ 5 bytes (arity + one tag); reject insane counts
            // before allocating.
            if n > self.b.len() - self.pos {
                return Err(format!("row count {n} exceeds remaining bytes"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let arity = self.varu()? as usize;
                if arity > self.b.len() - self.pos {
                    return Err(format!("row arity {arity} exceeds remaining bytes"));
                }
                let mut vals = Vec::with_capacity(arity);
                for _ in 0..arity {
                    vals.push(self.value()?);
                }
                rows.push(vals.into_boxed_slice());
            }
            Ok(rows)
        }

        pub fn schema(&mut self) -> std::result::Result<Schema, String> {
            let n = self.u32()? as usize;
            if n > self.b.len() - self.pos {
                return Err(format!("column count {n} exceeds remaining bytes"));
            }
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                let qualifier = match self.u8()? {
                    0 => None,
                    1 => Some(self.str()?),
                    t => return Err(format!("bad qualifier flag {t}")),
                };
                let name = self.str()?;
                let ty = match self.u8()? {
                    0 => DataType::Int,
                    1 => DataType::Float,
                    2 => DataType::Text,
                    3 => DataType::Any,
                    t => return Err(format!("unknown data type tag {t}")),
                };
                cols.push(Column { qualifier, name, ty });
            }
            Ok(Schema::new(cols))
        }

        pub fn pk(&mut self) -> std::result::Result<Option<Vec<usize>>, String> {
            match self.u8()? {
                0 => Ok(None),
                1 => {
                    let n = self.u32()? as usize;
                    if n > self.b.len() - self.pos {
                        return Err(format!("pk column count {n} exceeds remaining bytes"));
                    }
                    let mut cols = Vec::with_capacity(n);
                    for _ in 0..n {
                        cols.push(self.u32()? as usize);
                    }
                    Ok(Some(cols))
                }
                t => Err(format!("bad pk flag {t}")),
            }
        }
    }
}

// Record tags. New tags may be appended; existing ones are format-frozen.
const TAG_CREATE: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_TRUNCATE: u8 = 3;
const TAG_DROP: u8 = 4;
const TAG_RENAME: u8 = 5;
const TAG_REPLACE: u8 = 6;
const TAG_RUN_BEGIN: u8 = 7;
const TAG_COMMIT: u8 = 8;
const TAG_EDGE_DELTA: u8 = 9;

/// Encoders take borrowed views so logging never clones row data.
pub fn enc_create_table(
    name: &str,
    temp: bool,
    replace: bool,
    schema: &Schema,
    pk: Option<&[usize]>,
    rows: &[Row],
) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(TAG_CREATE);
    codec::put_str(&mut b, name);
    b.push(temp as u8);
    b.push(replace as u8);
    codec::put_schema(&mut b, schema);
    codec::put_pk(&mut b, pk);
    codec::put_rows(&mut b, rows);
    b
}

pub fn enc_insert(table: &str, rows: &[Row]) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(TAG_INSERT);
    codec::put_str(&mut b, table);
    codec::put_rows(&mut b, rows);
    b
}

pub fn enc_truncate(table: &str) -> Vec<u8> {
    let mut b = vec![TAG_TRUNCATE];
    codec::put_str(&mut b, table);
    b
}

pub fn enc_drop(table: &str) -> Vec<u8> {
    let mut b = vec![TAG_DROP];
    codec::put_str(&mut b, table);
    b
}

pub fn enc_rename(old: &str, new: &str) -> Vec<u8> {
    let mut b = vec![TAG_RENAME];
    codec::put_str(&mut b, old);
    codec::put_str(&mut b, new);
    b
}

pub fn enc_replace_rows(table: &str, rows: &[Row]) -> Vec<u8> {
    let mut b = vec![TAG_REPLACE];
    codec::put_str(&mut b, table);
    codec::put_rows(&mut b, rows);
    b
}

pub fn enc_run_begin(rec: &str, sql: &str, params: &[(String, Value)]) -> Vec<u8> {
    let mut b = vec![TAG_RUN_BEGIN];
    codec::put_str(&mut b, rec);
    codec::put_str(&mut b, sql);
    codec::put_u32(&mut b, params.len() as u32);
    for (k, v) in params {
        codec::put_str(&mut b, k);
        codec::put_value(&mut b, v);
    }
    b
}

pub fn enc_edge_delta(table: &str, adds: &[Row], dels: &[Row]) -> Vec<u8> {
    let mut b = vec![TAG_EDGE_DELTA];
    codec::put_str(&mut b, table);
    codec::put_rows(&mut b, adds);
    codec::put_rows(&mut b, dels);
    b
}

pub fn enc_commit(kind: &CommitKind) -> Vec<u8> {
    let mut b = vec![TAG_COMMIT];
    match kind {
        CommitKind::Auto => b.push(0),
        CommitKind::Iter { rec, iters_done } => {
            b.push(1);
            codec::put_str(&mut b, rec);
            codec::put_u64(&mut b, *iters_done);
        }
        CommitKind::RunEnd { rec } => {
            b.push(2);
            codec::put_str(&mut b, rec);
        }
    }
    b
}

/// Decode one frame payload back into a [`WalRecord`].
pub fn decode_record(payload: &[u8]) -> std::result::Result<WalRecord, String> {
    let mut d = codec::Dec::new(payload);
    let rec = match d.u8()? {
        TAG_CREATE => {
            let name = d.str()?;
            let temp = d.u8()? != 0;
            let replace = d.u8()? != 0;
            let schema = d.schema()?;
            let pk = d.pk()?;
            let rows = d.rows()?;
            WalRecord::CreateTable { name, temp, replace, schema, pk, rows }
        }
        TAG_INSERT => WalRecord::Insert { table: d.str()?, rows: d.rows()? },
        TAG_TRUNCATE => WalRecord::Truncate { table: d.str()? },
        TAG_DROP => WalRecord::Drop { table: d.str()? },
        TAG_RENAME => WalRecord::Rename { old: d.str()?, new: d.str()? },
        TAG_REPLACE => WalRecord::ReplaceRows { table: d.str()?, rows: d.rows()? },
        TAG_RUN_BEGIN => {
            let rec = d.str()?;
            let sql = d.str()?;
            let n = d.u32()? as usize;
            let mut params = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                params.push((d.str()?, d.value()?));
            }
            WalRecord::RunBegin { rec, sql, params }
        }
        TAG_COMMIT => WalRecord::Commit(match d.u8()? {
            0 => CommitKind::Auto,
            1 => CommitKind::Iter { rec: d.str()?, iters_done: d.u64()? },
            2 => CommitKind::RunEnd { rec: d.str()? },
            t => return Err(format!("unknown commit kind {t}")),
        }),
        TAG_EDGE_DELTA => WalRecord::EdgeDelta {
            table: d.str()?,
            adds: d.rows()?,
            dels: d.rows()?,
        },
        t => return Err(format!("unknown record tag {t}")),
    };
    if !d.done() {
        return Err("trailing garbage after record".to_string());
    }
    Ok(rec)
}

/// Wrap `payload` in a `len + crc` frame and append it to `buf`.
pub fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Largest frame payload replay will accept; anything bigger is treated as
/// a corrupt length field.
pub const MAX_FRAME: usize = 1 << 30;

/// Result of scanning a WAL file: every decodable frame up to the first
/// invalid one, each tagged with the file offset *after* its frame.
#[derive(Debug)]
pub struct WalScan {
    pub records: Vec<(usize, WalRecord)>,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

/// Scan a whole WAL file (including magic). Never panics: any structural
/// problem terminates the scan with a reason instead.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalScan {
            records: Vec::new(),
            torn: Some("bad or missing WAL magic".to_string()),
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return WalScan {
                records,
                torn: Some(format!("torn frame header at offset {pos}")),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME || bytes.len() - pos - 8 < len {
            return WalScan {
                records,
                torn: Some(format!("torn frame body at offset {pos} (len {len})")),
            };
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return WalScan {
                records,
                torn: Some(format!("crc mismatch at offset {pos}")),
            };
        }
        match decode_record(payload) {
            Ok(rec) => {
                pos += 8 + len;
                records.push((pos, rec));
            }
            Err(e) => {
                return WalScan {
                    records,
                    torn: Some(format!("undecodable record at offset {pos}: {e}")),
                };
            }
        }
    }
    WalScan { records, torn: None }
}

/// Create (or reset) WAL generation `seq` as an empty, synced, magic-only
/// file.
pub fn init_wal(vfs: &Arc<dyn Vfs>, dir: &str, seq: u64) -> Result<()> {
    let path = wal_file(dir, seq);
    vfs.write(&path, WAL_MAGIC)
        .map_err(|e| StorageError::Io(format!("write {path}: {e}")))?;
    vfs.sync(&path)
        .map_err(|e| StorageError::Io(format!("sync {path}: {e}")))
}

/// The durable half of the catalog: an open WAL generation plus the
/// bookkeeping that turns catalog mutations into committed redo records.
/// Owned by [`crate::Catalog`] when the database was opened via
/// `recover::open_catalog` (in-memory catalogs simply have none).
#[derive(Debug)]
pub struct Durability {
    vfs: Arc<dyn Vfs>,
    dir: String,
    seq: u64,
    /// Inside an explicit transaction (a with+ run or a caller batch):
    /// suppress per-mutation auto-commits until the next commit marker.
    pub(crate) in_txn: bool,
    /// Tables mutated in place since the last commit point; re-imaged as
    /// `ReplaceRows` when the enclosing transaction commits.
    pub(crate) dirty: Vec<String>,
    records_appended: u64,
    bytes_appended: u64,
    syncs: u64,
}

impl Durability {
    pub fn new(vfs: Arc<dyn Vfs>, dir: impl Into<String>, seq: u64) -> Self {
        Durability {
            vfs,
            dir: dir.into(),
            seq,
            in_txn: false,
            dirty: Vec::new(),
            records_appended: 0,
            bytes_appended: 0,
            syncs: 0,
        }
    }

    pub fn dir(&self) -> &str {
        &self.dir
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub(crate) fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    pub fn wal_path(&self) -> String {
        wal_file(&self.dir, self.seq)
    }

    /// Records appended through this handle since open (commits included).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    pub(crate) fn append_record(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        append_frame(&mut frame, payload);
        let path = self.wal_path();
        self.vfs
            .append(&path, &frame)
            .map_err(|e| StorageError::Io(format!("append {path}: {e}")))?;
        self.records_appended += 1;
        self.bytes_appended += frame.len() as u64;
        aio_metrics::hooks::wal_append(frame.len() as u64);
        Ok(())
    }

    pub(crate) fn sync_wal(&mut self) -> Result<()> {
        let path = self.wal_path();
        self.vfs
            .sync(&path)
            .map_err(|e| StorageError::Io(format!("sync {path}: {e}")))?;
        self.syncs += 1;
        aio_metrics::hooks::wal_sync();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn none_policy_writes_nothing() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::None, &[row![1, 2.0]]);
        assert_eq!(w.bytes_written(), 0);
        assert_eq!(w.records(), 0);
    }

    #[test]
    fn light_policy_encodes_rows() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::Light, &[row![1, 2.0], row![2, 3.0]]);
        assert_eq!(w.records(), 2);
        assert!(w.bytes_written() > 0);
    }

    #[test]
    fn full_policy_writes_more_than_light() {
        let rows = vec![row![1, 2, 0.5]; 100];
        let mut light = Wal::new();
        light.log_insert(WalPolicy::Light, &rows);
        let mut full = Wal::new();
        full.log_insert(WalPolicy::Full, &rows);
        assert!(full.bytes_written() > light.bytes_written());
    }

    #[test]
    fn flushes_bound_memory() {
        let mut w = Wal::new();
        let rows = vec![row![1i64, 2i64, 0.25f64]; 10_000];
        for _ in 0..20 {
            w.log_insert(WalPolicy::Light, &rows);
        }
        assert!(w.flushes() > 0);
        assert!(w.bytes_written() > FLUSH_CHUNK as u64);
    }

    #[test]
    fn update_logs_both_images_and_reset_clears() {
        let mut w = Wal::new();
        w.log_update(WalPolicy::Full, &[1i64.into()], &[2i64.into()]);
        assert_eq!(w.records(), 1);
        w.reset();
        assert_eq!(w.bytes_written(), 0);
    }

    #[test]
    fn text_values_encoded() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::Light, &[row![1, "label-a"]]);
        assert!(w.bytes_written() as usize > "label-a".len());
    }

    // -- durable WAL --

    use crate::relation::edge_schema;

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn roundtrip(payload: Vec<u8>) -> WalRecord {
        decode_record(&payload).expect("decode")
    }

    #[test]
    fn records_roundtrip() {
        let rows = vec![row![1, 2, 0.5], row![3, 4, 1.5]];
        let rec = roundtrip(enc_create_table("E", false, true, &edge_schema(), Some(&[0, 1]), &rows));
        match &rec {
            WalRecord::CreateTable { name, temp, replace, schema, pk, rows: r } => {
                assert_eq!(name, "E");
                assert!(!temp && *replace);
                assert_eq!(schema, &edge_schema());
                assert_eq!(pk.as_deref(), Some(&[0usize, 1][..]));
                assert_eq!(r, &rows);
            }
            other => panic!("wrong record {other:?}"),
        }
        assert_eq!(
            roundtrip(enc_insert("t", &[row![Value::Null, "x"]])),
            WalRecord::Insert { table: "t".into(), rows: vec![row![Value::Null, "x"]] }
        );
        assert_eq!(roundtrip(enc_truncate("t")), WalRecord::Truncate { table: "t".into() });
        assert_eq!(roundtrip(enc_drop("t")), WalRecord::Drop { table: "t".into() });
        assert_eq!(
            roundtrip(enc_rename("a", "b")),
            WalRecord::Rename { old: "a".into(), new: "b".into() }
        );
        assert_eq!(
            roundtrip(enc_replace_rows("t", &[row![7]])),
            WalRecord::ReplaceRows { table: "t".into(), rows: vec![row![7]] }
        );
        let params = vec![("c".to_string(), Value::Float(0.85))];
        assert_eq!(
            roundtrip(enc_run_begin("pr", "with+ ...", &params)),
            WalRecord::RunBegin { rec: "pr".into(), sql: "with+ ...".into(), params }
        );
        for kind in [
            CommitKind::Auto,
            CommitKind::Iter { rec: "pr".into(), iters_done: 3 },
            CommitKind::RunEnd { rec: "pr".into() },
        ] {
            assert_eq!(roundtrip(enc_commit(&kind)), WalRecord::Commit(kind));
        }
        assert_eq!(
            roundtrip(enc_edge_delta("E", &[row![1, 2, 1.0]], &[row![3, 4, 0.5], row![5, 6, 2.0]])),
            WalRecord::EdgeDelta {
                table: "E".into(),
                adds: vec![row![1, 2, 1.0]],
                dels: vec![row![3, 4, 0.5], row![5, 6, 2.0]],
            }
        );
        assert_eq!(
            roundtrip(enc_edge_delta("E", &[], &[])),
            WalRecord::EdgeDelta { table: "E".into(), adds: vec![], dels: vec![] }
        );
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_frames() {
        let mut file = WAL_MAGIC.to_vec();
        append_frame(&mut file, &enc_truncate("a"));
        append_frame(&mut file, &enc_truncate("b"));
        let clean = scan_wal(&file);
        assert_eq!(clean.records.len(), 2);
        assert!(clean.torn.is_none());
        assert_eq!(clean.records.last().unwrap().0, file.len());

        // Torn suffix: drop the last byte.
        let torn = scan_wal(&file[..file.len() - 1]);
        assert_eq!(torn.records.len(), 1);
        assert!(torn.torn.is_some());

        // Bit flip in the second payload.
        let mut flipped = file.clone();
        let n = flipped.len();
        flipped[n - 2] ^= 0x40;
        let bad = scan_wal(&flipped);
        assert_eq!(bad.records.len(), 1);
        assert!(bad.torn.unwrap().contains("crc mismatch"));

        // Bad magic.
        let scan = scan_wal(b"NOTAWAL!");
        assert!(scan.records.is_empty() && scan.torn.is_some());
        // Empty file.
        let scan = scan_wal(b"");
        assert!(scan.records.is_empty() && scan.torn.is_some());
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut p = enc_drop("t");
        p.push(9);
        assert!(decode_record(&p).is_err());
        assert!(decode_record(&[99]).is_err());
        assert!(decode_record(&[]).is_err());
    }
}
