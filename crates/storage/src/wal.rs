//! Simulated write-ahead logging.
//!
//! Section 7 observes that "even though RDBMSs can bypass the redo-log for
//! temporary tables, it still needs to log", and attributes part of the
//! inter-system performance gap to logging/IO. We model logging as *honest
//! work*: every logged insert serializes the rows into a byte buffer
//! (variable-length encoding, as a real redo record would), and the buffer is
//! recycled in fixed-size chunks to bound memory. There are no sleeps or
//! fudge factors — the cost is the encode itself.
//!
//! Profiles choose a [`WalPolicy`]:
//! * `None` — Oracle-style direct-path insert (`/*+APPEND*/` hint) bypasses
//!   redo entirely.
//! * `Light` — temp-table minimal logging (DB2 / non-durable PostgreSQL).
//! * `Full` — ordinary logged DML (used by the `update from` / `merge`
//!   union-by-update implementations that mutate base rows in place).

use crate::relation::Row;
use crate::value::Value;

/// How much logging an operation incurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalPolicy {
    /// No logging at all (direct-path insert).
    None,
    /// Log only a compact record per row (temp tables).
    Light,
    /// Log the full before/after images (in-place updates of base tables).
    Full,
}

/// Chunk size after which the in-memory log buffer is "flushed" (reset).
const FLUSH_CHUNK: usize = 1 << 20;

/// An in-memory redo-log simulator.
#[derive(Debug, Default)]
pub struct Wal {
    buf: Vec<u8>,
    /// Total bytes ever encoded (monotone; survives flushes).
    bytes_written: u64,
    /// Number of simulated flushes.
    flushes: u64,
    records: u64,
}

impl Wal {
    pub fn new() -> Self {
        Wal::default()
    }

    /// Log an insert of `rows` under `policy`.
    pub fn log_insert(&mut self, policy: WalPolicy, rows: &[Row]) {
        match policy {
            WalPolicy::None => {}
            WalPolicy::Light => {
                for r in rows {
                    self.encode_row(r);
                }
            }
            WalPolicy::Full => {
                for r in rows {
                    // before-image tombstone + after-image
                    self.buf.push(0xFF);
                    self.encode_row(r);
                    self.encode_row(r);
                }
            }
        }
        self.maybe_flush();
    }

    /// Log an in-place update (before and after images).
    pub fn log_update(&mut self, policy: WalPolicy, before: &[Value], after: &[Value]) {
        if policy == WalPolicy::None {
            return;
        }
        self.encode_values(before);
        self.encode_values(after);
        self.records += 1;
        self.maybe_flush();
    }

    fn encode_row(&mut self, row: &Row) {
        self.encode_values(row);
        self.records += 1;
    }

    fn encode_values(&mut self, vals: &[Value]) {
        self.buf.push(vals.len() as u8);
        for v in vals {
            match v {
                Value::Null => self.buf.push(0),
                Value::Int(i) => {
                    self.buf.push(1);
                    self.buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    self.buf.push(2);
                    self.buf.extend_from_slice(&f.to_le_bytes());
                }
                Value::Text(s) => {
                    self.buf.push(3);
                    let b = s.as_bytes();
                    self.buf
                        .extend_from_slice(&(b.len() as u32).to_le_bytes());
                    self.buf.extend_from_slice(b);
                }
            }
        }
    }

    fn maybe_flush(&mut self) {
        if self.buf.len() >= FLUSH_CHUNK {
            self.bytes_written += self.buf.len() as u64;
            self.buf.clear();
            self.flushes += 1;
        }
    }

    /// Total bytes encoded so far (flushed + pending).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written + self.buf.len() as u64
    }

    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    /// Forget everything (new experiment run).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.bytes_written = 0;
        self.flushes = 0;
        self.records = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn none_policy_writes_nothing() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::None, &[row![1, 2.0]]);
        assert_eq!(w.bytes_written(), 0);
        assert_eq!(w.records(), 0);
    }

    #[test]
    fn light_policy_encodes_rows() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::Light, &[row![1, 2.0], row![2, 3.0]]);
        assert_eq!(w.records(), 2);
        assert!(w.bytes_written() > 0);
    }

    #[test]
    fn full_policy_writes_more_than_light() {
        let rows = vec![row![1, 2, 0.5]; 100];
        let mut light = Wal::new();
        light.log_insert(WalPolicy::Light, &rows);
        let mut full = Wal::new();
        full.log_insert(WalPolicy::Full, &rows);
        assert!(full.bytes_written() > light.bytes_written());
    }

    #[test]
    fn flushes_bound_memory() {
        let mut w = Wal::new();
        let rows = vec![row![1i64, 2i64, 0.25f64]; 10_000];
        for _ in 0..20 {
            w.log_insert(WalPolicy::Light, &rows);
        }
        assert!(w.flushes() > 0);
        assert!(w.bytes_written() > FLUSH_CHUNK as u64);
    }

    #[test]
    fn update_logs_both_images_and_reset_clears() {
        let mut w = Wal::new();
        w.log_update(WalPolicy::Full, &[1i64.into()], &[2i64.into()]);
        assert_eq!(w.records(), 1);
        w.reset();
        assert_eq!(w.bytes_written(), 0);
    }

    #[test]
    fn text_values_encoded() {
        let mut w = Wal::new();
        w.log_insert(WalPolicy::Light, &[row![1, "label-a"]]);
        assert!(w.bytes_written() as usize > "label-a".len());
    }
}
