//! Chrome Trace Event exporter.
//!
//! Emits the JSON object format (`{"traceEvents":[...]}`) with complete
//! (`"ph":"X"`) events for spans and instant (`"ph":"i"`) events, which both
//! `chrome://tracing` and Perfetto (ui.perfetto.dev) load directly.
//! Timestamps and durations are microseconds per the format spec; span
//! nesting is reconstructed by the viewer from begin/duration on a single
//! thread track.

use crate::{json::escape, EventRecord, SpanRecord, Trace};

fn args_json(fields: &[(crate::FieldKey, crate::FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), v.to_json()));
    }
    out.push('}');
    out
}

fn span_event(s: &SpanRecord) -> String {
    // Use microsecond floats to keep sub-µs spans visible.
    let ts = s.start_ns as f64 / 1000.0;
    let dur = s.dur_ns() as f64 / 1000.0;
    format!(
        "{{\"name\":\"{}\",\"cat\":\"aio\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":1,\"args\":{}}}",
        escape(s.name),
        args_json(&s.fields)
    )
}

fn instant_event(e: &EventRecord) -> String {
    let ts = e.at_ns as f64 / 1000.0;
    format!(
        "{{\"name\":\"{}\",\"cat\":\"aio\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{}}}",
        escape(e.name),
        args_json(&e.fields)
    )
}

/// Render a [`Trace`] as a Chrome Trace Event JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<String> = Vec::with_capacity(trace.spans.len() + trace.events.len());
    // Sort spans by start so the viewer's nesting heuristic always sees
    // parents before children (completion order is children-first).
    let mut spans: Vec<&SpanRecord> = trace.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    events.extend(spans.iter().map(|s| span_event(s)));
    events.extend(trace.events.iter().map(instant_event));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{json, Tracer};

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let t = Tracer::new();
        {
            let g = t.span("run");
            g.field("algo", "pr");
            {
                let _i = t.span("iteration");
                t.event("converged", []);
            }
        }
        let doc = t.finish().to_chrome_json();
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, ["X", "X", "i"]);
        // parent sorted before child despite closing after it
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("run"));
        for e in events {
            assert!(e.get("ts").unwrap().as_num().is_some());
            assert!(e.get("args").is_some());
        }
    }
}
