//! Minimal JSON support: string escaping, a recursive-descent parser, and
//! the JSONL schema check used by tests and the CI trace smoke-step.
//!
//! This exists because the workspace is offline (no serde); the parser
//! handles the JSON this crate itself emits plus enough of the general
//! grammar to be honest (nested containers, escapes, exponents).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer: tracks comma placement and escapes keys
/// and string values so emitters never hand-roll `format!` JSON. Shared by
/// the trace sinks and by `aio-metrics`' Prometheus/JSON exports.
pub struct JsonObj {
    buf: String,
    any: bool,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Append a pre-serialized JSON value (object, array, number...).
    pub fn raw(mut self, key: &str, value: &str) -> JsonObj {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub fn f64(mut self, key: &str, value: f64) -> JsonObj {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

/// Incremental JSON array writer, companion to [`JsonObj`].
pub struct JsonArr {
    buf: String,
    any: bool,
}

impl JsonArr {
    pub fn new() -> JsonArr {
        JsonArr {
            buf: String::from("["),
            any: false,
        }
    }

    /// Append a pre-serialized JSON value as the next element.
    pub fn push_raw(&mut self, item: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(item);
    }

    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArr {
    fn default() -> JsonArr {
        JsonArr::new()
    }
}

/// A parsed JSON value. Numbers are kept as f64 (adequate for validation).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance one whole UTF-8 char
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Validate trace JSONL as emitted by [`crate::Trace::to_jsonl`] /
/// [`crate::sink::JsonlSink`]: every non-empty line parses as an object with
/// `kind` of `"span"` or `"event"` and the required typed keys. Returns the
/// number of valid records.
pub fn validate_trace_jsonl(input: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: missing \"kind\"", lineno + 1))?;
        let need_num = |key: &str| -> Result<(), String> {
            v.get(key)
                .and_then(Json::as_num)
                .map(|_| ())
                .ok_or(format!("line {}: missing numeric \"{key}\"", lineno + 1))
        };
        let need_str = |key: &str| -> Result<(), String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(|_| ())
                .ok_or(format!("line {}: missing string \"{key}\"", lineno + 1))
        };
        match kind {
            "span" => {
                need_num("id")?;
                need_num("parent")?;
                need_num("depth")?;
                need_num("start_ns")?;
                need_num("end_ns")?;
                need_str("name")?;
            }
            "event" => {
                need_num("span")?;
                need_num("at_ns")?;
                need_str("name")?;
            }
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        }
        if !matches!(v.get("fields"), Some(Json::Obj(_))) {
            return Err(format!("line {}: missing object \"fields\"", lineno + 1));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no records".into());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn obj_and_arr_writers_emit_parseable_json() {
        let mut arr = JsonArr::new();
        arr.push_raw("1");
        arr.push_raw("\"two\"");
        let doc = JsonObj::new()
            .str("s", "a\"b")
            .u64("n", 7)
            .f64("f", 2.5)
            .f64("bad", f64::NAN)
            .raw("list", &arr.finish())
            .raw("empty", &JsonObj::new().finish())
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(7.0));
        assert_eq!(v.get("f").unwrap().as_num(), Some(2.5));
        assert_eq!(v.get("bad"), Some(&Json::Null));
        assert_eq!(v.get("list").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("empty"), Some(&Json::Obj(Default::default())));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} junk").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
    }

    #[test]
    fn validates_good_jsonl_and_rejects_bad() {
        let good = concat!(
            "{\"kind\":\"span\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"x\",\"start_ns\":0,\"end_ns\":5,\"fields\":{}}\n",
            "{\"kind\":\"event\",\"span\":1,\"name\":\"e\",\"at_ns\":3,\"fields\":{\"n\":1}}\n"
        );
        assert_eq!(validate_trace_jsonl(good).unwrap(), 2);
        assert!(validate_trace_jsonl("{\"kind\":\"span\"}").is_err());
        assert!(validate_trace_jsonl("").is_err());
        assert!(validate_trace_jsonl("not json").is_err());
    }
}
