//! # aio-trace — hierarchical span tracing for the all-in-one runtime
//!
//! A dependency-free observability substrate in the spirit of database
//! EXPLAIN ANALYZE and structured span tracing: monotonic-clocked
//! hierarchical [`SpanRecord`]s with typed fields, instant [`EventRecord`]s,
//! and pluggable [`sink::Sink`]s (bounded in-memory ring buffer, streaming
//! JSONL, no-op). A finished [`Trace`] renders as a span tree, exports to
//! the Chrome Trace Event format (loadable in `chrome://tracing` and
//! Perfetto), or serializes to JSONL validated by the built-in minimal JSON
//! parser ([`json`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero-cost when disabled.** Instrumentation sites hold an
//!    `Option<&Tracer>`; `None` costs one branch and allocates nothing.
//!    There is no global registry and no atomics on the hot path.
//! 2. **Spans always close.** [`SpanGuard`] closes its span on drop, so
//!    early returns and `?` propagation cannot leak an open span.
//! 3. **Deterministic modulo timestamps.** Span ids are sequential, fields
//!    keep insertion order, and [`Trace::render_tree`] strips everything
//!    timing-related — so tests can snapshot trace *structure* byte-exactly
//!    while wall-clock numbers vary run to run.

pub mod chrome;
pub mod json;
pub mod sink;

use sink::{RingSink, Sink};
use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

/// A typed span/event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::UInt(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// JSON rendering (strings escaped and quoted).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::Int(v) => v.to_string(),
            FieldValue::UInt(v) => v.to_string(),
            FieldValue::Float(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    format!("\"{v}\"")
                }
            }
            FieldValue::Str(v) => format!("\"{}\"", json::escape(v)),
            FieldValue::Bool(v) => v.to_string(),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A field key: usually a `&'static str`, owned only for dynamic names
/// (e.g. DATALOG predicate names).
pub type FieldKey = Cow<'static, str>;

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Sequential id, starting at 1 (0 means "no parent").
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    pub name: &'static str,
    /// Start offset from the tracer's epoch, nanoseconds (monotonic clock).
    pub start_ns: u64,
    /// End offset from the tracer's epoch, nanoseconds.
    pub end_ns: u64,
    pub fields: Vec<(FieldKey, FieldValue)>,
}

impl SpanRecord {
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A field coerced to u64 (Int/UInt only).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::UInt(v) => Some(*v),
            FieldValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }
}

/// One instant event, attached to the span that was open when it fired.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Id of the enclosing span (0 = fired outside any span).
    pub span: u64,
    pub name: &'static str,
    pub at_ns: u64,
    pub fields: Vec<(FieldKey, FieldValue)>,
}

struct OpenSpan {
    id: u64,
    parent: u64,
    depth: u32,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(FieldKey, FieldValue)>,
}

struct Inner {
    next_id: u64,
    open: Vec<OpenSpan>,
    ring: RingSink,
    // `Send` so a `Tracer`-carrying engine (e.g. a `Database` behind a
    // session layer) can move across threads; the tracer itself stays
    // single-threaded (`RefCell`, not `Sync`)
    extra: Vec<Box<dyn Sink + Send>>,
}

/// The span collector. Hand out `Option<&Tracer>` to instrumentation sites;
/// `None` is the disabled (no-op) configuration.
///
/// Single-threaded by design: the coordinating thread of an execution opens
/// and closes spans; morsel workers never touch the tracer (their effects
/// surface as span fields like `morsels`). This keeps the hot path free of
/// locks and atomics.
pub struct Tracer {
    epoch: Instant,
    inner: RefCell<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// In-memory tracer with the default ring capacity (256k spans).
    pub fn new() -> Tracer {
        Tracer::with_capacity(1 << 18)
    }

    /// In-memory tracer keeping at most `capacity` spans/events (oldest
    /// evicted first).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            epoch: Instant::now(),
            inner: RefCell::new(Inner {
                next_id: 1,
                open: Vec::new(),
                ring: RingSink::new(capacity),
                extra: Vec::new(),
            }),
        }
    }

    /// Attach an additional streaming sink (e.g. [`sink::JsonlSink`]).
    /// Every completed span and event is forwarded to it as it is recorded.
    pub fn add_sink(&self, sink: Box<dyn Sink + Send>) {
        self.inner.borrow_mut().extra.push(sink);
    }

    /// Nanoseconds since this tracer was created (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span; it closes when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let now = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_id;
        inner.next_id += 1;
        let (parent, depth) = match inner.open.last() {
            Some(p) => (p.id, p.depth + 1),
            None => (0, 0),
        };
        inner.open.push(OpenSpan {
            id,
            parent,
            depth,
            name,
            start_ns: now,
            fields: Vec::new(),
        });
        SpanGuard { tracer: self, id }
    }

    /// Record an instant event attached to the innermost open span.
    pub fn event(
        &self,
        name: &'static str,
        fields: impl IntoIterator<Item = (FieldKey, FieldValue)>,
    ) {
        let now = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        let span = inner.open.last().map(|s| s.id).unwrap_or(0);
        let ev = EventRecord {
            span,
            name,
            at_ns: now,
            fields: fields.into_iter().collect(),
        };
        for s in inner.extra.iter_mut() {
            s.on_event(&ev);
        }
        inner.ring.on_event(&ev);
    }

    fn add_field(&self, span_id: u64, key: FieldKey, value: FieldValue) {
        let mut inner = self.inner.borrow_mut();
        if let Some(s) = inner.open.iter_mut().rev().find(|s| s.id == span_id) {
            s.fields.push((key, value));
        }
    }

    fn close(&self, span_id: u64) {
        let now = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        // Guards close in LIFO order; close any forgotten descendants too
        // so nesting stays well-formed even if a guard leaked via mem::forget.
        while let Some(top) = inner.open.last() {
            let done = top.id == span_id;
            let top = inner.open.pop().unwrap();
            let rec = SpanRecord {
                id: top.id,
                parent: top.parent,
                depth: top.depth,
                name: top.name,
                start_ns: top.start_ns,
                end_ns: now,
                fields: top.fields,
            };
            for s in inner.extra.iter_mut() {
                s.on_span(&rec);
            }
            inner.ring.on_span(&rec);
            if done {
                break;
            }
        }
    }

    /// Number of currently open spans (0 once all guards have dropped).
    pub fn open_spans(&self) -> usize {
        self.inner.borrow().open.len()
    }

    /// Finish tracing: force-close any stragglers, flush extra sinks, and
    /// return the collected trace.
    pub fn finish(self) -> Trace {
        {
            let mut inner = self.inner.borrow_mut();
            debug_assert!(inner.open.is_empty(), "finish() with spans still open");
            while let Some(top) = inner.open.pop() {
                let rec = SpanRecord {
                    id: top.id,
                    parent: top.parent,
                    depth: top.depth,
                    name: top.name,
                    start_ns: top.start_ns,
                    end_ns: top.start_ns,
                    fields: top.fields,
                };
                inner.ring.on_span(&rec);
            }
            for s in inner.extra.iter_mut() {
                s.flush();
            }
        }
        let inner = self.inner.into_inner();
        inner.ring.into_trace()
    }
}

/// RAII handle for an open span: add fields while it lives, closes on drop.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    id: u64,
}

impl SpanGuard<'_> {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a typed field to this span.
    pub fn field(&self, key: impl Into<FieldKey>, value: impl Into<FieldValue>) {
        self.tracer.add_field(self.id, key.into(), value.into());
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.close(self.id);
    }
}

/// Open a span only when a tracer is present (the common instrumentation
/// idiom: `let _g = maybe_span(tracer, "join");`).
pub fn maybe_span<'t>(tracer: Option<&'t Tracer>, name: &'static str) -> Option<SpanGuard<'t>> {
    tracer.map(|t| t.span(name))
}

/// A finished, immutable trace: spans in completion order plus events in
/// emission order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
}

impl Trace {
    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Children of `parent_id` (0 = roots), ordered by open order (id).
    pub fn children_of(&self, parent_id: u64) -> Vec<&SpanRecord> {
        let mut out: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == parent_id)
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Copy with all timestamps zeroed (structure-only comparisons).
    pub fn normalized(&self) -> Trace {
        let mut t = self.clone();
        for s in t.spans.iter_mut() {
            s.start_ns = 0;
            s.end_ns = 0;
        }
        for e in t.events.iter_mut() {
            e.at_ns = 0;
        }
        t
    }

    /// Structural well-formedness: unique ids, existing parents, child
    /// intervals inside parent intervals, consistent depths. Returns the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut by_id: HashMap<u64, &SpanRecord> = HashMap::new();
        for s in &self.spans {
            if s.id == 0 {
                return Err("span id 0 is reserved".into());
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
            }
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        for s in &self.spans {
            if s.parent == 0 {
                if s.depth != 0 {
                    return Err(format!("root span {} has depth {}", s.id, s.depth));
                }
                continue;
            }
            let Some(p) = by_id.get(&s.parent) else {
                return Err(format!("span {} has unknown parent {}", s.id, s.parent));
            };
            if s.depth != p.depth + 1 {
                return Err(format!(
                    "span {} depth {} but parent {} depth {}",
                    s.id, s.depth, p.id, p.depth
                ));
            }
            if s.parent >= s.id {
                return Err(format!("span {} opened before its parent {}", s.id, s.parent));
            }
            if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                return Err(format!(
                    "span {} [{}, {}] escapes parent {} [{}, {}]",
                    s.id, s.start_ns, s.end_ns, p.id, p.start_ns, p.end_ns
                ));
            }
        }
        for e in &self.events {
            if e.span != 0 && !by_id.contains_key(&e.span) {
                return Err(format!("event {} attached to unknown span {}", e.name, e.span));
            }
        }
        Ok(())
    }

    /// Deterministic span-tree rendering: names + non-timing fields, no
    /// timestamps. Timing-valued fields (keys ending in `_ns`) are dropped
    /// so the output is byte-stable across runs.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.children_of(0) {
            self.render_node(root, "", true, true, &mut out);
        }
        out
    }

    fn render_node(&self, s: &SpanRecord, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
        let (tee, pad) = if is_root {
            ("", "")
        } else if is_last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        out.push_str(prefix);
        out.push_str(tee);
        out.push_str(s.name);
        for (k, v) in &s.fields {
            if k.ends_with("_ns") {
                continue;
            }
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let kids = self.children_of(s.id);
        let child_prefix = format!("{prefix}{pad}");
        for (i, c) in kids.iter().enumerate() {
            self.render_node(c, &child_prefix, i + 1 == kids.len(), false, out);
        }
    }

    /// Serialize to JSONL (one JSON object per line; spans then events).
    /// The schema is what [`json::validate_trace_jsonl`] checks.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&sink::span_jsonl(s));
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&sink::event_jsonl(e));
            out.push('\n');
        }
        out
    }

    /// Export to the Chrome Trace Event format (Perfetto-compatible).
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        let t = Tracer::new();
        {
            let root = t.span("run");
            root.field("algo", "pr");
            {
                let it = t.span("iteration");
                it.field("iter", 0u64);
                {
                    let j = t.span("join");
                    j.field("rows_out", 42u64);
                    j.field("build_ns", 1234u64);
                }
                t.event("converged", [(FieldKey::from("delta"), FieldValue::UInt(0))]);
            }
        }
        t.finish()
    }

    #[test]
    fn spans_nest_and_close() {
        let tr = toy_trace();
        assert_eq!(tr.spans.len(), 3);
        tr.validate().unwrap();
        // completion order: join, iteration, run
        assert_eq!(tr.spans[0].name, "join");
        assert_eq!(tr.spans[2].name, "run");
        assert_eq!(tr.spans[0].depth, 2);
        assert_eq!(tr.spans[2].parent, 0);
        assert_eq!(tr.events.len(), 1);
        assert_eq!(tr.events[0].name, "converged");
    }

    #[test]
    fn guard_closes_on_early_return() {
        let t = Tracer::new();
        let f = || -> Result<(), ()> {
            let _g = t.span("outer");
            let _h = t.span("inner");
            Err(())? // early exit; both guards must still close
        };
        let _ = f();
        assert_eq!(t.open_spans(), 0);
        let tr = t.finish();
        assert_eq!(tr.spans.len(), 2);
        tr.validate().unwrap();
    }

    #[test]
    fn render_tree_is_deterministic_and_timestamp_free() {
        let a = toy_trace().render_tree();
        let b = toy_trace().render_tree();
        assert_eq!(a, b);
        assert!(a.contains("run algo=pr"));
        assert!(a.contains("└── iteration iter=0"));
        assert!(a.contains("join rows_out=42"));
        assert!(!a.contains("build_ns"), "timing fields stripped:\n{a}");
    }

    #[test]
    fn normalized_traces_compare_equal_across_runs() {
        assert_eq!(toy_trace().normalized(), toy_trace().normalized());
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let none: Option<&Tracer> = None;
        assert!(maybe_span(none, "x").is_none());
    }

    #[test]
    fn validate_catches_bad_parent() {
        let mut tr = toy_trace();
        tr.spans[0].parent = 99;
        assert!(tr.validate().is_err());
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let t = Tracer::with_capacity(2);
        for _ in 0..5 {
            let _g = t.span("s");
        }
        let tr = t.finish();
        assert_eq!(tr.spans.len(), 2);
        assert_eq!(tr.spans[0].id, 4);
    }
}
