//! Pluggable trace sinks.
//!
//! The [`Tracer`](crate::Tracer) always records into a bounded [`RingSink`]
//! (so `finish()` can return a [`Trace`](crate::Trace)); additional sinks
//! attached with `add_sink` observe every completed span and event as it is
//! recorded — e.g. [`JsonlSink`] streams newline-delimited JSON to any
//! `Write` destination.

use crate::{EventRecord, SpanRecord};
use std::collections::VecDeque;
use std::io::Write;

/// Observer of completed spans and instant events.
pub trait Sink {
    fn on_span(&mut self, span: &SpanRecord);
    fn on_event(&mut self, event: &EventRecord);
    fn flush(&mut self) {}
}

/// Keeps the most recent `capacity` spans (and events), evicting oldest.
pub struct RingSink {
    capacity: usize,
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            spans: VecDeque::new(),
            events: VecDeque::new(),
        }
    }

    pub fn into_trace(self) -> crate::Trace {
        crate::Trace {
            spans: self.spans.into(),
            events: self.events.into(),
        }
    }
}

impl Sink for RingSink {
    fn on_span(&mut self, span: &SpanRecord) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(span.clone());
    }

    fn on_event(&mut self, event: &EventRecord) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
    }
}

/// Discards everything. Useful as an explicit "measure sink overhead" baseline.
pub struct NullSink;

impl Sink for NullSink {
    fn on_span(&mut self, _: &SpanRecord) {}
    fn on_event(&mut self, _: &EventRecord) {}
}

/// Streams each span/event as one JSON object per line to a `Write`.
///
/// Span lines: `{"kind":"span","id":..,"parent":..,"depth":..,"name":..,
/// "start_ns":..,"end_ns":..,"fields":{...}}`; event lines use
/// `"kind":"event"` with `span`/`at_ns`. [`crate::json::validate_trace_jsonl`]
/// checks exactly this schema.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn on_span(&mut self, span: &SpanRecord) {
        let _ = writeln!(self.out, "{}", span_jsonl(span));
    }

    fn on_event(&mut self, event: &EventRecord) {
        let _ = writeln!(self.out, "{}", event_jsonl(event));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

fn fields_json(fields: &[(crate::FieldKey, crate::FieldValue)]) -> String {
    let mut obj = crate::json::JsonObj::new();
    for (k, v) in fields {
        obj = obj.raw(k, &v.to_json());
    }
    obj.finish()
}

/// One-line JSON for a span (no trailing newline).
pub fn span_jsonl(s: &SpanRecord) -> String {
    crate::json::JsonObj::new()
        .str("kind", "span")
        .u64("id", s.id)
        .u64("parent", s.parent)
        .u64("depth", s.depth as u64)
        .str("name", s.name)
        .u64("start_ns", s.start_ns)
        .u64("end_ns", s.end_ns)
        .raw("fields", &fields_json(&s.fields))
        .finish()
}

/// One-line JSON for an event (no trailing newline).
pub fn event_jsonl(e: &EventRecord) -> String {
    crate::json::JsonObj::new()
        .str("kind", "event")
        .u64("span", e.span)
        .str("name", e.name)
        .u64("at_ns", e.at_ns)
        .raw("fields", &fields_json(&e.fields))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn jsonl_sink_streams_valid_lines() {
        let t = Tracer::new();
        t.add_sink(Box::new(JsonlSink::new(Vec::new())));
        // We can't easily recover the Vec from the boxed sink, so render
        // via Trace::to_jsonl and check the same serializers validate.
        {
            let g = t.span("op");
            g.field("rows", 3u64);
            t.event("tick", []);
        }
        let tr = t.finish();
        let jsonl = tr.to_jsonl();
        crate::json::validate_trace_jsonl(&jsonl).unwrap();
        assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"span\"")));
        assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"event\"")));
    }

    #[test]
    fn escaping_survives_quotes_in_field_values() {
        let t = Tracer::new();
        {
            let g = t.span("op");
            g.field("label", "he said \"hi\"\n");
        }
        let tr = t.finish();
        crate::json::validate_trace_jsonl(&tr.to_jsonl()).unwrap();
    }
}
