//! Positive dialect coverage: corners of the with+ grammar and semantics
//! that the algorithm programs don't happen to exercise.

use aio_algebra::{all_profiles, oracle_like};
use aio_storage::{edge_schema, node_schema, row, Relation, Value};
use aio_withplus::Database;

fn db() -> Database {
    let mut db = Database::new(oracle_like());
    let mut e = Relation::new(edge_schema());
    e.extend([
        row![1, 2, 1.0],
        row![2, 3, 2.0],
        row![3, 4, 3.0],
        row![4, 2, 0.5],
    ])
    .unwrap();
    db.create_table("E", e).unwrap();
    let mut v = Relation::new(node_schema());
    v.extend([row![1, 1.0], row![2, 2.0], row![3, 3.0], row![4, 4.0]])
        .unwrap();
    db.create_table("V", v).unwrap();
    db
}

#[test]
fn multiple_initial_subqueries_union() {
    let mut d = db();
    let out = d
        .execute(
            "with R(ID, vw) as (
               (select V.ID, V.vw from V where V.ID = 1)
               union all
               (select V.ID, V.vw from V where V.ID = 4)
               union all
               (select R.ID, R.vw from R where R.ID < 0))
             select * from R",
        )
        .unwrap();
    assert_eq!(out.relation.len(), 2);
}

#[test]
fn computed_by_on_initial_subquery() {
    // Fig. 4 allows `computed by` on any Q_i, including initial ones
    let mut d = db();
    let out = d
        .execute(
            "with R(ID, deg) as (
               (select D.ID, D.deg from D
                computed by
                  D(ID, deg) as select E.F, count(*) from E group by E.F;)
               union all
               (select R.ID, R.deg from R where R.ID < 0))
             select * from R",
        )
        .unwrap();
        assert_eq!(out.relation.len(), 4);
}

#[test]
fn full_outer_join_in_plain_select() {
    let mut d = db();
    let out = d
        .execute(
            "select coalesce(A.ID, B.ID) as ID, coalesce(B.vw, A.vw) as vw
             from V as A full outer join V as B on A.ID = B.ID",
        )
        .unwrap();
    assert_eq!(out.relation.len(), 4);
}

#[test]
fn case_insensitive_identifiers_and_keywords() {
    let mut d = db();
    let out = d
        .execute("SELECT v.id, MAX(e.EW) FROM v, e WHERE v.id = e.f GROUP BY v.ID")
        .unwrap();
    assert_eq!(out.relation.len(), 4);
}

#[test]
fn string_labels_flow_through() {
    let mut d = db();
    let mut l = Relation::new(aio_storage::Schema::of(&[
        ("ID", aio_storage::DataType::Int),
        ("name", aio_storage::DataType::Text),
    ]));
    l.extend([row![1, "alice"], row![2, "bob"]]).unwrap();
    d.create_table("Names", l).unwrap();
    let out = d
        .execute("select Names.ID from Names where Names.name = 'bob'")
        .unwrap();
    assert_eq!(out.relation.len(), 1);
    assert_eq!(out.relation.rows()[0][0], Value::Int(2));
}

#[test]
fn least_greatest_and_arithmetic_soup() {
    let mut d = db();
    let out = d
        .execute(
            "select V.ID, greatest(least(V.vw * 2, 5.0), 1.5) from V where V.ID <= 2",
        )
        .unwrap();
    let vals: Vec<f64> = out.relation.iter().map(|r| r[1].as_f64().unwrap()).collect();
    assert_eq!(vals, vec![2.0, 4.0]);
}

#[test]
fn profiles_agree_on_a_mixed_query() {
    let sql = "select E.T, sum(E.ew), count(*) from E, V where E.F = V.ID and V.vw >= 1.0 group by E.T";
    let mut base: Option<Vec<Vec<String>>> = None;
    for p in all_profiles() {
        let mut d = Database::new(p.clone());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 2.0], row![1, 3, 4.0]]).unwrap();
        d.create_table("E", e).unwrap();
        let mut v = Relation::new(node_schema());
        v.extend([row![1, 1.0], row![2, 2.0], row![3, 3.0]]).unwrap();
        d.create_table("V", v).unwrap();
        let out = d.execute(sql).unwrap();
        let mut rows: Vec<Vec<String>> = out
            .relation
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        rows.sort();
        match &base {
            None => base = Some(rows),
            Some(b) => assert_eq!(&rows, b, "{}", p.name),
        }
    }
}

#[test]
fn maxrecursion_zero_means_no_recursion() {
    let mut d = db();
    let out = d
        .execute(
            "with R(F, T) as (
               (select E.F, E.T from E)
               union all
               (select R.F, E.T from R, E where R.T = E.F)
               maxrecursion 0)
             select * from R",
        )
        .unwrap();
    assert_eq!(out.relation.len(), 4, "only the initialization ran");
    assert!(out.stats.iterations.is_empty());
}

#[test]
fn final_select_can_aggregate_the_recursive_relation() {
    let mut d = db();
    let out = d
        .execute(
            "with R(F, T) as (
               (select E.F, E.T from E)
               union
               (select R.F, E.T from R, E where R.T = E.F)
               maxrecursion 10)
             select R.F, count(*) from R group by R.F",
        )
        .unwrap();
    // node 1 reaches 2, 3, 4 (and the 2→3→4→2 cycle keeps things finite
    // thanks to union's dedup)
    let from1 = out
        .relation
        .iter()
        .find(|r| r[0].as_int() == Some(1))
        .unwrap()[1]
        .as_int()
        .unwrap();
    assert_eq!(from1, 3);
}

#[test]
fn with_plus_over_empty_tables() {
    let mut d = Database::new(oracle_like());
    d.create_table("E", Relation::new(edge_schema())).unwrap();
    d.create_table("V", Relation::new(node_schema())).unwrap();
    let out = d
        .execute(
            "with R(ID, vw) as (
               (select V.ID, V.vw from V)
               union by update ID
               (select E.T, min(R.vw + E.ew) from R, E where R.ID = E.F group by E.T))
             select * from R",
        )
        .unwrap();
    assert!(out.relation.is_empty());
}

#[test]
fn having_filters_groups() {
    let mut d = db();
    let out = d
        .execute("select E.F, count(*) as deg from E group by E.F having deg >= 1")
        .unwrap();
    assert_eq!(out.relation.len(), 4);
    let out = d
        .execute(
            "select E.T, sum(E.ew) as total from E group by E.T having total > 1.5",
        )
        .unwrap();
    // targets: 2 gets 1.0 + 0.5, 3 gets 2.0, 4 gets 3.0
    assert_eq!(out.relation.len(), 2);
}

#[test]
fn having_without_grouping_rejected() {
    let mut d = db();
    assert!(d
        .execute("select V.ID from V having V.ID > 1")
        .is_err());
}

#[test]
fn having_roundtrips_through_display() {
    use aio_withplus::{Parser, Statement};
    let sql = "select E.F, count(*) as c from E group by E.F having c > 2";
    let first = Parser::parse_statement(sql).unwrap();
    let Statement::Select(s) = &first else { panic!() };
    let second = Parser::parse_statement(&s.to_string()).unwrap();
    assert_eq!(first, second);
}

#[test]
fn having_in_computed_by() {
    // k-core's inner degree filter, HAVING style
    let mut d = db();
    let out = d
        .execute(
            "with CE(F, T, ew) as (
               (select E.F, E.T, E.ew from E)
               union by update
               (select CE.F, CE.T, CE.ew from CE, K as K1, K as K2
                where CE.F = K1.ID and CE.T = K2.ID
                computed by
                  K(ID) as select CE.F from CE group by CE.F having count(*) >= 1;))
             select * from CE",
        )
        .unwrap();
    assert_eq!(out.relation.len(), 4, "every node has out-degree >= 1");
}
