//! Error-path coverage for the with+ engine: every rejection the compiler
//! and runtime can produce, exercised through the public API.

use aio_algebra::oracle_like;
use aio_storage::{edge_schema, node_schema, row, Relation};
use aio_withplus::{Database, WithPlusError};

fn db() -> Database {
    let mut db = Database::new(oracle_like());
    let mut e = Relation::new(edge_schema());
    e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
    db.create_table("E", e).unwrap();
    let mut v = Relation::new(node_schema());
    v.extend([row![1, 0.0], row![2, 0.0], row![3, 0.0]]).unwrap();
    db.create_table("V", v).unwrap();
    db
}

#[test]
fn lexer_errors() {
    let mut d = db();
    for sql in ["select 'open from V", "select : from V", "select a ! b from V"] {
        assert!(matches!(
            d.execute(sql),
            Err(WithPlusError::Parse { .. })
        ), "{sql}");
    }
}

#[test]
fn parser_errors() {
    let mut d = db();
    for sql in [
        "with R as (select 1 from V) select * from R",  // missing columns
        "select from",                                   // missing FROM item
        "select V.ID from V where",                      // dangling WHERE
        "with R(x) as ((select V.ID from V) union by update x (select R.x from R) union all (select V.ID from V)) select * from R",
        "with R(x) as ((select V.ID from V) maxrecursion 99999) select * from R", // out of range
    ] {
        assert!(d.execute(sql).is_err(), "{sql}");
    }
}

#[test]
fn unknown_table_and_column() {
    let mut d = db();
    let err = d.execute("select * from nope").unwrap_err();
    assert!(err.to_string().contains("no such table"), "{err}");
    let err = d.execute("select V.nope from V").unwrap_err();
    assert!(err.to_string().contains("no such column"), "{err}");
}

#[test]
fn ambiguous_column() {
    let mut d = db();
    let err = d
        .execute("select F from E as A, E as B where A.T = B.F")
        .unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn unknown_function_and_unbound_param() {
    let mut d = db();
    let err = d.execute("select frobnicate(V.ID) from V").unwrap_err();
    assert!(err.to_string().contains("unknown function"), "{err}");
    let err = d.execute("select :missing from V").unwrap_err();
    assert!(err.to_string().contains("unbound parameter"), "{err}");
}

#[test]
fn aggregate_of_ungrouped_column() {
    let mut d = db();
    let err = d
        .execute("select E.F, E.T from E group by E.F")
        .unwrap_err();
    assert!(
        err.to_string().contains("neither grouped nor aggregated"),
        "{err}"
    );
}

#[test]
fn union_by_update_arity_and_keys() {
    let mut d = db();
    // key not a column of the recursive relation
    let err = d
        .execute(
            "with R(ID) as ((select V.ID from V) union by update nope (select R.ID from R)) select * from R",
        )
        .unwrap_err();
    assert!(matches!(err, WithPlusError::Restriction(_)), "{err}");
    // arity mismatch between subquery and recursive relation
    let err = d
        .execute(
            "with R(ID, W) as ((select V.ID from V) union all (select R.ID, R.W from R)) select * from R",
        )
        .unwrap_err();
    assert!(matches!(err, WithPlusError::Restriction(_)), "{err}");
}

#[test]
fn non_unique_update_surfaces_at_runtime() {
    // delta with duplicate keys: "we do not allow multiple s to match a
    // single r, since the answer is not unique" (Section 4.1)
    let mut d = db();
    // add a second out-edge from node 1 so the delta repeats key F = 1
    d.catalog
        .relation_mut("E")
        .unwrap()
        .rows_mut()
        .push(row![1, 3, 2.0]);
    let err = d
        .execute(
            "with R(ID, W) as (
               (select V.ID, 0.0 from V)
               union by update ID
               (select E.F, 1.0 * E.T from R, E where R.ID = E.F))
             select * from R",
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("not unique"),
        "duplicate keys in the delta must be rejected: {err}"
    );
}

#[test]
fn subquery_in_disallowed_position() {
    let mut d = db();
    let err = d
        .execute("select V.ID from V where V.ID = 1 or V.ID in (select E.F from E)")
        .unwrap_err();
    assert!(
        err.to_string().contains("top-level WHERE conjuncts"),
        "{err}"
    );
}

#[test]
fn uncorrelated_exists_rejected() {
    let mut d = db();
    let err = d
        .execute("select V.ID from V where exists (select E.F from E)")
        .unwrap_err();
    assert!(err.to_string().contains("correlate"), "{err}");
}

#[test]
fn recursive_relation_name_collision() {
    let mut d = db();
    let err = d
        .execute(
            "with E(F, T) as ((select V.ID, V.ID from V) union all (select E.F, E.T from E)) select * from E",
        )
        .unwrap_err();
    assert!(err.to_string().contains("collides"), "{err}");
}

#[test]
fn division_by_zero_is_an_error_not_a_panic() {
    let mut d = db();
    let err = d.execute("select V.ID / 0 from V").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}
