//! The PSM interpreter: runs a [`CompiledWithPlus`] as the stored procedure
//! of Algorithm 1 — create temp tables, loop materializing `computed by`
//! relations and recursive subqueries, check the per-subquery emptiness
//! conditions `C_i`, apply union / union-by-update, exit on fixpoint or
//! `maxrecursion`, then run the final query.

use crate::ast::UnionMode;
use crate::compile::{CompiledStep, CompiledWithPlus};
use crate::error::{Result, WithPlusError};
use aio_algebra::ops::{self, UbuImpl};
use aio_algebra::{EngineProfile, Evaluator, ExecStats, Plan};
use aio_storage::{Catalog, Column, Relation, Row, Schema};
use aio_trace::Tracer;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// What one recursive subquery did in one iteration: its delta cardinality
/// and the emptiness-condition `C_i` outcome (Algorithm 1 exits when every
/// `C_i` is false).
#[derive(Clone, Debug)]
pub struct SubqueryIterStat {
    /// Tuples this subquery produced this iteration.
    pub delta_rows: usize,
    /// `C_i`: did applying this subquery's delta change R?
    pub changed: bool,
    /// Rows actually inserted or updated by union-by-update (0 for
    /// union/union-all modes, where `delta_rows`/dedup tell the story).
    pub ubu_changed_rows: usize,
}

/// Per-iteration record (drives Fig. 12/13: running time and number of
/// tuples per iteration).
#[derive(Clone, Debug)]
pub struct IterStat {
    /// |R| after this iteration.
    pub r_rows: usize,
    /// Tuples the recursive subqueries produced this iteration.
    pub delta_rows: usize,
    pub elapsed: Duration,
    /// Operator counters attributable to *this* iteration alone
    /// (`RunStats::exec` minus the snapshot taken when it started).
    pub exec: ExecStats,
    /// One entry per recursive subquery, in declaration order.
    pub subqueries: Vec<SubqueryIterStat>,
}

/// Whole-run statistics.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    pub iterations: Vec<IterStat>,
    /// Grand total over the whole run: initialization + every iteration +
    /// the final query (`init_exec` + Σ `iterations[i].exec` + `final_exec`).
    pub exec: ExecStats,
    /// Counters from the initialization subqueries (and their `computed by`
    /// steps) only.
    pub init_exec: ExecStats,
    /// Counters from the final query only. Previously these were
    /// indistinguishable inside `exec`, silently merged with whatever the
    /// last iteration did.
    pub final_exec: ExecStats,
    pub elapsed: Duration,
    /// Bytes the simulated WAL encoded during the run.
    pub wal_bytes: u64,
    /// Peak estimated bytes of any single operator output during the run
    /// (0 when metrics are disabled).
    pub peak_mem_bytes: u64,
    /// Trie/stats-cache and durable-WAL traffic attributed to this query.
    /// The runner only sees evaluator-level peaks; `Database::execute`
    /// fills this from the thread-local attribution counters.
    pub cache: aio_metrics::CacheCounters,
    /// Copy of the recursive relation `R` after each iteration, captured
    /// only when `EngineProfile::capture_snapshots` is set. The testkit
    /// compares these across engines to pin the *first* diverging
    /// iteration instead of only the final answer.
    pub snapshots: Vec<Relation>,
}

/// Result of executing a statement.
#[derive(Debug)]
pub struct QueryResult {
    pub relation: Relation,
    pub stats: RunStats,
}

/// Hard cap when no `maxrecursion` is given (SQL-Server's limit, which the
/// paper adopts).
pub(crate) const DEFAULT_MAX_RECURSION: usize = 32_767;

/// Re-shape a query result to the declared column names of a temp table.
pub(crate) fn rename_to(rel: Relation, names: &[String]) -> Result<Relation> {
    if rel.schema().arity() != names.len() {
        return Err(WithPlusError::Restriction(format!(
            "result has {} columns, expected {} ({})",
            rel.schema().arity(),
            names.len(),
            names.join(", ")
        )));
    }
    let cols = names
        .iter()
        .zip(rel.schema().columns())
        .map(|(n, c)| Column::new(n, c.ty))
        .collect();
    let schema = Schema::new(cols);
    let mut out = Relation::new(schema);
    *out.rows_mut() = rel.into_rows();
    Ok(out)
}

/// Rewrite direct scans of `rec` to scan `replacement` instead, keeping the
/// original name as the alias so qualified references still resolve.
pub(crate) fn rebind_scan(plan: &Plan, rec: &str, replacement: &str) -> Plan {
    let rebox = |p: &Plan| Box::new(rebind_scan(p, rec, replacement));
    match plan {
        Plan::Scan { table, alias } if table.eq_ignore_ascii_case(rec) => Plan::Scan {
            table: replacement.to_string(),
            alias: Some(alias.clone().unwrap_or_else(|| table.clone())),
        },
        Plan::Scan { .. } | Plan::Values(_) => plan.clone(),
        Plan::Select { input, pred } => Plan::Select {
            input: rebox(input),
            pred: pred.clone(),
        },
        Plan::Project { input, items } => Plan::Project {
            input: rebox(input),
            items: items.clone(),
        },
        Plan::Aggregate {
            input,
            group_by,
            items,
        } => Plan::Aggregate {
            input: rebox(input),
            group_by: group_by.clone(),
            items: items.clone(),
        },
        Plan::Window {
            input,
            partition_by,
            items,
        } => Plan::Window {
            input: rebox(input),
            partition_by: partition_by.clone(),
            items: items.clone(),
        },
        Plan::Distinct(input) => Plan::Distinct(rebox(input)),
        Plan::Join {
            left,
            right,
            on,
            residual,
            kind,
        } => Plan::Join {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
            residual: residual.clone(),
            kind: *kind,
        },
        Plan::Product { left, right } => Plan::Product {
            left: rebox(left),
            right: rebox(right),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: rebox(left),
            right: rebox(right),
        },
        Plan::Union { left, right } => Plan::Union {
            left: rebox(left),
            right: rebox(right),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: rebox(left),
            right: rebox(right),
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            imp,
        } => Plan::AntiJoin {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
            imp: *imp,
        },
        Plan::SemiJoin { left, right, on } => Plan::SemiJoin {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
        },
        Plan::MultiwayJoin {
            children,
            vars,
            var_names,
            agm_est,
        } => Plan::MultiwayJoin {
            children: children.iter().map(|c| rebind_scan(c, rec, replacement)).collect(),
            vars: vars.clone(),
            var_names: var_names.clone(),
            agm_est: *agm_est,
        },
    }
}

/// Multiset count of rows in `after` that are not covered by `before` —
/// i.e. how many rows union-by-update inserted or overwrote.
pub(crate) fn changed_row_count(before: &Relation, after: &Relation) -> usize {
    let mut counts: HashMap<&Row, i64> = HashMap::new();
    for r in before.rows() {
        *counts.entry(r).or_insert(0) += 1;
    }
    let mut changed = 0usize;
    for r in after.rows() {
        match counts.get_mut(r) {
            Some(c) if *c > 0 => *c -= 1,
            _ => changed += 1,
        }
    }
    changed
}

/// The runtime for one with+ execution.
pub struct PsmRunner<'a> {
    pub catalog: &'a mut Catalog,
    pub profile: &'a EngineProfile,
    pub ubu_impl: UbuImpl,
    /// temp tables created by this run (dropped afterwards)
    created: Vec<String>,
    index_specs: HashMap<String, Vec<String>>,
    stats: RunStats,
    tracer: Option<&'a Tracer>,
}

impl<'a> PsmRunner<'a> {
    pub fn new(
        catalog: &'a mut Catalog,
        profile: &'a EngineProfile,
        ubu_impl: UbuImpl,
    ) -> Self {
        PsmRunner {
            catalog,
            profile,
            ubu_impl,
            created: Vec::new(),
            index_specs: HashMap::new(),
            stats: RunStats::default(),
            tracer: None,
        }
    }

    /// Record spans for this run: one `query` span per subquery execution
    /// (labelled `init[i]`, `rec[i]`, `<label>.computed.<name>`, `final`)
    /// wrapping the evaluator's per-operator spans, plus one `iteration`
    /// span per loop pass carrying the convergence telemetry.
    pub fn set_tracer(&mut self, tracer: Option<&'a Tracer>) {
        self.tracer = tracer;
    }

    fn eval(&mut self, plan: &Plan, label: &str) -> Result<Relation> {
        let span = aio_trace::maybe_span(self.tracer, "query");
        if let Some(s) = &span {
            s.field("plan", label.to_string());
        }
        let mut ev = Evaluator::with_tracer(self.catalog, self.profile, self.tracer);
        let rel = ev.eval_root(plan)?;
        self.stats.exec.absorb(&ev.stats);
        self.stats.peak_mem_bytes = self.stats.peak_mem_bytes.max(ev.mem_peak());
        if let Some(s) = &span {
            s.field("rows_out", rel.len() as u64);
        }
        Ok(rel)
    }

    /// `CREATE TEMP TABLE name` + `INSERT INTO name SELECT …` with WAL and
    /// index maintenance — the per-step cost of the PSM translation.
    fn materialize(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.catalog.wal.log_insert(self.profile.wal_temp, rel.rows());
        if !self.catalog.contains(name) {
            self.created.push(name.to_string());
        }
        self.catalog.create_or_replace(name, rel, true)?;
        // Under the cost-based optimizer, refresh statistics for the
        // materialized temp table — this is the cheap per-iteration path
        // that keeps the shrinking `__delta_*` working table's sketches
        // current, so per-execution EXPLAIN estimates track the delta.
        if self.profile.optimizer == aio_algebra::Optimizer::Cost {
            let _ = self.catalog.analyze(name);
        }
        self.build_indexes(name)?;
        Ok(())
    }

    fn build_indexes(&mut self, name: &str) -> Result<()> {
        if !self.profile.build_indexes {
            return Ok(());
        }
        let Some(cols) = self.index_specs.get(&name.to_ascii_lowercase()) else {
            return Ok(());
        };
        let col_idx: Vec<usize> = {
            let rel = self.catalog.relation(name)?;
            cols.iter()
                .filter_map(|c| rel.schema().index_of(c).ok())
                .collect()
        };
        for c in col_idx {
            self.catalog.build_index(name, &[c])?;
        }
        Ok(())
    }

    fn run_step_computed(&mut self, step: &CompiledStep, label_prefix: &str) -> Result<()> {
        for (name, cols, plan) in &step.computed {
            let rel = self.eval(plan, &format!("{label_prefix}.computed.{name}"))?;
            let rel = rename_to(rel, cols)?;
            self.materialize(name, rel)?;
        }
        Ok(())
    }

    /// Commit the open transaction at a fixpoint iteration boundary. On a
    /// durable catalog this syncs the WAL; on any catalog it is an MVCC
    /// generation boundary, so pinned snapshot readers watch the fixpoint
    /// converge one committed iteration at a time.
    fn wal_commit_iter_point(&mut self, rec: &str, iters_done: u64) -> Result<()> {
        let span = if self.catalog.is_durable() {
            aio_trace::maybe_span(self.tracer, "wal_append")
        } else {
            None
        };
        let (records, bytes) = self.catalog.wal_commit_iter(rec, iters_done)?;
        if let Some(s) = &span {
            s.field("iters_done", iters_done);
            s.field("records", records);
            s.field("bytes", bytes);
        }
        Ok(())
    }

    /// Execute a compiled with+ statement to completion.
    pub fn run(&mut self, c: &CompiledWithPlus) -> Result<QueryResult> {
        self.run_with(c, None)
    }

    /// Resume an interrupted run: the recursive relation (and, for
    /// semi-naive modes, its working table) were recovered from the WAL
    /// with `completed` fixpoint iterations already durable. Skips the
    /// init queries and continues the loop at iteration `completed`.
    /// Idempotent at the fixpoint: if the run had already converged, the
    /// first resumed iteration produces no change and the loop exits.
    pub fn run_resume(&mut self, c: &CompiledWithPlus, completed: u64) -> Result<QueryResult> {
        self.run_with(c, Some(completed as usize))
    }

    fn run_with(&mut self, c: &CompiledWithPlus, resume: Option<usize>) -> Result<QueryResult> {
        let start = Instant::now();
        let run_span = aio_trace::maybe_span(self.tracer, "psm_run");
        if let Some(s) = &run_span {
            s.field("rec", c.rec_name.clone());
            if let Some(k) = resume {
                s.field("resumed_at", k as u64);
            }
        }
        let wal_before = self.catalog.wal.bytes_written();
        if resume.is_none() && self.catalog.contains(&c.rec_name) {
            return Err(WithPlusError::Restriction(format!(
                "recursive relation {} collides with an existing table",
                c.rec_name
            )));
        }
        if resume.is_some() {
            // The recovered temp tables belong to this run now: register
            // them so cleanup drops them exactly like a fresh run would.
            for name in std::iter::once(c.rec_name.clone())
                .chain(std::iter::once(format!("__delta_{}", c.rec_name)))
                .chain(
                    c.init
                        .iter()
                        .chain(c.recursive.iter())
                        .flat_map(|s| s.computed.iter().map(|(n, _, _)| n.clone())),
                )
            {
                if self.catalog.contains(&name) && !self.created.contains(&name) {
                    self.created.push(name);
                }
            }
        }
        for (t, col) in &c.index_specs {
            self.index_specs
                .entry(t.clone())
                .or_default()
                .push(col.clone());
        }
        // The working table of semi-naive evaluation inherits the recursive
        // relation's index specs.
        if let Some(rec_specs) = self.index_specs.get(&c.rec_name.to_ascii_lowercase()) {
            self.index_specs
                .insert(format!("__delta_{}", c.rec_name.to_ascii_lowercase()), rec_specs.clone());
        }
        // Base tables referenced by join keys get their indexes up front
        // (a real schema would already have them; the paper's PSM builds
        // indexes on the temp tables, Exp-A).
        if self.profile.build_indexes {
            let tables: Vec<String> = self.index_specs.keys().cloned().collect();
            for t in tables {
                if self.catalog.contains(&t) {
                    self.build_indexes(&t)?;
                }
            }
        }

        let result = self.run_inner(c, resume);

        // drop every temp table this run created, even on error
        for t in std::mem::take(&mut self.created) {
            let _ = self.catalog.drop_table(&t);
        }
        self.stats.elapsed = start.elapsed();
        self.stats.wal_bytes = self.catalog.wal.bytes_written() - wal_before;
        let relation = result?;
        Ok(QueryResult {
            relation,
            stats: std::mem::take(&mut self.stats),
        })
    }

    fn run_inner(&mut self, c: &CompiledWithPlus, resume: Option<usize>) -> Result<Relation> {
        let working_name = format!("__delta_{}", c.rec_name);
        let seminaive = matches!(c.union, UnionMode::All | UnionMode::Distinct);

        if let Some(k) = resume {
            // The recursive relation (and for semi-naive modes the working
            // table) must have been recovered; the loop picks up where the
            // last durable iteration commit left off.
            if !self.catalog.contains(&c.rec_name) {
                return Err(WithPlusError::Restriction(format!(
                    "resume: recovered catalog has no relation {}",
                    c.rec_name
                )));
            }
            if seminaive && !self.catalog.contains(&working_name) {
                return Err(WithPlusError::Restriction(format!(
                    "resume: recovered catalog has no working table {working_name}"
                )));
            }
            self.build_indexes(&c.rec_name)?;
            let _ = k;
        } else {
            // --- initialization --------------------------------------------
            let mut init_rel: Option<Relation> = None;
            for (i, step) in c.init.iter().enumerate() {
                let label = format!("init[{i}]");
                self.run_step_computed(step, &label)?;
                let rel = self.eval(&step.plan, &label)?;
                let rel = rename_to(rel, &c.rec_cols)?;
                init_rel = Some(match init_rel {
                    None => rel,
                    Some(acc) => ops::union_all(&acc, &rel)?,
                });
            }
            let mut r0 = init_rel.expect("validated: at least one initial subquery");
            // `union` keeps the recursive relation a set; duplicate rows
            // from the initial subqueries (e.g. multi-edges) must not
            // survive either, per SQL's distinct-union semantics.
            if matches!(c.union, UnionMode::Distinct) {
                r0 = ops::distinct(&r0);
            }
            // union-by-update keys double as the primary key of R
            if let UnionMode::ByUpdate(Some(keys)) = &c.union {
                let pk: Vec<usize> = keys
                    .iter()
                    .map(|k| r0.schema().index_of(k).map_err(WithPlusError::from))
                    .collect::<Result<_>>()?;
                r0.set_pk(Some(pk));
            }
            self.materialize(&c.rec_name, r0)?;
        }

        // resolve union-by-update key positions once
        let ubu_keys: Option<Vec<usize>> = match &c.union {
            UnionMode::ByUpdate(Some(keys)) => Some(
                keys.iter()
                    .map(|k| {
                        self.catalog
                            .relation(&c.rec_name)?
                            .schema()
                            .index_of(k)
                            .map_err(WithPlusError::from)
                    })
                    .collect::<Result<_>>()?,
            ),
            _ => None,
        };

        // --- the loop ------------------------------------------------------
        // For `union all` / `union`, the recursive self-reference binds to
        // the previous iteration's *working table* (SQL'99 / PostgreSQL
        // semi-naive semantics); `computed by` relations and union-by-update
        // queries read the full accumulated R. The working table starts as
        // the initialization result.
        if seminaive && resume.is_none() {
            let w = self.catalog.relation(&c.rec_name)?.clone();
            self.materialize(&working_name, w)?;
        }
        let rec_steps: Vec<CompiledStep> = if seminaive {
            c.recursive
                .iter()
                .map(|s| CompiledStep {
                    computed: s.computed.clone(),
                    plan: rebind_scan(&s.plan, &c.rec_name, &working_name),
                })
                .collect()
        } else {
            c.recursive.clone()
        };

        // Everything counted so far belongs to initialization.
        self.stats.init_exec = self.stats.exec.clone();

        // Durable commit point zero: the init result is on disk before the
        // loop starts, so recovery can resume at iteration 0.
        if resume.is_none() {
            self.wal_commit_iter_point(&c.rec_name, 0)?;
        }

        let max = c.max_recursion.unwrap_or(DEFAULT_MAX_RECURSION);
        let loop_start = Instant::now();
        for it in resume.unwrap_or(0)..max {
            let it_start = Instant::now();
            let exec_at_start = self.stats.exec.clone();
            let it_span = aio_trace::maybe_span(self.tracer, "iteration");
            if let Some(s) = &it_span {
                s.field("iter", it as u64);
            }
            let mut delta_total = 0usize;
            let mut changed = false;
            let mut next_working: Option<Relation> = None;
            let mut subqueries: Vec<SubqueryIterStat> = Vec::with_capacity(rec_steps.len());

            for (qi, step) in rec_steps.iter().enumerate() {
                let label = format!("rec[{qi}]");
                self.run_step_computed(step, &label)?;
                let delta = self.eval(&step.plan, &label)?;
                let delta = rename_to(delta, &c.rec_cols)?;
                delta_total += delta.len();
                let mut sub = SubqueryIterStat {
                    delta_rows: delta.len(),
                    changed: false,
                    ubu_changed_rows: 0,
                };

                match &c.union {
                    UnionMode::All => {
                        if !delta.is_empty() {
                            sub.changed = true;
                            self.catalog.insert_rows(
                                &c.rec_name,
                                delta.rows().to_vec(),
                                self.profile.wal_temp,
                            )?;
                        }
                        next_working = Some(match next_working {
                            None => delta,
                            Some(acc) => ops::union_all(&acc, &delta)?,
                        });
                    }
                    UnionMode::Distinct => {
                        let r = self.catalog.relation(&c.rec_name)?;
                        let fresh = ops::difference(&delta, r)?;
                        if !fresh.is_empty() {
                            sub.changed = true;
                            self.catalog.insert_rows(
                                &c.rec_name,
                                fresh.rows().to_vec(),
                                self.profile.wal_temp,
                            )?;
                        }
                        next_working = Some(match next_working {
                            None => fresh,
                            Some(acc) => ops::union_distinct(&acc, &fresh)?,
                        });
                    }
                    UnionMode::ByUpdate(_) => {
                        let before = self.catalog.relation(&c.rec_name)?.clone();
                        ops::union_by_update(
                            self.catalog,
                            &c.rec_name,
                            delta,
                            ubu_keys.as_deref(),
                            self.ubu_impl,
                            self.profile,
                            &mut self.stats.exec,
                        )?;
                        let after = self.catalog.relation(&c.rec_name)?;
                        sub.ubu_changed_rows = changed_row_count(&before, after);
                        sub.changed = sub.ubu_changed_rows > 0
                            || !after.same_rows_unordered(&before);
                    }
                }
                changed |= sub.changed;
                if let Some(t) = self.tracer {
                    t.event(
                        "subquery",
                        [
                            ("q".into(), aio_trace::FieldValue::UInt(qi as u64)),
                            (
                                "delta_rows".into(),
                                aio_trace::FieldValue::UInt(sub.delta_rows as u64),
                            ),
                            ("c_i".into(), aio_trace::FieldValue::Bool(sub.changed)),
                            (
                                "ubu_changed_rows".into(),
                                aio_trace::FieldValue::UInt(sub.ubu_changed_rows as u64),
                            ),
                        ],
                    );
                }
                subqueries.push(sub);
            }

            if seminaive {
                let w = next_working
                    .unwrap_or_else(|| Relation::new(self.catalog.relation(&c.rec_name).unwrap().schema().clone()));
                self.materialize(&working_name, w)?;
            }
            if changed {
                // inserts invalidated R's indexes; rebuild for the next scan
                self.build_indexes(&c.rec_name)?;
            }
            let r_rows = self.catalog.relation(&c.rec_name)?.len();
            if let Some(s) = &it_span {
                s.field("delta_rows", delta_total as u64);
                s.field("r_rows", r_rows as u64);
                s.field(
                    "ubu_changed_rows",
                    subqueries.iter().map(|q| q.ubu_changed_rows as u64).sum::<u64>(),
                );
                s.field("changed", changed);
            }
            self.stats.iterations.push(IterStat {
                r_rows,
                delta_rows: delta_total,
                elapsed: it_start.elapsed(),
                exec: self.stats.exec.delta_since(&exec_at_start),
                subqueries,
            });
            aio_metrics::hooks::fixpoint_iteration(delta_total as u64);
            if self.profile.capture_snapshots {
                self.stats
                    .snapshots
                    .push(self.catalog.relation(&c.rec_name)?.clone());
            }
            // Durable iteration boundary: R (and the working table) as of
            // the end of iteration `it` are committed before we decide to
            // continue, so a crash mid-iteration resumes from here.
            self.wal_commit_iter_point(&c.rec_name, (it + 1) as u64)?;
            if !changed {
                break; // every C_i is false / fixpoint reached
            }
        }
        aio_metrics::global()
            .engine
            .fixpoint_converge_ms
            .observe(loop_start.elapsed().as_millis() as u64);

        // --- final query ----------------------------------------------------
        // Attribute the final query's operator counts to their own block
        // instead of silently merging them into the last iteration's tail.
        let exec_before_final = self.stats.exec.clone();
        let out = self.eval(&c.final_plan, "final")?;
        self.stats.final_exec = self.stats.exec.delta_since(&exec_before_final);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::lower::LowerCtx;
    use crate::parser::{Parser, Statement};
    use aio_algebra::ops::AntiJoinImpl;
    use aio_algebra::{oracle_like, postgres_like};
    use aio_storage::{edge_schema, node_schema, row, Value};

    /// 4-node graph: 1→2→3→4, 1→3.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut e = Relation::new(edge_schema());
        e.extend([
            row![1, 2, 1.0],
            row![2, 3, 1.0],
            row![3, 4, 1.0],
            row![1, 3, 1.0],
        ])
        .unwrap();
        cat.create_table("E", e).unwrap();
        let mut v = Relation::new(node_schema());
        v.extend([row![1, 0.0], row![2, 0.0], row![3, 0.0], row![4, 0.0]])
            .unwrap();
        cat.create_table("V", v).unwrap();
        cat
    }

    fn run_sql(sql: &str, params: &[(&str, Value)]) -> QueryResult {
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let map: HashMap<String, Value> = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let ctx = LowerCtx::new(&map, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        let profile = oracle_like();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        runner.run(&c).unwrap()
    }

    #[test]
    fn transitive_closure_fig1() {
        // Fig. 1 as with+ (union with dedup so cycles would terminate too)
        let sql = "\
with TC(F, T) as (
  (select E.F, E.T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select * from TC";
        let out = run_sql(sql, &[]);
        // closure of 1→2→3→4, 1→3: pairs from 1: {2,3,4}, from 2: {3,4},
        // from 3: {4} → 6 pairs
        assert_eq!(out.relation.len(), 6);
        assert!(out.stats.iterations.len() >= 2);
    }

    #[test]
    fn snapshots_track_every_iteration_when_enabled() {
        let sql = "\
with TC(F, T) as (
  (select E.F, E.T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select * from TC";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        let profile = oracle_like().with_snapshots(true);
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        let out = runner.run(&c).unwrap();
        assert_eq!(out.stats.snapshots.len(), out.stats.iterations.len());
        // per-iteration row counts line up with the IterStats, and the last
        // snapshot is the fixpoint
        for (snap, it) in out.stats.snapshots.iter().zip(&out.stats.iterations) {
            assert_eq!(snap.len(), it.r_rows);
        }
        assert_eq!(out.stats.snapshots.last().unwrap().len(), 6);
        // default profiles pay nothing
        let mut cat = catalog();
        let profile = oracle_like();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        let out = runner.run(&c).unwrap();
        assert!(out.stats.snapshots.is_empty());
    }

    #[test]
    fn union_all_terminates_on_dag_by_emptiness() {
        let sql = "\
with R(F, T) as (
  (select E.F, E.T from E)
  union all
  (select R.F, E.T from R, E where R.T = E.F))
select * from R";
        let out = run_sql(sql, &[]);
        // semi-naive over the working table: base 4 edges + 3 two-hop
        // paths + 1 three-hop path = 8 rows ((1,3) appears twice: as an
        // edge and as the path 1→2→3 — union all keeps duplicates)
        assert_eq!(out.relation.len(), 8);
        let last = out.stats.iterations.last().unwrap();
        assert_eq!(last.delta_rows, 0, "terminated because delta drained");
    }

    #[test]
    fn bfs_by_union_by_update() {
        // Eq. (5): visited flag flooding from node 1 over Eᵀ
        let sql = "\
with B(ID, vw) as (
  (select V.ID, least(1.0, greatest(V.vw, 0.0)) from V)
  union by update ID
  (select E.T, max(B.vw * E.ew) from B, E where B.ID = E.F group by E.T))
select * from B";
        // seed: node 1 visited
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        cat.relation_mut("V").unwrap().rows_mut()[0] = row![1, 1.0];
        let profile = oracle_like();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        let out = runner.run(&c).unwrap();
        let visited: Vec<i64> = out
            .relation
            .iter()
            .filter(|r| r[1].as_f64() == Some(1.0))
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let mut v = visited.clone();
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fixpoint_detected_without_maxrecursion() {
        let sql = "\
with W(ID, vw) as (
  (select V.ID, 1.0 * V.ID from V)
  union by update ID
  (select E.T, min(W.vw * E.ew) from W, E where W.ID = E.F group by E.T))
select * from W";
        let out = run_sql(sql, &[]);
        // labels flood forward; converges in ≤ diameter+1 iterations
        assert!(out.stats.iterations.len() <= 5);
        let last = out.stats.iterations.last().unwrap();
        assert!(last.r_rows == 4);
    }

    #[test]
    fn maxrecursion_caps_iterations() {
        let sql = "\
with P(ID, W) as (
  (select V.ID, 1.0 from V)
  union by update ID
  (select P.ID, P.W + 1.0 from P)
  maxrecursion 7)
select * from P";
        let out = run_sql(sql, &[]);
        assert_eq!(out.stats.iterations.len(), 7);
    }

    #[test]
    fn exec_stats_partition_into_init_iterations_final() {
        let sql = "\
with TC(F, T) as (
  (select E.F, E.T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select * from TC";
        let out = run_sql(sql, &[]);
        let s = &out.stats;
        // the grand total is exactly the sum of the attributed blocks
        let mut sum = s.init_exec.clone();
        for it in &s.iterations {
            sum.absorb(&it.exec);
        }
        sum.absorb(&s.final_exec);
        assert_eq!(sum, s.exec, "init + Σiterations + final == total");
        // the final block is no longer silently merged into the last
        // iteration: the final query is a bare scan, so it scans and joins
        // nothing extra
        assert_eq!(s.final_exec.joins, 0);
        assert!(s.final_exec.rows_scanned > 0, "final scans TC");
        // every iteration of the recursive step runs exactly one join
        for it in &s.iterations {
            assert_eq!(it.exec.joins, 1, "TC = 1 join per iteration (§7.2)");
            assert_eq!(it.subqueries.len(), 1);
            assert_eq!(it.subqueries[0].delta_rows, it.delta_rows);
        }
        // C_i outcome flips to false exactly at the last iteration
        let flags: Vec<bool> = s
            .iterations
            .iter()
            .map(|it| it.subqueries.iter().any(|q| q.changed))
            .collect();
        assert!(flags[..flags.len() - 1].iter().all(|&c| c));
        assert!(!flags.last().unwrap());
    }

    #[test]
    fn ubu_changed_rows_count_updates_and_inserts() {
        // BFS flood: each wave overwrites vw for newly reached nodes only
        let sql = "\
with B(ID, vw) as (
  (select V.ID, least(1.0, greatest(V.vw, 0.0)) from V)
  union by update ID
  (select E.T, max(B.vw * E.ew) from B, E where B.ID = E.F group by E.T))
select * from B";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        cat.relation_mut("V").unwrap().rows_mut()[0] = row![1, 1.0];
        let profile = oracle_like();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        let out = runner.run(&c).unwrap();
        // graph 1→2→3→4 (+1→3): wave 1 reaches {2,3}, wave 2 reaches {4},
        // wave 3 changes nothing → converged
        let changed: Vec<usize> = out
            .stats
            .iterations
            .iter()
            .map(|it| it.subqueries[0].ubu_changed_rows)
            .collect();
        assert_eq!(changed, vec![2, 1, 0]);
        assert_eq!(out.stats.iterations.len(), 3);
        assert!(!out.stats.iterations.last().unwrap().subqueries[0].changed);
    }

    #[test]
    fn traced_run_produces_wellformed_spans() {
        let sql = "\
with TC(F, T) as (
  (select E.F, E.T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F))
select * from TC";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        let profile = oracle_like();
        let tracer = aio_trace::Tracer::new();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        runner.set_tracer(Some(&tracer));
        let out = runner.run(&c).unwrap();
        let trace = tracer.finish();
        trace.validate().unwrap();
        // one psm_run root, one iteration span per IterStat, and per-
        // iteration query spans labelled rec[0]
        assert_eq!(trace.spans_named("psm_run").count(), 1);
        assert_eq!(
            trace.spans_named("iteration").count(),
            out.stats.iterations.len()
        );
        let rec_queries = trace
            .spans_named("query")
            .filter(|s| s.field("plan").map(|v| v.to_string()) == Some("rec[0]".into()))
            .count();
        assert_eq!(rec_queries, out.stats.iterations.len());
        // iteration spans carry the convergence fields
        for (i, sp) in trace.spans_named("iteration").enumerate() {
            assert_eq!(sp.field_u64("iter"), Some(i as u64));
            assert!(sp.field_u64("delta_rows").is_some());
            assert!(sp.field_u64("r_rows").is_some());
        }
        // untraced runner records nothing and produces identical results
        let mut cat2 = catalog();
        let mut plain = PsmRunner::new(&mut cat2, &profile, UbuImpl::FullOuterJoin);
        let out2 = plain.run(&c).unwrap();
        assert!(out.relation.same_rows_unordered(&out2.relation));
        assert_eq!(out.stats.exec, out2.stats.exec);
    }

    #[test]
    fn temp_tables_are_dropped_after_run() {
        let sql = "\
with R(F, T) as (
  (select E.F, E.T from E)
  union
  (select R.F, E.T from R, E where R.T = E.F))
select * from R";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        let profile = oracle_like();
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        runner.run(&c).unwrap();
        assert!(!cat.contains("R"));
        assert!(cat.contains("E") && cat.contains("V"));
    }

    #[test]
    fn rec_name_collision_rejected() {
        let sql = "\
with E(F, T) as (
  (select E.F, E.T from V)
  union all
  (select E.F, E.T from E))
select * from E";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        // compile may pass; the runner rejects the collision
        if let Ok(c) = compile(&w, &ctx) {
            let mut cat = catalog();
            let profile = oracle_like();
            let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
            assert!(runner.run(&c).is_err());
        }
    }

    #[test]
    fn postgres_profile_builds_indexes_during_run() {
        let sql = "\
with R(F, T) as (
  (select E.F, E.T from E)
  union
  (select R.F, E.T from R, E where R.T = E.F))
select * from R";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::LeftOuterNull);
        let c = compile(&w, &ctx).unwrap();
        let mut cat = catalog();
        let profile = postgres_like(true);
        let mut runner = PsmRunner::new(&mut cat, &profile, UbuImpl::FullOuterJoin);
        let out = runner.run(&c).unwrap();
        assert_eq!(out.relation.len(), 6);
        assert!(out.stats.exec.index_scans > 0, "merge join used the index");
    }
}
