//! Tokenizer for the with+ SQL dialect.

use crate::error::{Result, WithPlusError};

#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (SQL is case-insensitive; the parser matches
    /// keywords by lowercase comparison).
    Ident(String),
    Int(i64),
    Float(f64),
    /// `'single quoted'` string literal.
    Str(String),
    /// `:name` named parameter.
    Param(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl Token {
    /// Is this the identifier/keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |msg: &str, at: usize| {
        // char-boundary-safe snippet of what follows the error position
        let mut end = input.len().min(at + 20);
        while end > at && !input.is_char_boundary(end) {
            end -= 1;
        }
        let mut start = at;
        while start < input.len() && !input.is_char_boundary(start) {
            start += 1;
        }
        WithPlusError::Parse {
            message: msg.to_string(),
            near: input.get(start..end).unwrap_or("").to_string(),
        }
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(err("unexpected `!`", i));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err("unterminated string literal", i));
                }
                out.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            ':' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == start {
                    return Err(err("expected parameter name after `:`", i));
                }
                out.push(Token::Param(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j + 1 < bytes.len()
                    && bytes[j] == b'.'
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &input[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| err("bad float", start))?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| err("bad integer", start))?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            _ => return Err(err("unexpected character", i)),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_pagerank_header() {
        let toks = tokenize("with P(ID, W) as (").unwrap();
        assert_eq!(toks[0], Token::Ident("with".into()));
        assert!(toks[1].is_kw("p"));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[5], Token::Ident("W".into()));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("0.85 * sum(w) + (1-0.85)/:n <= 1e3 <> 2").unwrap();
        assert_eq!(toks[0], Token::Float(0.85));
        assert!(matches!(toks[1], Token::Star));
        assert!(toks.contains(&Token::Param("n".into())));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Float(1000.0)));
        assert!(toks.contains(&Token::Ne));
    }

    #[test]
    fn strings_and_comments() {
        let toks = tokenize("select 'lbl' -- a comment\n from V").unwrap();
        assert_eq!(toks[1], Token::Str("lbl".into()));
        assert!(toks[2].is_kw("from"));
    }

    #[test]
    fn qualified_names_split_on_dot() {
        let toks = tokenize("E.F = TC.T").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("E".into()),
                Token::Dot,
                Token::Ident("F".into()),
                Token::Eq,
                Token::Ident("TC".into()),
                Token::Dot,
                Token::Ident("T".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("select 'oops").is_err());
    }

    #[test]
    fn not_equals_bang() {
        assert!(tokenize("a != b").unwrap().contains(&Token::Ne));
        assert!(tokenize("a ! b").is_err());
    }
}
