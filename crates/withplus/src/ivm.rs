//! Incremental view maintenance (IVM) for live graphs.
//!
//! A registered view is a with+ statement kept materialized while the base
//! tables change. [`Database::apply_edges`] ingests a batch of edge
//! insertions/deletions through the WAL (one logical `EdgeDelta` record per
//! mutated table) and refreshes every affected view *incrementally* instead
//! of re-running the fixpoint from scratch. How a view refreshes follows
//! from the same classification the compiler already performs for
//! XY-stratification:
//!
//! | class          | union mode        | recursive shape            | insert-only refresh      | with deletions |
//! |----------------|-------------------|----------------------------|--------------------------|----------------|
//! | `Monotone`     | `union` (distinct)| any                        | resume semi-naive from Δ | full recompute |
//! | `MonotoneUbu`  | `union by update` | single `min`/`max` agg     | frontier merge-improve   | full recompute |
//! | `Reconverge`   | `union by update` | anything else (e.g. `sum`) | re-converge from state   | same           |
//! | `Opaque`       | `union all`, `computed by`, keyless UBU | —    | full recompute           | full recompute |
//!
//! *Resume* re-derives only conclusions involving at least one delta row:
//! every scan of a mutated base table is rebound — one occurrence at a
//! time — to the delta relation, the variants are unioned, already-known
//! rows subtracted, and semi-naive iteration restarts from that seed
//! against the retained final state. *Frontier merge-improve* does the
//! same seeding but folds each frontier into the state with the fixpoint's
//! own `min`/`max` (see `aio_algebra::ops::ubu_merge_improve` for why
//! replace semantics would be wrong on a partial frontier). *Re-converge*
//! restarts the full-width iteration from the previous result snapshot,
//! stopping when the largest per-key change drops below the view's
//! epsilon; the cold compute path for this class uses the *same* stopping
//! rule so incremental and recompute results agree to within epsilon. The
//! re-converge path assumes key-stationarity (the set of keys the
//! recursive step derives does not depend on the carried values — true
//! for PageRank-class views); keys that stop being derivable are reset to
//! their initialization values before the loop.
//!
//! Each `apply_edges` call is one WAL transaction: the base-table deltas
//! and every refreshed view state commit together, so crash recovery lands
//! on the pre-batch or post-batch generation, never a torn view. Every
//! refresh emits a [`ResultDelta`] (added/removed/changed rows versus the
//! previous materialization) to subscribers, bumps the `ivm_*` metrics,
//! and records a [`RefreshReport`] readable via [`Database::show_view`].

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use crate::ast::UnionMode;
use crate::compile::{compile, CompiledStep, CompiledWithPlus};
use crate::db::{optimize_compiled, Database};
use crate::error::{Result, WithPlusError};
use crate::lower::LowerCtx;
use crate::parser::{Parser, Statement};
use crate::psm::{changed_row_count, rebind_scan, rename_to, DEFAULT_MAX_RECURSION};
use aio_algebra::ops::{self, UbuImpl};
use aio_algebra::{AggFunc, EngineProfile, Evaluator, ExecStats, Plan, ScalarExpr};
use aio_storage::{Catalog, FxHashMap, FxHashSet, Key, Relation, Row, WalPolicy};
use aio_trace::Tracer;

/// A batch of logical row insertions/deletions against one base table.
/// Deletions match whole rows by value (multiset semantics: each victim
/// row removes one occurrence; absent victims are ignored).
#[derive(Clone, Debug, Default)]
pub struct EdgeDelta {
    pub table: String,
    pub adds: Vec<Row>,
    pub dels: Vec<Row>,
}

impl EdgeDelta {
    pub fn new(table: impl Into<String>, adds: Vec<Row>, dels: Vec<Row>) -> EdgeDelta {
        EdgeDelta { table: table.into(), adds, dels }
    }

    /// Pure insertion batch.
    pub fn insert(table: impl Into<String>, adds: Vec<Row>) -> EdgeDelta {
        EdgeDelta::new(table, adds, Vec::new())
    }

    /// Pure deletion batch.
    pub fn delete(table: impl Into<String>, dels: Vec<Row>) -> EdgeDelta {
        EdgeDelta::new(table, Vec::new(), dels)
    }
}

/// How a view can be maintained, derived from its compiled form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewClass {
    /// `union` (distinct) recursion: a monotone set fixpoint.
    Monotone,
    /// Keyed `union by update` whose every recursive step is a single
    /// `min`/`max` aggregate: a monotone lattice fixpoint (WCC/SSSP).
    MonotoneUbu,
    /// Keyed `union by update` with any other combiner (PageRank's `sum`):
    /// non-monotone, but contractive — re-converges from a warm start.
    Reconverge,
    /// No incremental strategy applies; every refresh recomputes.
    Opaque,
}

impl ViewClass {
    pub fn label(self) -> &'static str {
        match self {
            ViewClass::Monotone => "monotone",
            ViewClass::MonotoneUbu => "monotone-ubu",
            ViewClass::Reconverge => "reconverge",
            ViewClass::Opaque => "opaque",
        }
    }
}

/// The strategy a particular refresh actually used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshMode {
    /// Semi-naive iteration resumed from a delta-derived seed.
    Resume,
    /// Merge-improve frontier propagation.
    Frontier,
    /// Full-width re-convergence from the previous state.
    Reconverge,
    /// Cold recompute (initial build, or fallback on deletions).
    Full,
}

impl RefreshMode {
    pub fn label(self) -> &'static str {
        match self {
            RefreshMode::Resume => "resume",
            RefreshMode::Frontier => "frontier",
            RefreshMode::Reconverge => "reconverge",
            RefreshMode::Full => "full",
        }
    }
}

/// Row-level difference between two successive materializations of a view.
/// Rows are sorted so the stream is deterministic and pinnable.
#[derive(Clone, Debug)]
pub struct ResultDelta {
    pub view: String,
    /// MVCC generation the refreshed state was published under.
    pub generation: u64,
    pub added: Vec<Row>,
    pub removed: Vec<Row>,
    /// `(old, new)` pairs for keyed views whose key survived with a
    /// different payload. Empty for unkeyed views (those report the old
    /// row under `removed` and the new one under `added`).
    pub changed: Vec<(Row, Row)>,
}

impl ResultDelta {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total rows mentioned (added + removed + changed).
    pub fn row_count(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }
}

/// What the last refresh of a view did — the payload behind `SHOW VIEW`.
#[derive(Clone, Debug)]
pub struct RefreshReport {
    pub view: String,
    pub mode: RefreshMode,
    pub iterations: usize,
    pub added: usize,
    pub removed: usize,
    pub changed: usize,
    pub duration: Duration,
}

/// A registered materialized view (crate-internal).
pub(crate) struct ViewDef {
    pub(crate) name: String,
    pub(crate) sql: String,
    /// Optimized plans with every self-reference rebound to the view's
    /// private work-table name, so refreshes can never collide with a user
    /// table that happens to share the recursive relation's name.
    compiled: CompiledWithPlus,
    class: ViewClass,
    /// Union-by-update key positions within `rec_cols` (keyed classes).
    keys: Option<Vec<usize>>,
    /// Position of the min/max aggregate column (`MonotoneUbu` only).
    value_col: usize,
    /// `true` = min direction, `false` = max (`MonotoneUbu` only).
    min_agg: bool,
    /// Convergence threshold for the `Reconverge` class (largest per-key
    /// change at which iteration stops, cold and warm alike).
    epsilon: f64,
    /// Base tables any plan of the view scans (normalized names).
    base_tables: BTreeSet<String>,
    subscribers: Vec<Sender<ResultDelta>>,
    refreshes: u64,
    fallbacks: u64,
    last: Option<RefreshReport>,
}

fn state_table(view: &str) -> String {
    format!("__ivm_state_{view}")
}

fn work_table(view: &str) -> String {
    format!("__ivm_work_{view}")
}

fn delta_table(base: &str) -> String {
    format!("__ivm_delta_{}", base.to_ascii_lowercase())
}

fn front_table(view: &str) -> String {
    format!("__ivm_front_{view}")
}

// ---------------------------------------------------------------------------
// Plan surgery
// ---------------------------------------------------------------------------

/// Rebuild `plan`, offering every `Scan` node to `f`; a `Some` return
/// replaces that node. The single walker behind table collection,
/// occurrence counting and per-occurrence delta rebinding.
fn map_scans(plan: &Plan, f: &mut dyn FnMut(&str, &Option<String>) -> Option<Plan>) -> Plan {
    let mut rebox = |p: &Plan| Box::new(map_scans(p, f));
    match plan {
        Plan::Scan { table, alias } => f(table, alias).unwrap_or_else(|| plan.clone()),
        Plan::Values(_) => plan.clone(),
        Plan::Select { input, pred } => Plan::Select { input: rebox(input), pred: pred.clone() },
        Plan::Project { input, items } => {
            Plan::Project { input: rebox(input), items: items.clone() }
        }
        Plan::Aggregate { input, group_by, items } => Plan::Aggregate {
            input: rebox(input),
            group_by: group_by.clone(),
            items: items.clone(),
        },
        Plan::Window { input, partition_by, items } => Plan::Window {
            input: rebox(input),
            partition_by: partition_by.clone(),
            items: items.clone(),
        },
        Plan::Distinct(input) => Plan::Distinct(rebox(input)),
        Plan::Join { left, right, on, residual, kind } => Plan::Join {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
            residual: residual.clone(),
            kind: *kind,
        },
        Plan::Product { left, right } => {
            Plan::Product { left: rebox(left), right: rebox(right) }
        }
        Plan::UnionAll { left, right } => {
            Plan::UnionAll { left: rebox(left), right: rebox(right) }
        }
        Plan::Union { left, right } => Plan::Union { left: rebox(left), right: rebox(right) },
        Plan::Difference { left, right } => {
            Plan::Difference { left: rebox(left), right: rebox(right) }
        }
        Plan::AntiJoin { left, right, on, imp } => Plan::AntiJoin {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
            imp: *imp,
        },
        Plan::SemiJoin { left, right, on } => Plan::SemiJoin {
            left: rebox(left),
            right: rebox(right),
            on: on.clone(),
        },
        Plan::MultiwayJoin { children, vars, var_names, agm_est } => Plan::MultiwayJoin {
            children: children.iter().map(|c| map_scans(c, f)).collect(),
            vars: vars.clone(),
            var_names: var_names.clone(),
            agm_est: *agm_est,
        },
    }
}

/// Normalized names of every table `plan` scans.
fn collect_scan_tables(plan: &Plan, out: &mut BTreeSet<String>) {
    let _ = map_scans(plan, &mut |t, _| {
        out.insert(t.to_ascii_lowercase());
        None
    });
}

/// How many `Scan` nodes of `table` the plan contains.
fn count_scans(plan: &Plan, table: &str) -> usize {
    let mut n = 0usize;
    let _ = map_scans(plan, &mut |t, _| {
        if t.eq_ignore_ascii_case(table) {
            n += 1;
        }
        None
    });
    n
}

/// Clone of `plan` with exactly the `nth` occurrence (scan order) of
/// `table` rebound to `replacement`, keeping the original name as alias.
fn replace_nth_scan(plan: &Plan, table: &str, replacement: &str, nth: usize) -> Plan {
    let mut seen = 0usize;
    map_scans(plan, &mut |t, alias| {
        if !t.eq_ignore_ascii_case(table) {
            return None;
        }
        let hit = seen == nth;
        seen += 1;
        if hit {
            Some(Plan::Scan {
                table: replacement.to_string(),
                alias: Some(alias.clone().unwrap_or_else(|| t.to_string())),
            })
        } else {
            None
        }
    })
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

fn aggs_in(e: &ScalarExpr, out: &mut Vec<AggFunc>) {
    match e {
        ScalarExpr::Agg(f, inner) => {
            out.push(*f);
            aggs_in(inner, out);
        }
        ScalarExpr::Unary(_, a) => aggs_in(a, out),
        ScalarExpr::Binary(_, a, b) => {
            aggs_in(a, out);
            aggs_in(b, out);
        }
        ScalarExpr::Func(_, args) => {
            for a in args {
                aggs_in(a, out);
            }
        }
        ScalarExpr::Col(_) | ScalarExpr::BoundCol(_) | ScalarExpr::Lit(_) | ScalarExpr::AggRef(_) => {}
    }
}

/// Classify a compiled view: `(class, key positions, value column, min?)`.
/// Runs on the *unoptimized* compilation so the recursive steps still have
/// their lowered `Aggregate` roots.
fn classify(c: &CompiledWithPlus) -> (ViewClass, Option<Vec<usize>>, usize, bool) {
    let opaque = (ViewClass::Opaque, None, 0, true);
    let has_computed =
        c.init.iter().chain(c.recursive.iter()).any(|s| !s.computed.is_empty());
    if has_computed {
        return opaque;
    }
    let keys = match &c.union {
        UnionMode::Distinct => return (ViewClass::Monotone, None, 0, true),
        UnionMode::All | UnionMode::ByUpdate(None) => return opaque,
        UnionMode::ByUpdate(Some(keys)) => keys,
    };
    let mut key_pos = Vec::with_capacity(keys.len());
    for k in keys {
        match c.rec_cols.iter().position(|col| col.eq_ignore_ascii_case(k)) {
            Some(p) => key_pos.push(p),
            None => return opaque,
        }
    }
    // MonotoneUbu needs: arity = keys + 1 value column, and every recursive
    // step a root Aggregate whose single aggregate is min (or all max) and
    // sits at the value position.
    let value_col = (0..c.rec_cols.len()).find(|p| !key_pos.contains(p));
    let (Some(value_col), true) = (value_col, c.rec_cols.len() == key_pos.len() + 1) else {
        return (ViewClass::Reconverge, Some(key_pos), 0, true);
    };
    let mut direction: Option<bool> = None;
    for step in &c.recursive {
        let Plan::Aggregate { items, .. } = &step.plan else {
            return (ViewClass::Reconverge, Some(key_pos), value_col, true);
        };
        let mut monotone_here = false;
        for (i, (expr, _)) in items.iter().enumerate() {
            let mut aggs = Vec::new();
            aggs_in(expr, &mut aggs);
            if aggs.is_empty() {
                continue;
            }
            let min = match aggs.as_slice() {
                [AggFunc::Min] => true,
                [AggFunc::Max] => false,
                _ => return (ViewClass::Reconverge, Some(key_pos), value_col, true),
            };
            // The aggregate must be the whole item (bare min/max, not an
            // arithmetic combination) and land on the value column.
            let bare = matches!(expr, ScalarExpr::Agg(_, _));
            if !bare || i != value_col || direction.is_some_and(|d| d != min) {
                return (ViewClass::Reconverge, Some(key_pos), value_col, true);
            }
            direction = Some(min);
            monotone_here = true;
        }
        if !monotone_here {
            return (ViewClass::Reconverge, Some(key_pos), value_col, true);
        }
    }
    match direction {
        Some(min) => (ViewClass::MonotoneUbu, Some(key_pos), value_col, min),
        None => (ViewClass::Reconverge, Some(key_pos), value_col, true),
    }
}

// ---------------------------------------------------------------------------
// The refresh engine
// ---------------------------------------------------------------------------

/// Merged per-table mutation info for one `apply_edges` batch.
struct Mutation {
    adds: Vec<Row>,
    has_dels: bool,
}

/// Bundles the split-borrowed pieces of a `Database` a refresh needs, plus
/// temp-table bookkeeping (everything created here is dropped before the
/// batch commits).
struct Refresher<'a> {
    catalog: &'a mut Catalog,
    profile: &'a EngineProfile,
    ubu_impl: UbuImpl,
    tracer: Option<&'a Tracer>,
    stats: ExecStats,
    temps: Vec<String>,
}

impl<'a> Refresher<'a> {
    fn new(
        catalog: &'a mut Catalog,
        profile: &'a EngineProfile,
        ubu_impl: UbuImpl,
        tracer: Option<&'a Tracer>,
    ) -> Refresher<'a> {
        Refresher { catalog, profile, ubu_impl, tracer, stats: ExecStats::new(), temps: Vec::new() }
    }

    fn eval(&mut self, plan: &Plan) -> Result<Relation> {
        let mut ev = Evaluator::with_tracer(self.catalog, self.profile, self.tracer);
        Ok(ev.eval_root(plan)?)
    }

    fn materialize(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.catalog.create_or_replace(name, rel, true)?;
        if !self.temps.iter().any(|t| t == name) {
            self.temps.push(name.to_string());
        }
        Ok(())
    }

    fn drop_temps(&mut self) {
        for t in self.temps.drain(..).rev() {
            let _ = self.catalog.drop_table(&t);
        }
    }

    /// Evaluate one compiled step: materialize its `computed by` relations,
    /// then the step plan, reshaped to the recursive relation's columns.
    fn eval_step(&mut self, step: &CompiledStep, rec_cols: &[String]) -> Result<Relation> {
        for (name, cols, plan) in &step.computed {
            let rel = self.eval(plan)?;
            let rel = rename_to(rel, cols)?;
            self.materialize(name, rel)?;
        }
        let rel = self.eval(&step.plan)?;
        rename_to(rel, rec_cols)
    }

    /// Union of the initialization steps — the cold-start contents of R.
    fn init_state(&mut self, c: &CompiledWithPlus) -> Result<Relation> {
        let mut acc: Option<Relation> = None;
        for step in &c.init {
            let rel = self.eval_step(step, &c.rec_cols)?;
            acc = Some(match acc {
                None => rel,
                Some(a) => ops::union_all(&a, &rel)?,
            });
        }
        acc.ok_or_else(|| WithPlusError::Restriction("view has no initial subquery".into()))
    }

    /// Insert rows into a (temp) table, invalidating its indexes.
    fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        self.catalog.insert_rows(table, rows, WalPolicy::None)?;
        Ok(())
    }

    /// The union of every "one scan rebound to its delta" variant of the
    /// view's steps, evaluated against the retained state in `work` — the
    /// seed an incremental refresh resumes from. `mutated` must already
    /// have its delta temp tables materialized.
    fn build_seed(
        &mut self,
        c: &CompiledWithPlus,
        mutated: &BTreeMap<String, Mutation>,
    ) -> Result<Relation> {
        let span = aio_trace::maybe_span(self.tracer, "ivm_seed");
        let mut seed: Option<Relation> = None;
        for step in c.init.iter().chain(c.recursive.iter()) {
            for table in mutated.keys() {
                let n = count_scans(&step.plan, table);
                for k in 0..n {
                    let variant = replace_nth_scan(&step.plan, table, &delta_table(table), k);
                    let rel = self.eval(&variant)?;
                    let rel = rename_to(rel, &c.rec_cols)?;
                    seed = Some(match seed {
                        None => rel,
                        Some(a) => ops::union_all(&a, &rel)?,
                    });
                }
            }
        }
        let seed = match seed {
            Some(s) => s,
            None => {
                // The view scans a mutated table only through `computed by`
                // (impossible here: such views are Opaque) or not at all.
                let schema = self.catalog.relation(&work_table_of(c))?.schema().clone();
                Relation::new(schema)
            }
        };
        if let Some(s) = &span {
            s.field("rows", seed.len());
        }
        Ok(seed)
    }

    /// Semi-naive loop shared by cold Monotone/Opaque builds and resumed
    /// Monotone refreshes: `working` is the current frontier. Mirrors the
    /// PSM runner's `union`/`union all` semantics exactly.
    fn seminaive_loop(
        &mut self,
        c: &CompiledWithPlus,
        work: &str,
        mut working: Relation,
    ) -> Result<usize> {
        let max = c.max_recursion.unwrap_or(DEFAULT_MAX_RECURSION);
        let dwork = format!("__ivm_dwork_{work}");
        let mut iters = 0usize;
        for _ in 0..max {
            if working.is_empty() {
                break;
            }
            self.materialize(&dwork, working)?;
            iters += 1;
            let mut next: Option<Relation> = None;
            for step in &c.recursive {
                let plan = rebind_scan(&step.plan, work, &dwork);
                let delta = self.eval(&plan)?;
                let delta = rename_to(delta, &c.rec_cols)?;
                match &c.union {
                    UnionMode::All => {
                        if !delta.is_empty() {
                            self.insert(work, delta.rows().to_vec())?;
                        }
                        next = Some(match next {
                            None => delta,
                            Some(a) => ops::union_all(&a, &delta)?,
                        });
                    }
                    _ => {
                        let r = self.catalog.relation(work)?;
                        let fresh = ops::difference(&delta, r)?;
                        if !fresh.is_empty() {
                            self.insert(work, fresh.rows().to_vec())?;
                        }
                        next = Some(match next {
                            None => fresh,
                            Some(a) => ops::union_distinct(&a, &fresh)?,
                        });
                    }
                }
            }
            working = next.unwrap_or_else(|| {
                Relation::new(self.catalog.relation(work).unwrap().schema().clone())
            });
        }
        Ok(iters)
    }

    /// Replace-semantics union-by-update loop: the cold path for every
    /// keyed view and the warm path for `Reconverge`. Stops at the exact
    /// fixpoint, or — when `epsilon` is finite and the view is keyed —
    /// as soon as the largest per-key change falls below it.
    fn ubu_loop(
        &mut self,
        c: &CompiledWithPlus,
        work: &str,
        keys: Option<&[usize]>,
        epsilon: f64,
    ) -> Result<usize> {
        let max = c.max_recursion.unwrap_or(DEFAULT_MAX_RECURSION);
        let mut iters = 0usize;
        for _ in 0..max {
            iters += 1;
            let mut changed = false;
            let mut max_change = 0.0f64;
            let mut structural = false;
            for step in &c.recursive {
                let delta = self.eval(&step.plan)?;
                let delta = rename_to(delta, &c.rec_cols)?;
                let before = self.catalog.relation(work)?.clone();
                ops::union_by_update(
                    self.catalog,
                    work,
                    delta,
                    keys,
                    self.ubu_impl,
                    self.profile,
                    &mut self.stats,
                )?;
                let after = self.catalog.relation(work)?;
                if changed_row_count(&before, after) > 0 || !after.same_rows_unordered(&before) {
                    changed = true;
                    match keys.and_then(|k| max_keyed_change(&before, after, k)) {
                        Some(d) => max_change = max_change.max(d),
                        None => structural = true,
                    }
                }
            }
            if !changed {
                break;
            }
            if epsilon.is_finite() && !structural && max_change < epsilon {
                break;
            }
        }
        Ok(iters)
    }

    /// Merge-improve frontier propagation for `MonotoneUbu` views: start
    /// from the delta-derived seed and push improvements until quiescent.
    fn frontier_loop(
        &mut self,
        c: &CompiledWithPlus,
        work: &str,
        seed: Relation,
        keys: &[usize],
        value_col: usize,
        min: bool,
    ) -> Result<usize> {
        let max = c.max_recursion.unwrap_or(DEFAULT_MAX_RECURSION);
        let front = front_table(work);
        let mut stats = std::mem::take(&mut self.stats);
        let mut frontier =
            ops::ubu_merge_improve(self.catalog, work, seed, keys, value_col, min, &mut stats)?;
        let mut iters = 0usize;
        for _ in 0..max {
            if frontier.is_empty() {
                break;
            }
            iters += 1;
            self.materialize(&front, frontier)?;
            let mut delta: Option<Relation> = None;
            for step in &c.recursive {
                let plan = rebind_scan(&step.plan, work, &front);
                let rel = self.eval(&plan)?;
                let rel = rename_to(rel, &c.rec_cols)?;
                delta = Some(match delta {
                    None => rel,
                    Some(a) => ops::union_all(&a, &rel)?,
                });
            }
            frontier = match delta {
                Some(d) => {
                    ops::ubu_merge_improve(self.catalog, work, d, keys, value_col, min, &mut stats)?
                }
                None => Relation::new(self.catalog.relation(work)?.schema().clone()),
            };
        }
        self.stats = stats;
        Ok(iters)
    }
}

fn work_table_of(c: &CompiledWithPlus) -> String {
    // `compiled.rec_name` is already the private work-table name (rebound
    // at registration).
    c.rec_name.clone()
}

/// Largest absolute numeric change between two keyed states. `None` marks
/// a structural change (key sets differ, duplicate keys, or a non-numeric
/// column changed) that epsilon stopping must not swallow.
fn max_keyed_change(before: &Relation, after: &Relation, keys: &[usize]) -> Option<f64> {
    if before.len() != after.len() {
        return None;
    }
    let pos = before.unique_key_map(keys).ok()?;
    let mut max = 0.0f64;
    for row in after.rows() {
        let k = Key::of(row, keys);
        let &bi = pos.get(&k)?;
        let old = &before.rows()[bi];
        for (a, b) in old.iter().zip(row.iter()) {
            if a == b {
                continue;
            }
            let (Some(x), Some(y)) = (num(a), num(b)) else {
                return None;
            };
            max = max.max((x - y).abs());
        }
    }
    Some(max)
}

fn num(v: &aio_storage::Value) -> Option<f64> {
    v.as_f64().or_else(|| v.as_int().map(|i| i as f64))
}

/// Sort rows lexicographically (Value is totally ordered) so emitted
/// deltas are deterministic regardless of derivation order.
fn sort_rows(rows: &mut [Row]) {
    rows.sort_unstable_by(|a, b| a.iter().cmp(b.iter()));
}

/// Drop matching add/delete pairs (multiset intersection). Sound because
/// [`Catalog::apply_delta`] lands adds before deletes, so inserting and
/// deleting the same row in one batch is a no-op either way.
fn cancel_pairs(adds: Vec<Row>, dels: Vec<Row>) -> (Vec<Row>, Vec<Row>) {
    let mut pending: BTreeMap<Row, usize> = BTreeMap::new();
    for d in dels {
        *pending.entry(d).or_insert(0) += 1;
    }
    let mut kept_adds = Vec::new();
    for a in adds {
        match pending.get_mut(&a) {
            Some(c) if *c > 0 => *c -= 1,
            _ => kept_adds.push(a),
        }
    }
    let mut kept_dels = Vec::new();
    for (row, c) in pending {
        for _ in 0..c {
            kept_dels.push(row.clone());
        }
    }
    (kept_adds, kept_dels)
}

/// Diff two materializations. Keyed views report surviving keys with a new
/// payload as `changed`; everything else is multiset added/removed.
fn diff_result(old: &Relation, new: &Relation, keys: Option<&[usize]>) -> ResultDelta {
    let mut d = ResultDelta {
        view: String::new(),
        generation: 0,
        added: Vec::new(),
        removed: Vec::new(),
        changed: Vec::new(),
    };
    let keyed = keys.and_then(|k| {
        let a = old.unique_key_map(k).ok()?;
        let b = new.unique_key_map(k).ok()?;
        Some((a, b, k))
    });
    match keyed {
        Some((old_pos, new_pos, k)) => {
            for (key, &oi) in &old_pos {
                match new_pos.get(key) {
                    None => d.removed.push(old.rows()[oi].clone()),
                    Some(&ni) if new.rows()[ni] != old.rows()[oi] => {
                        d.changed.push((old.rows()[oi].clone(), new.rows()[ni].clone()));
                    }
                    Some(_) => {}
                }
            }
            for (key, &ni) in &new_pos {
                if !old_pos.contains_key(key) {
                    d.added.push(new.rows()[ni].clone());
                }
            }
            let _ = k;
        }
        None => {
            let mut counts: FxHashMap<&Row, i64> = FxHashMap::default();
            for r in old.rows() {
                *counts.entry(r).or_insert(0) += 1;
            }
            for r in new.rows() {
                let c = counts.entry(r).or_insert(0);
                *c -= 1;
                if *c < 0 {
                    d.added.push(r.clone());
                }
            }
            let mut counts: FxHashMap<&Row, i64> = FxHashMap::default();
            for r in new.rows() {
                *counts.entry(r).or_insert(0) += 1;
            }
            for r in old.rows() {
                let c = counts.entry(r).or_insert(0);
                *c -= 1;
                if *c < 0 {
                    d.removed.push(r.clone());
                }
            }
        }
    }
    sort_rows(&mut d.added);
    sort_rows(&mut d.removed);
    d.changed.sort_unstable_by(|a, b| a.0.iter().cmp(b.0.iter()));
    d
}

/// Refresh one view against an already-applied batch. Returns the result
/// delta (generation stamped later, at commit) and the refresh report.
fn refresh_view(
    catalog: &mut Catalog,
    profile: &EngineProfile,
    ubu_impl: UbuImpl,
    tracer: Option<&Tracer>,
    v: &mut ViewDef,
    mutated: &BTreeMap<String, Mutation>,
) -> Result<(ResultDelta, RefreshReport)> {
    let started = Instant::now();
    let touched: BTreeMap<String, Mutation> = mutated
        .iter()
        .filter(|(t, _)| v.base_tables.contains(*t))
        .map(|(t, m)| (t.clone(), Mutation { adds: m.adds.clone(), has_dels: m.has_dels }))
        .collect();
    let insert_only = touched.values().all(|m| !m.has_dels);
    let mode = match v.class {
        ViewClass::Monotone if insert_only => RefreshMode::Resume,
        ViewClass::MonotoneUbu if insert_only => RefreshMode::Frontier,
        ViewClass::Reconverge => RefreshMode::Reconverge,
        _ => RefreshMode::Full,
    };
    let span = aio_trace::maybe_span(tracer, "ivm_refresh");
    if let Some(s) = &span {
        s.field("view", v.name.as_str());
        s.field("mode", mode.label());
    }

    let old_out = catalog.relation(&v.name)?.clone();
    let state_name = state_table(&v.name);
    let work = work_table_of(&v.compiled);
    let mut rf = Refresher::new(catalog, profile, ubu_impl, tracer);
    let c = &v.compiled;

    let iterations = match mode {
        RefreshMode::Full => build_cold(&mut rf, c, &work, v.keys.as_deref(), v.epsilon_for_loop())?,
        RefreshMode::Resume | RefreshMode::Frontier => {
            let state = rf.catalog.relation(&state_name)?.clone();
            rf.materialize(&work, state)?;
            for (t, m) in &touched {
                let schema = rf.catalog.relation(t)?.schema().clone();
                let mut d = Relation::new(schema);
                d.extend(m.adds.iter().cloned())?;
                rf.materialize(&delta_table(t), d)?;
            }
            let seed = rf.build_seed(c, &touched)?;
            if mode == RefreshMode::Resume {
                let r = rf.catalog.relation(&work)?;
                let mut fresh = ops::difference(&seed, r)?;
                aio_algebra::fault::clip_ivm_seed(&mut fresh);
                if !fresh.is_empty() {
                    rf.insert(&work, fresh.rows().to_vec())?;
                }
                rf.seminaive_loop(c, &work, fresh)?
            } else {
                let mut seed = seed;
                aio_algebra::fault::clip_ivm_seed(&mut seed);
                let keys = v.keys.as_deref().expect("MonotoneUbu is keyed");
                rf.frontier_loop(c, &work, seed, keys, v.value_col, v.min_agg)?
            }
        }
        RefreshMode::Reconverge => {
            let state = rf.catalog.relation(&state_name)?.clone();
            rf.materialize(&work, state)?;
            // Key-stationarity fix-up: keys the recursive step no longer
            // derives would otherwise keep their stale warm value forever,
            // while a cold run leaves them at their initialization value.
            let r0 = rf.init_state(c)?;
            if let Some(keys) = v.keys.as_deref() {
                let mut produced: FxHashSet<Key> = FxHashSet::default();
                for step in &c.recursive {
                    let d = rf.eval(&step.plan)?;
                    let d = rename_to(d, &c.rec_cols)?;
                    for row in d.rows() {
                        produced.insert(Key::of(row, keys));
                    }
                }
                if let Ok(init_pos) = r0.unique_key_map(keys) {
                    let rel = rf.catalog.relation_mut(&work)?;
                    for row in rel.rows_mut() {
                        let k = Key::of(row, keys);
                        if !produced.contains(&k) {
                            if let Some(&i) = init_pos.get(&k) {
                                *row = r0.rows()[i].clone();
                            }
                        }
                    }
                    rf.catalog.entry_mut(&work)?.indexes.clear();
                }
            }
            rf.ubu_loop(c, &work, v.keys.as_deref(), v.epsilon)?
        }
    };

    // Publish: output = final plan over the new state; both become base
    // tables inside the batch's WAL transaction.
    let out = rf.eval(&c.final_plan)?;
    let new_state = rf.catalog.relation(&work)?.clone();
    rf.drop_temps();
    catalog.create_or_replace(&state_name, new_state, false)?;
    catalog.create_or_replace(&v.name, out.clone(), false)?;

    let keyed_out = v.keys.as_deref().filter(|_| {
        out.schema().columns().len() == c.rec_cols.len()
            && out
                .schema()
                .columns()
                .iter()
                .zip(&c.rec_cols)
                .all(|(a, b)| a.name.eq_ignore_ascii_case(b))
    });
    let mut delta = diff_result(&old_out, &out, keyed_out);
    delta.view = v.name.clone();

    let report = RefreshReport {
        view: v.name.clone(),
        mode,
        iterations,
        added: delta.added.len(),
        removed: delta.removed.len(),
        changed: delta.changed.len(),
        duration: started.elapsed(),
    };
    if let Some(s) = &span {
        s.field("iterations", iterations);
        s.field("added", delta.added.len());
        s.field("removed", delta.removed.len());
        s.field("changed", delta.changed.len());
    }
    aio_metrics::hooks::ivm_refresh(
        mode == RefreshMode::Full,
        delta.row_count() as u64,
        report.duration.as_millis() as u64,
    );
    v.refreshes += 1;
    if mode == RefreshMode::Full {
        v.fallbacks += 1;
    }
    v.last = Some(report.clone());
    Ok((delta, report))
}

impl ViewDef {
    /// Epsilon the *cold* loop should use: only the `Reconverge` class
    /// stops early; everything else runs to the exact fixpoint
    /// (`INFINITY` disables the early stop — `ubu_loop` only applies a
    /// finite epsilon).
    fn epsilon_for_loop(&self) -> f64 {
        if self.class == ViewClass::Reconverge {
            self.epsilon
        } else {
            f64::INFINITY
        }
    }
}

/// Cold build of a view's state into `work` (also the deletion fallback).
fn build_cold(
    rf: &mut Refresher<'_>,
    c: &CompiledWithPlus,
    work: &str,
    keys: Option<&[usize]>,
    epsilon: f64,
) -> Result<usize> {
    let mut r0 = rf.init_state(c)?;
    // distinct-union init rows are deduped, mirroring the PSM runner
    if matches!(c.union, UnionMode::Distinct) {
        r0 = ops::distinct(&r0);
    }
    if let Some(k) = keys {
        r0.set_pk(Some(k.to_vec()));
    }
    rf.materialize(work, r0.clone())?;
    match &c.union {
        UnionMode::ByUpdate(_) => rf.ubu_loop(c, work, keys, epsilon),
        _ => rf.seminaive_loop(c, work, r0),
    }
}

// ---------------------------------------------------------------------------
// Database surface
// ---------------------------------------------------------------------------

impl Database {
    /// Register and materialize an incrementally maintained view with the
    /// default convergence epsilon (`1e-9`, only meaningful for the
    /// re-converging class).
    pub fn create_view(&mut self, name: &str, sql: &str) -> Result<()> {
        self.create_view_with(name, sql, 1e-9)
    }

    /// [`Database::create_view`] with an explicit epsilon for
    /// `Reconverge`-class views: iteration stops (cold and warm alike)
    /// once the largest per-key change is below `epsilon`.
    pub fn create_view_with(&mut self, name: &str, sql: &str, epsilon: f64) -> Result<()> {
        if self.views.iter().any(|v| v.name.eq_ignore_ascii_case(name)) {
            return Err(WithPlusError::Restriction(format!("view {name} already exists")));
        }
        if self.catalog.contains(name) {
            return Err(WithPlusError::Restriction(format!(
                "cannot create view {name}: a table with that name exists"
            )));
        }
        let mut v = self.compile_view(name, sql, epsilon)?;
        self.catalog.wal_begin_txn();
        let built = self.build_view(&mut v);
        match built {
            Ok(()) => {
                self.catalog.wal_commit_txn()?;
                self.views.push(v);
                Ok(())
            }
            Err(e) => {
                let _ = self.catalog.wal_commit_txn();
                Err(e)
            }
        }
    }

    /// Re-attach a view after reopening a durable database: the state and
    /// output tables were recovered from the WAL, only the in-memory
    /// definition is re-derived (no recompute). Falls back to a full
    /// [`Database::create_view_with`] when the tables are absent.
    pub fn register_view(&mut self, name: &str, sql: &str, epsilon: f64) -> Result<()> {
        if self.views.iter().any(|v| v.name.eq_ignore_ascii_case(name)) {
            return Err(WithPlusError::Restriction(format!("view {name} already exists")));
        }
        if !(self.catalog.contains(name) && self.catalog.contains(&state_table(name))) {
            return self.create_view_with(name, sql, epsilon);
        }
        let v = self.compile_view(name, sql, epsilon)?;
        self.views.push(v);
        Ok(())
    }

    /// Drop a view: forgets the definition and removes its materialized
    /// state and output tables.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        let Some(i) = self.views.iter().position(|v| v.name.eq_ignore_ascii_case(name)) else {
            return Err(WithPlusError::Restriction(format!("no such view: {name}")));
        };
        let v = self.views.remove(i);
        let _ = self.catalog.drop_table(&v.name);
        let _ = self.catalog.drop_table(&state_table(&v.name));
        Ok(())
    }

    /// Names of the registered views, in registration order.
    pub fn view_names(&self) -> Vec<String> {
        self.views.iter().map(|v| v.name.clone()).collect()
    }

    /// The current materialization of a view.
    pub fn view_relation(&self, name: &str) -> Result<&Relation> {
        Ok(self.catalog.relation(name)?)
    }

    /// The last refresh's report, if the view has refreshed at least once.
    pub fn view_report(&self, name: &str) -> Option<&RefreshReport> {
        self.views
            .iter()
            .find(|v| v.name.eq_ignore_ascii_case(name))
            .and_then(|v| v.last.as_ref())
    }

    /// Subscribe to a view's refresh stream: every `apply_edges` batch
    /// that refreshes the view sends one [`ResultDelta`] (possibly empty).
    pub fn subscribe(&mut self, view: &str) -> Result<Receiver<ResultDelta>> {
        let v = self
            .views
            .iter_mut()
            .find(|v| v.name.eq_ignore_ascii_case(view))
            .ok_or_else(|| WithPlusError::Restriction(format!("no such view: {view}")))?;
        let (tx, rx) = channel();
        v.subscribers.push(tx);
        Ok(rx)
    }

    /// EXPLAIN-style report of a view's maintenance state.
    pub fn show_view(&self, name: &str) -> Result<String> {
        let v = self
            .views
            .iter()
            .find(|v| v.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| WithPlusError::Restriction(format!("no such view: {name}")))?;
        let rows = self.catalog.relation(&v.name).map(|r| r.len()).unwrap_or(0);
        let state_rows =
            self.catalog.relation(&state_table(&v.name)).map(|r| r.len()).unwrap_or(0);
        let mut s = String::new();
        s.push_str(&format!("view {}\n", v.name));
        let sql_one_line: String = v.sql.split_whitespace().collect::<Vec<_>>().join(" ");
        s.push_str(&format!("  sql:        {}\n", sql_one_line));
        s.push_str(&format!("  class:      {}\n", v.class.label()));
        s.push_str(&format!(
            "  strategy:   insert-only -> {}, deletions -> {}\n",
            match v.class {
                ViewClass::Monotone => "resume semi-naive",
                ViewClass::MonotoneUbu => "frontier merge-improve",
                ViewClass::Reconverge => "re-converge from state",
                ViewClass::Opaque => "full recompute",
            },
            match v.class {
                ViewClass::Reconverge => "re-converge from state",
                _ => "full recompute",
            }
        ));
        s.push_str(&format!("  base:       {}\n", {
            let names: Vec<&str> = v.base_tables.iter().map(String::as_str).collect();
            names.join(", ")
        }));
        if v.class == ViewClass::Reconverge {
            s.push_str(&format!("  epsilon:    {:e}\n", v.epsilon));
        }
        s.push_str(&format!("  rows:       {rows} (state {state_rows})\n"));
        s.push_str(&format!(
            "  refreshes:  {} ({} full fallbacks)\n",
            v.refreshes, v.fallbacks
        ));
        if let Some(last) = &v.last {
            s.push_str(&format!(
                "  last:       {} in {} iterations, +{} -{} ~{} rows, {:.3} ms\n",
                last.mode.label(),
                last.iterations,
                last.added,
                last.removed,
                last.changed,
                last.duration.as_secs_f64() * 1e3,
            ));
        }
        s.push_str(&format!("  generation: {}\n", self.catalog.generation()));
        Ok(s)
    }

    /// Apply a batch of base-table deltas and refresh every affected view.
    /// The whole batch — deltas and refreshed view states — is one WAL
    /// transaction and one MVCC generation: recovery sees either none of
    /// it or all of it. Returns the per-view result deltas (also delivered
    /// to subscribers), in view registration order.
    pub fn apply_edges(&mut self, deltas: Vec<EdgeDelta>) -> Result<Vec<ResultDelta>> {
        // The span must not borrow `self.tracer` across the mutable calls
        // below; take the tracer out for the duration of the batch.
        let tracer = self.tracer.take();
        let out = self.apply_edges_traced(deltas, tracer.as_ref());
        self.tracer = tracer;
        out
    }

    fn apply_edges_traced(
        &mut self,
        deltas: Vec<EdgeDelta>,
        tracer: Option<&Tracer>,
    ) -> Result<Vec<ResultDelta>> {
        let span = aio_trace::maybe_span(tracer, "apply_edges");
        // Merge the deltas per table and cancel matching add/delete pairs:
        // a row inserted and deleted in the same batch nets out entirely,
        // so a net-zero batch logs no delta and refreshes no view while
        // still committing its generation.
        let mut per_table: BTreeMap<String, (Vec<Row>, Vec<Row>)> = BTreeMap::new();
        for d in deltas {
            let slot = per_table.entry(d.table.to_ascii_lowercase()).or_default();
            slot.0.extend(d.adds);
            slot.1.extend(d.dels);
        }
        let deltas: Vec<EdgeDelta> = per_table
            .into_iter()
            .map(|(table, (adds, dels))| {
                let (adds, dels) = cancel_pairs(adds, dels);
                EdgeDelta::new(table, adds, dels)
            })
            .filter(|d| !d.adds.is_empty() || !d.dels.is_empty())
            .collect();
        let mut mutated: BTreeMap<String, Mutation> = BTreeMap::new();
        let (mut adds_total, mut dels_total) = (0usize, 0usize);
        for d in &deltas {
            adds_total += d.adds.len();
            dels_total += d.dels.len();
            let m = mutated
                .entry(d.table.clone())
                .or_insert(Mutation { adds: Vec::new(), has_dels: false });
            m.adds.extend(d.adds.iter().cloned());
            m.has_dels |= !d.dels.is_empty();
        }
        if let Some(s) = &span {
            s.field("tables", mutated.len());
            s.field("adds", adds_total);
            s.field("dels", dels_total);
        }

        self.catalog.wal_begin_txn();
        let result = self.apply_edges_inner(deltas, &mutated, tracer);
        // Commit on both paths: a failed refresh leaves every view table
        // untouched (refreshes publish only after their fixpoint
        // succeeds), so committing the base delta keeps the catalog
        // consistent — views are stale, not torn — and the error reports
        // exactly that.
        let commit = self.catalog.wal_commit_txn();
        let mut out = result?;
        commit?;
        let generation = self.catalog.generation();
        for rd in &mut out {
            rd.generation = generation;
        }
        if let Some(s) = &span {
            s.field("views", out.len());
            s.field("generation", generation);
        }
        for rd in &out {
            if let Some(v) =
                self.views.iter_mut().find(|v| v.name.eq_ignore_ascii_case(&rd.view))
            {
                v.subscribers.retain(|tx| tx.send(rd.clone()).is_ok());
            }
        }
        Ok(out)
    }

    /// Fully recompute every registered view (post-recovery reconcile or
    /// paranoia check). Returns the result deltas versus the previous
    /// materializations.
    pub fn refresh_all_views(&mut self) -> Result<Vec<ResultDelta>> {
        // An empty batch touches nothing; force a full rebuild instead by
        // pretending every base table saw a deletion.
        let mut mutated: BTreeMap<String, Mutation> = BTreeMap::new();
        for v in &self.views {
            for t in &v.base_tables {
                mutated.insert(t.clone(), Mutation { adds: Vec::new(), has_dels: true });
            }
        }
        let tracer = self.tracer.take();
        self.catalog.wal_begin_txn();
        let result = self.apply_edges_inner(Vec::new(), &mutated, tracer.as_ref());
        self.tracer = tracer;
        let commit = self.catalog.wal_commit_txn();
        let mut out = result?;
        commit?;
        let generation = self.catalog.generation();
        for rd in &mut out {
            rd.generation = generation;
        }
        Ok(out)
    }

    fn apply_edges_inner(
        &mut self,
        deltas: Vec<EdgeDelta>,
        mutated: &BTreeMap<String, Mutation>,
        tracer: Option<&Tracer>,
    ) -> Result<Vec<ResultDelta>> {
        for d in deltas {
            if d.adds.is_empty() && d.dels.is_empty() {
                continue;
            }
            self.catalog.apply_delta(&d.table, d.adds, d.dels, self.profile.wal_temp)?;
        }
        let mut views = std::mem::take(&mut self.views);
        let mut out = Vec::new();
        for v in views.iter_mut() {
            if !v.base_tables.iter().any(|t| mutated.contains_key(t)) {
                continue;
            }
            let refreshed =
                refresh_view(&mut self.catalog, &self.profile, self.ubu_impl, tracer, v, mutated);
            match refreshed {
                Ok((delta, _report)) => out.push(delta),
                Err(e) => {
                    self.views = views;
                    return Err(e);
                }
            }
        }
        self.views = views;
        Ok(out)
    }

    /// Compile, classify and rebind a view definition (no execution).
    fn compile_view(&self, name: &str, sql: &str, epsilon: f64) -> Result<ViewDef> {
        let Statement::WithPlus(w) = Parser::parse_statement(sql)? else {
            return Err(WithPlusError::Restriction(
                "a view must be a with+ statement".into(),
            ));
        };
        let ctx = LowerCtx::new(&self.params, self.anti_impl);
        let raw = compile(&w, &ctx)?;
        let (class, keys, value_col, min_agg) = classify(&raw);
        let mut compiled = optimize_compiled(raw, &self.catalog, self.profile.optimizer);
        // Rebind every self-reference to the view's private work table so
        // refreshes cannot collide with user tables or other views.
        let rec = compiled.rec_name.clone();
        let work = work_table(name);
        for step in compiled.init.iter_mut().chain(compiled.recursive.iter_mut()) {
            for (_, _, plan) in step.computed.iter_mut() {
                *plan = rebind_scan(plan, &rec, &work);
            }
            step.plan = rebind_scan(&step.plan, &rec, &work);
        }
        compiled.final_plan = rebind_scan(&compiled.final_plan, &rec, &work);
        compiled.rec_name = work.clone();

        let mut base_tables = BTreeSet::new();
        for step in compiled.init.iter().chain(compiled.recursive.iter()) {
            for (_, _, plan) in &step.computed {
                collect_scan_tables(plan, &mut base_tables);
            }
            collect_scan_tables(&step.plan, &mut base_tables);
        }
        collect_scan_tables(&compiled.final_plan, &mut base_tables);
        base_tables.remove(&work.to_ascii_lowercase());
        let computed: BTreeSet<String> = compiled
            .init
            .iter()
            .chain(compiled.recursive.iter())
            .flat_map(|s| s.computed.iter().map(|(n, _, _)| n.to_ascii_lowercase()))
            .collect();
        for c in computed {
            base_tables.remove(&c);
        }

        Ok(ViewDef {
            name: name.to_string(),
            sql: sql.to_string(),
            compiled,
            class,
            keys,
            value_col,
            min_agg,
            epsilon,
            base_tables,
            subscribers: Vec::new(),
            refreshes: 0,
            fallbacks: 0,
            last: None,
        })
    }

    /// Cold-build a compiled view and publish its state/output tables.
    fn build_view(&mut self, v: &mut ViewDef) -> Result<()> {
        let mut rf = Refresher::new(
            &mut self.catalog,
            &self.profile,
            self.ubu_impl,
            self.tracer.as_ref(),
        );
        let work = work_table_of(&v.compiled);
        let eps = v.epsilon_for_loop();
        let built = build_cold(&mut rf, &v.compiled, &work, v.keys.as_deref(), eps)
            .and_then(|_| rf.eval(&v.compiled.final_plan))
            .and_then(|out| {
                let state = rf.catalog.relation(&work)?.clone();
                Ok((state, out))
            });
        rf.drop_temps();
        let (state, out) = built?;
        self.catalog.create_or_replace(&state_table(&v.name), state, false)?;
        self.catalog.create_or_replace(&v.name, out, false)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_storage::{edge_schema, node_schema, row, Value};

    /// The seed fault flag is process-global: tests that arm it and tests
    /// that exercise the clipped code paths (resume/frontier seeds) must
    /// not interleave.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fault_guard() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    const TC_SQL: &str = "with TC(F, T) as (
        (select E.F, E.T from E)
        union
        (select TC.F, E.T from TC, E where TC.T = E.F))
      select * from TC";

    const TC_ALL_SQL: &str = "with TC(F, T) as (
        (select E.F, E.T from E)
        union all
        (select TC.F, E.T from TC, E where TC.T = E.F)
        maxrecursion 8)
      select * from TC";

    const SSSP_SQL: &str = "with D(ID, vw) as (
        (select V.ID, V.vw from V)
        union by update ID
        (select E.T, min(D.vw + E.ew) from D, E where D.ID = E.F group by E.T))
      select * from D";

    const PR_SQL: &str = "with P(ID, W) as (
        (select V.ID, 0.0 from V)
        union by update ID
        (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E
         where P.ID = E.F group by E.T))
      select ID, W from P";

    fn edge_rel(edges: &[(i64, i64, f64)]) -> Relation {
        let mut r = Relation::new(edge_schema());
        for &(f, t, w) in edges {
            r.push(row![f, t, w]).unwrap();
        }
        r
    }

    fn node_rel(nodes: &[(i64, f64)]) -> Relation {
        let mut r = Relation::new(node_schema());
        for &(id, w) in nodes {
            r.push(row![id, w]).unwrap();
        }
        r
    }

    fn db_with(edges: &[(i64, i64, f64)], nodes: &[(i64, f64)]) -> Database {
        let mut db = Database::new(oracle_like());
        db.create_table("E", edge_rel(edges)).unwrap();
        if !nodes.is_empty() {
            db.create_table("V", node_rel(nodes)).unwrap();
        }
        db
    }

    /// Cold oracle: a fresh database over `edges`/`nodes` with the same
    /// view built from scratch.
    fn cold_view(
        sql: &str,
        edges: &[(i64, i64, f64)],
        nodes: &[(i64, f64)],
        params: &[(&str, Value)],
        epsilon: f64,
    ) -> Relation {
        let mut db = db_with(edges, nodes);
        for (k, v) in params {
            db.set_param(k, v.clone());
        }
        db.create_view_with("oracle", sql, epsilon).unwrap();
        db.view_relation("oracle").unwrap().clone()
    }

    fn keyed_f64(rel: &Relation) -> FxHashMap<i64, f64> {
        rel.iter()
            .map(|r| (r[0].as_int().unwrap(), num(&r[1]).unwrap()))
            .collect()
    }

    #[test]
    fn classification_covers_the_algorithm_sql() {
        let db = db_with(&[(1, 2, 1.0)], &[(1, 0.0)]);
        let case = |sql: &str| classify(&db.prepare(sql).unwrap());

        assert_eq!(case(TC_SQL).0, ViewClass::Monotone);
        assert_eq!(case(TC_ALL_SQL).0, ViewClass::Opaque);

        let (class, keys, value_col, min) = case(SSSP_SQL);
        assert_eq!(class, ViewClass::MonotoneUbu);
        assert_eq!(keys, Some(vec![0]));
        assert_eq!(value_col, 1);
        assert!(min);

        let mut db2 = db_with(&[(1, 2, 1.0)], &[(1, 0.0)]);
        db2.set_param("c", 0.85);
        db2.set_param("n", 2.0);
        let (class, keys, ..) = classify(&db2.prepare(PR_SQL).unwrap());
        assert_eq!(class, ViewClass::Reconverge);
        assert_eq!(keys, Some(vec![0]));
    }

    #[test]
    fn create_view_matches_plain_execute() {
        let edges = [(1i64, 2, 1.0), (2, 3, 1.0), (4, 1, 1.0)];
        let mut db = db_with(&edges, &[]);
        db.create_view("tc_v", TC_SQL).unwrap();
        let mut db2 = db_with(&edges, &[]);
        let direct = db2.execute(TC_SQL).unwrap().relation;
        assert!(db.view_relation("tc_v").unwrap().same_rows_unordered(&direct));
    }

    #[test]
    fn tc_insert_batches_resume_and_match_recompute() {
        let _g = fault_guard();
        let mut edges = vec![(1i64, 2, 1.0), (2, 3, 1.0), (5, 6, 1.0)];
        let mut db = db_with(&edges, &[]);
        db.create_view("tc_v", TC_SQL).unwrap();

        for batch in [vec![(3i64, 4, 1.0)], vec![(4i64, 5, 1.0), (6, 1, 1.0)]] {
            let adds: Vec<Row> = batch.iter().map(|&(f, t, w)| row![f, t, w]).collect();
            edges.extend(batch.iter().copied());
            db.apply_edges(vec![EdgeDelta::insert("E", adds)]).unwrap();

            let report = db.view_report("tc_v").unwrap();
            assert_eq!(report.mode, RefreshMode::Resume);
            let expect = cold_view(TC_SQL, &edges, &[], &[], 1e-9);
            assert!(
                db.view_relation("tc_v").unwrap().same_rows_unordered(&expect),
                "incremental TC diverged after batch"
            );
        }
    }

    #[test]
    fn tc_deletion_falls_back_to_full_recompute() {
        let _g = fault_guard();
        let mut db = db_with(&[(1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)], &[]);
        db.create_view("tc_v", TC_SQL).unwrap();
        db.apply_edges(vec![EdgeDelta::delete("E", vec![row![2i64, 3, 1.0]])]).unwrap();
        assert_eq!(db.view_report("tc_v").unwrap().mode, RefreshMode::Full);
        let expect = cold_view(TC_SQL, &[(1, 2, 1.0), (3, 4, 1.0)], &[], &[], 1e-9);
        assert!(db.view_relation("tc_v").unwrap().same_rows_unordered(&expect));
    }

    /// SSSP graph: nodes carry 0 (src) / 1e18 (rest) seeds and every node
    /// has a 0-weight self-loop, mirroring `aio-algos`.
    #[allow(clippy::type_complexity)]
    fn sssp_fixture(n: i64, edges: &[(i64, i64, f64)]) -> (Vec<(i64, i64, f64)>, Vec<(i64, f64)>) {
        let mut e: Vec<(i64, i64, f64)> = (0..n).map(|v| (v, v, 0.0)).collect();
        e.extend_from_slice(edges);
        let v: Vec<(i64, f64)> =
            (0..n).map(|v| (v, if v == 0 { 0.0 } else { 1e18 })).collect();
        (e, v)
    }

    #[test]
    fn sssp_insert_batches_use_frontier_and_match_recompute() {
        let _g = fault_guard();
        let (mut edges, nodes) =
            sssp_fixture(6, &[(0, 1, 4.0), (1, 2, 3.0), (2, 3, 2.0), (0, 4, 10.0)]);
        let mut db = db_with(&edges, &nodes);
        db.create_view("sssp_v", SSSP_SQL).unwrap();

        // A shortcut that improves several downstream distances, then an
        // edge reaching the previously disconnected node 5.
        for batch in [vec![(0i64, 2, 1.0)], vec![(3i64, 5, 1.0), (4, 3, 1.0)]] {
            let adds: Vec<Row> = batch.iter().map(|&(f, t, w)| row![f, t, w]).collect();
            edges.extend(batch.iter().copied());
            db.apply_edges(vec![EdgeDelta::insert("E", adds)]).unwrap();

            assert_eq!(db.view_report("sssp_v").unwrap().mode, RefreshMode::Frontier);
            let expect = cold_view(SSSP_SQL, &edges, &nodes, &[], 1e-9);
            assert!(
                db.view_relation("sssp_v").unwrap().same_rows_unordered(&expect),
                "frontier SSSP diverged"
            );
        }
    }

    #[test]
    fn sssp_deletion_falls_back_and_matches() {
        let _g = fault_guard();
        let (edges, nodes) = sssp_fixture(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let mut db = db_with(&edges, &nodes);
        db.create_view("sssp_v", SSSP_SQL).unwrap();
        db.apply_edges(vec![EdgeDelta::delete("E", vec![row![1i64, 2, 1.0]])]).unwrap();
        assert_eq!(db.view_report("sssp_v").unwrap().mode, RefreshMode::Full);
        let (edges2, _) = sssp_fixture(4, &[(0, 1, 1.0), (0, 2, 5.0)]);
        let expect = cold_view(SSSP_SQL, &edges2, &nodes, &[], 1e-9);
        assert!(db.view_relation("sssp_v").unwrap().same_rows_unordered(&expect));
    }

    /// PageRank-style fixture: uniform out-degree weights 1/outdeg.
    fn pr_weights(raw: &[(i64, i64)]) -> Vec<(i64, i64, f64)> {
        let mut outdeg: FxHashMap<i64, usize> = FxHashMap::default();
        for &(f, _) in raw {
            *outdeg.entry(f).or_insert(0) += 1;
        }
        raw.iter().map(|&(f, t)| (f, t, 1.0 / outdeg[&f] as f64)).collect()
    }

    #[test]
    fn pagerank_reconverges_within_epsilon_of_recompute() {
        let n = 5i64;
        let nodes: Vec<(i64, f64)> = (0..n).map(|v| (v, 0.0)).collect();
        let params: Vec<(&str, Value)> =
            vec![("c", Value::from(0.85)), ("n", Value::from(n as f64))];
        let mut raw = vec![(0i64, 1), (1, 2), (2, 0), (3, 0), (0, 3)];
        let mut db = db_with(&pr_weights(&raw), &nodes);
        for (k, v) in &params {
            db.set_param(k, v.clone());
        }
        db.create_view_with("pr_v", PR_SQL, 1e-12).unwrap();

        // Mutate: node 4 joins the cycle. Out-degree renormalization makes
        // this a mixed add/delete delta on E.
        let old = pr_weights(&raw);
        raw.push((2, 4));
        raw.push((4, 0));
        let new = pr_weights(&raw);
        let dels: Vec<Row> = old
            .iter()
            .filter(|e| !new.contains(e))
            .map(|&(f, t, w)| row![f, t, w])
            .collect();
        let adds: Vec<Row> = new
            .iter()
            .filter(|e| !old.contains(e))
            .map(|&(f, t, w)| row![f, t, w])
            .collect();
        db.apply_edges(vec![EdgeDelta::new("E", adds, dels)]).unwrap();

        assert_eq!(db.view_report("pr_v").unwrap().mode, RefreshMode::Reconverge);
        let expect = cold_view(PR_SQL, &new, &nodes, &params, 1e-12);
        let got = keyed_f64(db.view_relation("pr_v").unwrap());
        let want = keyed_f64(&expect);
        assert_eq!(got.len(), want.len());
        for (id, w) in &want {
            let g = got[id];
            assert!(
                (g - w).abs() < 1e-6,
                "rank of {id} diverged: incremental {g} vs cold {w}"
            );
        }
    }

    #[test]
    fn insert_then_delete_same_edge_is_a_noop_delta() {
        let mut db = db_with(&[(1, 2, 1.0), (2, 3, 1.0)], &[]);
        db.create_view("tc_v", TC_SQL).unwrap();
        let before = db.view_relation("tc_v").unwrap().clone();
        // One batch that both inserts and deletes the same edge: net zero.
        let out = db
            .apply_edges(vec![EdgeDelta::new(
                "E",
                vec![row![3i64, 4, 1.0]],
                vec![row![3i64, 4, 1.0]],
            )])
            .unwrap();
        // add/delete pairs cancel before anything touches the catalog:
        // no view is refreshed and no result delta is emitted
        assert!(out.is_empty(), "net-zero batch must refresh nothing");
        assert!(db.view_relation("tc_v").unwrap().same_rows_unordered(&before));
    }

    #[test]
    fn subscribers_receive_sorted_result_deltas() {
        let _g = fault_guard();
        let (edges, nodes) = sssp_fixture(4, &[(0, 1, 5.0), (1, 2, 1.0)]);
        let mut db = db_with(&edges, &nodes);
        db.create_view("sssp_v", SSSP_SQL).unwrap();
        let rx = db.subscribe("sssp_v").unwrap();

        db.apply_edges(vec![EdgeDelta::insert("E", vec![row![0i64, 1, 2.0]])]).unwrap();
        let delta = rx.try_recv().expect("refresh must notify subscribers");
        assert_eq!(delta.view, "sssp_v");
        assert!(delta.generation > 0);
        assert!(delta.added.is_empty() && delta.removed.is_empty());
        // 1 and 2 improve (5→2, 6→3); keys arrive sorted by old row.
        let changed: Vec<i64> =
            delta.changed.iter().map(|(old, _)| old[0].as_int().unwrap()).collect();
        assert_eq!(changed, vec![1, 2]);
    }

    #[test]
    fn planted_seed_fault_makes_resume_diverge() {
        let _g = fault_guard();
        let mut edges = vec![(1i64, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)];
        let mut db = db_with(&edges, &[]);
        db.create_view("tc_v", TC_SQL).unwrap();

        aio_algebra::fault::inject_ivm_seed_off_by_one(true);
        edges.push((4, 5, 1.0));
        db.apply_edges(vec![EdgeDelta::insert("E", vec![row![4i64, 5, 1.0]])]).unwrap();
        aio_algebra::fault::inject_ivm_seed_off_by_one(false);
        assert!(aio_algebra::fault::fault_hits() > 0, "fault must have fired");

        let expect = cold_view(TC_SQL, &edges, &[], &[], 1e-9);
        assert!(
            !db.view_relation("tc_v").unwrap().same_rows_unordered(&expect),
            "clipped seed must lose derivations"
        );

        // refresh_all_views repairs the damage with a cold rebuild.
        db.refresh_all_views().unwrap();
        assert!(db.view_relation("tc_v").unwrap().same_rows_unordered(&expect));
    }

    #[test]
    fn show_view_reports_class_strategy_and_last_refresh() {
        let _g = fault_guard();
        let mut db = db_with(&[(1, 2, 1.0)], &[]);
        db.create_view("tc_v", TC_SQL).unwrap();
        db.apply_edges(vec![EdgeDelta::insert("E", vec![row![2i64, 3, 1.0]])]).unwrap();
        let s = db.show_view("tc_v").unwrap();
        assert!(s.contains("class:      monotone"), "{s}");
        assert!(s.contains("resume semi-naive"), "{s}");
        assert!(s.contains("last:       resume"), "{s}");
        assert!(db.show_view("nope").is_err());
    }

    #[test]
    fn view_name_collisions_are_rejected() {
        let mut db = db_with(&[(1, 2, 1.0)], &[]);
        db.create_view("tc_v", TC_SQL).unwrap();
        assert!(db.create_view("tc_v", TC_SQL).is_err());
        assert!(db.create_view("E", TC_SQL).is_err());
        db.drop_view("tc_v").unwrap();
        assert!(db.view_names().is_empty());
        db.create_view("tc_v", TC_SQL).unwrap();
    }

    #[test]
    fn untouched_views_are_not_refreshed() {
        let _g = fault_guard();
        let mut db = db_with(&[(1, 2, 1.0)], &[]);
        db.create_table("X", edge_rel(&[(7, 8, 1.0)])).unwrap();
        db.create_view("tc_v", TC_SQL).unwrap();
        let out = db
            .apply_edges(vec![EdgeDelta::insert("X", vec![row![8i64, 9, 1.0]])])
            .unwrap();
        assert!(out.is_empty(), "view does not read X");
        assert!(db.view_report("tc_v").is_none());
    }
}
