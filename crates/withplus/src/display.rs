//! Pretty-printing for the with+ AST: `Display` implementations whose
//! output re-parses to the identical AST (round-trip tested against every
//! shipped algorithm program).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => match v {
                aio_storage::Value::Text(s) => write!(f, "'{s}'"),
                aio_storage::Value::Null => write!(f, "null"),
                other => write!(f, "{other}"),
            },
            Expr::Param(p) => write!(f, ":{p}"),
            // postfix `is null` and prefix `not` bind looser than
            // arithmetic in the grammar, so both are fully parenthesized
            // to stay valid in operand position
            Expr::Unary(op, x) => match op {
                UnaryOp::Neg => write!(f, "-({x})"),
                UnaryOp::Not => write!(f, "(not ({x}))"),
                UnaryOp::IsNull => write!(f, "(({x}) is null)"),
                UnaryOp::IsNotNull => write!(f, "(({x}) is not null)"),
            },
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Agg {
                func,
                arg,
                over_partition_by,
            } => {
                write!(f, "{func}({arg})")?;
                if let Some(p) = over_partition_by {
                    write!(f, " over (partition by {})", p.join(", "))?;
                }
                Ok(())
            }
            Expr::In {
                needle,
                subquery,
                negated,
            } => write!(
                f,
                "{needle} {}in ({subquery})",
                if *negated { "not " } else { "" }
            ),
            Expr::Exists { subquery, negated } => write!(
                f,
                "{}exists ({subquery})",
                if *negated { "not " } else { "" }
            ),
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} as {a}"),
                None => write!(f, "{name}"),
            },
            FromItem::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "join",
                    JoinKind::LeftOuter => "left outer join",
                    JoinKind::FullOuter => "full outer join",
                };
                write!(f, "{left} {kw} {right} on {on}")
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.distinct {
            write!(f, "distinct ")?;
        }
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", it.expr)?;
            if let Some(a) = &it.alias {
                write!(f, " as {a}")?;
            }
        }
        write!(f, " from ")?;
        for (i, fi) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fi}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by {}", self.group_by.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for WithPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "with {}({}) as (", self.rec_name, self.rec_cols.join(", "))?;
        for (i, q) in self.subqueries.iter().enumerate() {
            if i > 0 {
                match &self.union {
                    UnionMode::All => writeln!(f, "  union all")?,
                    UnionMode::Distinct => writeln!(f, "  union")?,
                    UnionMode::ByUpdate(None) => writeln!(f, "  union by update")?,
                    UnionMode::ByUpdate(Some(keys)) => {
                        writeln!(f, "  union by update {}", keys.join(", "))?
                    }
                }
            }
            write!(f, "  ({}", q.select)?;
            if !q.computed_by.is_empty() {
                writeln!(f, "\n   computed by")?;
                for d in &q.computed_by {
                    write!(f, "     {}", d.name)?;
                    if let Some(cols) = &d.cols {
                        write!(f, "({})", cols.join(", "))?;
                    }
                    writeln!(f, " as {};", d.query)?;
                }
                write!(f, "  ")?;
            }
            writeln!(f, ")")?;
        }
        if let Some(m) = self.max_recursion {
            writeln!(f, "  maxrecursion {m}")?;
        }
        writeln!(f, ")")?;
        write!(f, "{}", self.final_select)
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{Parser, Statement};

    fn roundtrip(sql: &str) {
        let first = Parser::parse_statement(sql).unwrap();
        let printed = match &first {
            Statement::WithPlus(w) => w.to_string(),
            Statement::Select(s) => s.to_string(),
        };
        let second = Parser::parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(first, second, "--- printed ---\n{printed}");
    }

    #[test]
    fn roundtrips_plain_selects() {
        roundtrip("select E.F, E.T as dst from E as e1, V where e1.T = V.ID and V.vw > 1.5");
        roundtrip("select distinct V.ID from V where V.ID not in (select E.T from E)");
        roundtrip(
            "select V.ID from V left outer join E on V.ID = E.T where E.T is null",
        );
        roundtrip("select count(*), sum(E.ew) over (partition by E.T) from E");
        roundtrip("select coalesce(V.vw, 0.0), sqrt(:x + 2) from V group by V.ID");
    }

    #[test]
    fn roundtrips_with_plus_forms() {
        roundtrip(
            "with TC(F, T) as ((select E.F, E.T from E) union (select TC.F, E.T from TC, E where TC.T = E.F) maxrecursion 9) select * from TC",
        );
        roundtrip(
            "with P(ID, W) as ((select V.ID, 0.0 from V) union by update ID (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E where P.ID = E.F group by E.T) maxrecursion 15) select ID, W from P",
        );
    }

    #[test]
    fn roundtrips_computed_by() {
        roundtrip(
            "with Topo(ID, L) as (
               (select V.ID, 0 from V where V.ID not in (select E.T from E))
               union all
               (select T_n.ID, T_n.L from T_n
                computed by
                  L_n(L) as select max(Topo.L) + 1 from Topo;
                  T_n(ID, L) as select V.ID, L_n.L from V, L_n where V.ID not in (select Topo.ID from Topo);))
             select * from Topo",
        );
    }
}
