//! EXPLAIN ANALYZE reports for with+ statements.
//!
//! A traced with+ run produces `query` spans labelled by subquery
//! (`init[i]`, `rec[i]`, `<label>.computed.<name>`, `final`) wrapping the
//! evaluator's per-operator spans, and one `iteration` span per loop pass.
//! This module re-walks the compiled plans, correlates spans back to plan
//! nodes through [`aio_algebra::explain`], and renders the whole thing:
//! a convergence table (the Fig. 12-style per-iteration telemetry) followed
//! by one annotated plan tree per subquery.
//!
//! Note on semi-naive modes (`union` / `union all`): the executed recursive
//! plans scan the working table `__delta_R` where the source says `R`. The
//! rebinding only renames the scanned table — plan shape and node ids are
//! unchanged — so the report shows the *logical* plan while the measurements
//! come from the rebound execution.

use crate::compile::CompiledWithPlus;
use crate::psm::RunStats;
use aio_algebra::explain as node_explain;
use aio_algebra::Plan;
use aio_trace::{SpanRecord, Trace};

/// Gather the op spans of every execution of the subquery labelled `label`,
/// plus how many times it ran.
fn section_spans<'t>(trace: &'t Trace, label: &str) -> (u64, Vec<&'t SpanRecord>) {
    let mut calls = 0u64;
    let mut out: Vec<&SpanRecord> = Vec::new();
    for q in trace.spans_named("query") {
        let matches = q
            .field("plan")
            .map(|v| v.to_string() == label)
            .unwrap_or(false);
        if matches {
            calls += 1;
            out.extend(node_explain::spans_under(trace, q.id));
        }
    }
    (calls, out)
}

fn push_section(
    out: &mut String,
    label: &str,
    plan: &Plan,
    trace: &Trace,
    timings: bool,
) {
    let (calls, spans) = section_spans(trace, label);
    out.push_str(&format!("-- {label} (executions={calls})\n"));
    for line in node_explain::render_analyzed(plan, &spans, timings).lines() {
        out.push_str("   ");
        out.push_str(line);
        out.push('\n');
    }
}

/// The per-iteration convergence table: delta cardinalities, |R|, `C_i`
/// outcomes, union-by-update changed rows, and the iteration's own operator
/// counts — the quantities Section 7.2 and Fig. 12 reason with.
pub fn convergence_table(stats: &RunStats, timings: bool) -> String {
    let mut out = String::new();
    for (i, it) in stats.iterations.iter().enumerate() {
        let ci: Vec<String> = it
            .subqueries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let mut s = format!("q{qi}: delta={}", q.delta_rows);
                if q.ubu_changed_rows > 0 {
                    s.push_str(&format!(" ubu_changed={}", q.ubu_changed_rows));
                }
                s.push_str(if q.changed { " C=true" } else { " C=false" });
                s
            })
            .collect();
        out.push_str(&format!(
            "it {:>3}: delta={} |R|={} joins={} aggs={} ubu={}",
            i + 1,
            it.delta_rows,
            it.r_rows,
            it.exec.joins,
            it.exec.aggregations,
            it.exec.union_by_updates,
        ));
        if timings {
            out.push_str(&format!(
                " time={}",
                node_explain::fmt_ns(it.elapsed.as_nanos() as u64)
            ));
        }
        if it.subqueries.len() > 1 || it.subqueries.iter().any(|q| q.ubu_changed_rows > 0) {
            out.push_str(&format!("  [{}]", ci.join("; ")));
        }
        out.push('\n');
    }
    out
}

/// Full EXPLAIN ANALYZE report for a with+ statement.
pub fn render_with_plus(
    c: &CompiledWithPlus,
    stats: &RunStats,
    trace: &Trace,
    timings: bool,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "EXPLAIN ANALYZE with+ {} ({:?}, {} iteration{})\n",
        c.rec_name,
        c.union,
        stats.iterations.len(),
        if stats.iterations.len() == 1 { "" } else { "s" },
    ));
    out.push_str(&convergence_table(stats, timings));
    out.push_str(&format!("init : {}\n", stats.init_exec));
    out.push_str(&format!("final: {}\n", stats.final_exec));
    out.push_str(&format!("total: {}\n", stats.exec));
    out.push_str(&resource_footer(stats));

    for (i, step) in c.init.iter().enumerate() {
        let label = format!("init[{i}]");
        for (name, _, plan) in &step.computed {
            push_section(&mut out, &format!("{label}.computed.{name}"), plan, trace, timings);
        }
        push_section(&mut out, &label, &step.plan, trace, timings);
    }
    for (i, step) in c.recursive.iter().enumerate() {
        let label = format!("rec[{i}]");
        for (name, _, plan) in &step.computed {
            push_section(&mut out, &format!("{label}.computed.{name}"), plan, trace, timings);
        }
        push_section(&mut out, &label, &step.plan, trace, timings);
    }
    push_section(&mut out, "final", &c.final_plan, trace, timings);
    out
}

/// The resource-accounting footer: cache hit rates and the peak estimated
/// operator-output size. Deterministic (no wall clock), so it is safe under
/// `timings: false` snapshot tests; all zeros when metrics are disabled.
fn resource_footer(stats: &RunStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cache: trie {}/{} hits, stats {}/{} hits\n",
        stats.cache.trie_hits,
        stats.cache.trie_total(),
        stats.cache.stats_hits,
        stats.cache.stats_total(),
    ));
    out.push_str(&format!(
        "peak mem: {} bytes (est. largest operator output)\n",
        stats.peak_mem_bytes
    ));
    out
}

/// EXPLAIN ANALYZE report for a one-shot SELECT.
pub fn render_select(plan: &Plan, stats: &RunStats, trace: &Trace, timings: bool) -> String {
    let mut out = String::new();
    out.push_str("EXPLAIN ANALYZE select\n");
    push_section(&mut out, "select", plan, trace, timings);
    out.push_str(&resource_footer(stats));
    out
}
