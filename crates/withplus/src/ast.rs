//! The abstract syntax of with+ (Section 6, Fig. 4) and of the SQL
//! subset its subqueries are written in.

use aio_algebra::AggFunc;
use aio_storage::Value;

/// A parsed expression (pre-lowering; may contain subqueries and named
/// parameters).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference.
    Col(String),
    Lit(Value),
    /// Named parameter `:name`, bound at execution.
    Param(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Scalar function call by name (resolved during lowering).
    Func(String, Vec<Expr>),
    /// Aggregate call; `over_partition_by = Some(cols)` makes it a window
    /// aggregate (`partition by`, used by the SQL'99 baseline, Fig. 9).
    Agg {
        func: AggFunc,
        arg: Box<Expr>,
        over_partition_by: Option<Vec<String>>,
    },
    /// `expr [NOT] IN (subquery)`
    In {
        needle: Box<Expr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)` — the subquery may be correlated through
    /// equality predicates on outer columns.
    Exists {
        subquery: Box<SelectStmt>,
        negated: bool,
    },
}

pub use aio_algebra::{BinOp, UnaryOp};

/// `expr [AS alias]` in a select list.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// An item in a FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub enum FromItem {
    Table {
        name: String,
        alias: Option<String>,
    },
    /// Explicit join syntax (`LEFT OUTER JOIN`, `FULL OUTER JOIN`, `JOIN`).
    Join {
        left: Box<FromItem>,
        right: Box<FromItem>,
        kind: JoinKind,
        on: Expr,
    },
}

impl FromItem {
    pub fn table(name: impl Into<String>) -> FromItem {
        FromItem::Table {
            name: name.into(),
            alias: None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    FullOuter,
}

/// A SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<String>,
    /// `HAVING` predicate over the grouped output (aliases resolvable).
    pub having: Option<Expr>,
}

/// `name [(cols)] AS select` inside `computed by` (Section 6).
#[derive(Clone, Debug, PartialEq)]
pub struct ComputedDef {
    pub name: String,
    pub cols: Option<Vec<String>>,
    pub query: SelectStmt,
}

/// One subquery `Q_i` of the with+ body, with its local `computed by`
/// relations.
#[derive(Clone, Debug, PartialEq)]
pub struct Subquery {
    pub select: SelectStmt,
    pub computed_by: Vec<ComputedDef>,
}

/// How the subqueries of the body are combined.
#[derive(Clone, Debug, PartialEq)]
pub enum UnionMode {
    /// `union all` (SQL'99; inflationary).
    All,
    /// `union` with duplicate elimination (PostgreSQL extension, Table 1).
    Distinct,
    /// `union by update [cols]` — the paper's noninflationary union. `None`
    /// replaces the relation wholesale.
    ByUpdate(Option<Vec<String>>),
}

/// A full with+ statement:
/// `with R(cols) as ( body [maxrecursion n] ) final_select`.
#[derive(Clone, Debug, PartialEq)]
pub struct WithPlus {
    pub rec_name: String,
    pub rec_cols: Vec<String>,
    pub subqueries: Vec<Subquery>,
    pub union: UnionMode,
    pub max_recursion: Option<usize>,
    pub final_select: SelectStmt,
}

impl WithPlus {
    /// Does `q` (including its computed-by chain) reference the recursive
    /// relation? Determines initial vs. recursive subqueries (Section 6).
    pub fn is_recursive_subquery(&self, q: &Subquery) -> bool {
        let mut tables = Vec::new();
        collect_select_tables(&q.select, &mut tables);
        for d in &q.computed_by {
            collect_select_tables(&d.query, &mut tables);
        }
        tables
            .iter()
            .any(|t| t.eq_ignore_ascii_case(&self.rec_name))
    }

    pub fn initial_subqueries(&self) -> Vec<&Subquery> {
        self.subqueries
            .iter()
            .filter(|q| !self.is_recursive_subquery(q))
            .collect()
    }

    pub fn recursive_subqueries(&self) -> Vec<&Subquery> {
        self.subqueries
            .iter()
            .filter(|q| self.is_recursive_subquery(q))
            .collect()
    }
}

/// Every table name read by a select (FROM items + subqueries in WHERE).
pub fn collect_select_tables(s: &SelectStmt, out: &mut Vec<String>) {
    fn from_item(f: &FromItem, out: &mut Vec<String>) {
        match f {
            FromItem::Table { name, .. } => out.push(name.clone()),
            FromItem::Join { left, right, .. } => {
                from_item(left, out);
                from_item(right, out);
            }
        }
    }
    for f in &s.from {
        from_item(f, out);
    }
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Unary(_, x) => walk_expr(x, out),
            Expr::Binary(_, l, r) => {
                walk_expr(l, out);
                walk_expr(r, out);
            }
            Expr::Func(_, args) => args.iter().for_each(|a| walk_expr(a, out)),
            Expr::Agg { arg, .. } => walk_expr(arg, out),
            Expr::In { needle, subquery, .. } => {
                walk_expr(needle, out);
                collect_select_tables(subquery, out);
            }
            Expr::Exists { subquery, .. } => collect_select_tables(subquery, out),
            _ => {}
        }
    }
    if let Some(w) = &s.where_clause {
        walk_expr(w, out);
    }
    if let Some(h) = &s.having {
        walk_expr(h, out);
    }
    for it in &s.items {
        walk_expr(&it.expr, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_from(tables: &[&str]) -> SelectStmt {
        SelectStmt {
            distinct: false,
            items: vec![SelectItem {
                expr: Expr::Col("x".into()),
                alias: None,
            }],
            from: tables.iter().map(|t| FromItem::table(*t)).collect(),
            where_clause: None,
            group_by: vec![],
            having: None,
        }
    }

    #[test]
    fn classify_initial_vs_recursive() {
        let w = WithPlus {
            rec_name: "P".into(),
            rec_cols: vec!["ID".into(), "W".into()],
            subqueries: vec![
                Subquery {
                    select: select_from(&["R"]),
                    computed_by: vec![],
                },
                Subquery {
                    select: select_from(&["P", "S"]),
                    computed_by: vec![],
                },
            ],
            union: UnionMode::ByUpdate(Some(vec!["ID".into()])),
            max_recursion: Some(10),
            final_select: select_from(&["P"]),
        };
        assert_eq!(w.initial_subqueries().len(), 1);
        assert_eq!(w.recursive_subqueries().len(), 1);
    }

    #[test]
    fn recursion_through_computed_by_detected() {
        let w = WithPlus {
            rec_name: "H".into(),
            rec_cols: vec!["ID".into()],
            subqueries: vec![Subquery {
                select: select_from(&["R_ha"]),
                computed_by: vec![ComputedDef {
                    name: "R_ha".into(),
                    cols: None,
                    query: select_from(&["H", "E"]),
                }],
            }],
            union: UnionMode::ByUpdate(None),
            max_recursion: Some(15),
            final_select: select_from(&["H"]),
        };
        assert!(w.is_recursive_subquery(&w.subqueries[0]));
    }

    #[test]
    fn recursion_through_subquery_in_where_detected() {
        let mut s = select_from(&["V"]);
        s.where_clause = Some(Expr::In {
            needle: Box::new(Expr::Col("ID".into())),
            subquery: Box::new(select_from(&["Topo"])),
            negated: true,
        });
        let w = WithPlus {
            rec_name: "Topo".into(),
            rec_cols: vec!["ID".into()],
            subqueries: vec![Subquery {
                select: s,
                computed_by: vec![],
            }],
            union: UnionMode::All,
            max_recursion: None,
            final_select: select_from(&["Topo"]),
        };
        assert!(w.is_recursive_subquery(&w.subqueries[0]));
    }
}
