//! Recursive-descent parser for the with+ dialect (Section 6, Fig. 4).
//!
//! The accepted grammar covers every program in the paper: Fig. 3
//! (PageRank), Fig. 5 (TopoSort), Fig. 6 (HITS), Fig. 9 (the SQL'99
//! PageRank with `partition by` + `distinct`), plus plain one-shot SELECTs.

use crate::ast::*;
use crate::error::{Result, WithPlusError};
use crate::lexer::{tokenize, Token};
use aio_algebra::{AggFunc, BinOp, UnaryOp};
use aio_storage::Value;

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Keywords that terminate an alias-free expression context.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "union", "all", "update", "maxrecursion",
    "computed", "left", "full", "outer", "inner", "join", "on", "not", "in", "exists", "is", "having",
    "null", "and", "or", "as", "with", "recursive", "partition", "over", "distinct", "when",
];

impl Parser {
    pub fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            toks: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.toks.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(WithPlusError::Parse {
            message: msg.to_string(),
            near: format!("{:?}", self.peek()),
        })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("expected keyword `{kw}`"))
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(&format!("expected {what}"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            _ => {
                self.pos -= 1;
                self.err("expected identifier")
            }
        }
    }

    fn ident_list_paren(&mut self) -> Result<Vec<String>> {
        self.expect(&Token::LParen, "`(`")?;
        let mut cols = vec![self.ident()?];
        while self.peek() == &Token::Comma {
            self.bump();
            cols.push(self.ident()?);
        }
        self.expect(&Token::RParen, "`)`")?;
        Ok(cols)
    }

    /// Parse either a full with+ statement or a bare SELECT.
    pub fn parse_statement(input: &str) -> Result<Statement> {
        let mut p = Parser::new(input)?;
        let stmt = if p.peek().is_kw("with") {
            Statement::WithPlus(p.parse_with_plus()?)
        } else {
            Statement::Select(p.parse_select()?)
        };
        if p.peek() == &Token::Semi {
            p.bump();
        }
        if p.peek() != &Token::Eof {
            return p.err("trailing input after statement");
        }
        Ok(stmt)
    }

    pub fn parse_with_plus(&mut self) -> Result<WithPlus> {
        self.expect_kw("with")?;
        self.eat_kw("recursive");
        let rec_name = self.ident()?;
        let rec_cols = self.ident_list_paren()?;
        self.expect_kw("as")?;
        self.expect(&Token::LParen, "`(` opening the with body")?;

        let mut subqueries = vec![self.parse_subquery()?];
        let mut union = UnionMode::All;
        let mut union_seen = false;
        let mut max_recursion = None;

        loop {
            if self.eat_kw("union") {
                if self.eat_kw("all") {
                    if union_seen && union != UnionMode::All {
                        return self.err("cannot mix union all with union by update");
                    }
                    union = UnionMode::All;
                } else if self.eat_kw("by") {
                    self.expect_kw("update")?;
                    if union_seen {
                        return self.err("union by update may appear only once");
                    }
                    // optional key columns (bare idents, not parenthesized)
                    let mut keys = Vec::new();
                    while matches!(self.peek(), Token::Ident(s) if !is_reserved(s)) {
                        keys.push(self.ident()?);
                        if self.peek() == &Token::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    union = UnionMode::ByUpdate(if keys.is_empty() { None } else { Some(keys) });
                } else {
                    if union_seen && union != UnionMode::Distinct {
                        return self.err("cannot mix union with union by update");
                    }
                    union = UnionMode::Distinct;
                }
                union_seen = true;
                subqueries.push(self.parse_subquery()?);
            } else if self.eat_kw("maxrecursion") {
                match self.bump() {
                    Token::Int(n) if (0..=32_767).contains(&n) => {
                        max_recursion = Some(n as usize)
                    }
                    _ => return self.err("maxrecursion takes an integer in 0..=32767"),
                }
            } else {
                break;
            }
        }
        self.expect(&Token::RParen, "`)` closing the with body")?;
        let final_select = self.parse_select()?;
        Ok(WithPlus {
            rec_name,
            rec_cols,
            subqueries,
            union,
            max_recursion,
            final_select,
        })
    }

    /// `( select [computed by ...] )` or a bare select.
    fn parse_subquery(&mut self) -> Result<Subquery> {
        let parenthesized = self.peek() == &Token::LParen;
        if parenthesized {
            self.bump();
        }
        let select = self.parse_select()?;
        let mut computed_by = Vec::new();
        if self.eat_kw("computed") {
            self.expect_kw("by")?;
            loop {
                let name = self.ident()?;
                let cols = if self.peek() == &Token::LParen {
                    Some(self.ident_list_paren()?)
                } else {
                    None
                };
                self.expect_kw("as")?;
                let query = self.parse_select()?;
                computed_by.push(ComputedDef { name, cols, query });
                if self.peek() == &Token::Semi {
                    self.bump();
                    // allow a trailing `;` before the closing paren
                    if self.peek() == &Token::RParen || self.peek().is_kw("union") {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
        if parenthesized {
            self.expect(&Token::RParen, "`)` closing subquery")?;
        }
        Ok(Subquery {
            select,
            computed_by,
        })
    }

    pub fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        // `select from R` (Fig. 5/6 use it) means `select *`
        if !self.peek().is_kw("from") {
            items.push(self.parse_select_item()?);
            while self.peek() == &Token::Comma {
                self.bump();
                items.push(self.parse_select_item()?);
            }
        } else {
            items.push(SelectItem {
                expr: Expr::Col("*".into()),
                alias: None,
            });
        }
        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_item()?];
        while self.peek() == &Token::Comma {
            self.bump();
            from.push(self.parse_from_item()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek().is_kw("group") {
            self.bump();
            self.expect_kw("by")?;
            group_by.push(self.parse_colref_string()?);
            while self.peek() == &Token::Comma {
                self.bump();
                group_by.push(self.parse_colref_string()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == &Token::Star {
            self.bump();
            return Ok(SelectItem {
                expr: Expr::Col("*".into()),
                alias: None,
            });
        }
        let expr = self.parse_expr()?;
        // `AS alias` and a bare unreserved identifier both name the item
        let alias = if self.eat_kw("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let mut item = self.parse_from_primary()?;
        loop {
            let kind = if self.peek().is_kw("left") {
                self.bump();
                self.eat_kw("outer");
                JoinKind::LeftOuter
            } else if self.peek().is_kw("full") {
                self.bump();
                self.eat_kw("outer");
                JoinKind::FullOuter
            } else if self.peek().is_kw("inner") {
                self.bump();
                JoinKind::Inner
            } else if self.peek().is_kw("join") {
                JoinKind::Inner
            } else {
                break;
            };
            self.expect_kw("join")?;
            let right = self.parse_from_primary()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            item = FromItem::Join {
                left: Box::new(item),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(item)
    }

    fn parse_from_primary(&mut self) -> Result<FromItem> {
        let name = self.ident()?;
        // `AS alias` and a bare unreserved identifier both name the item
        let alias = if self.eat_kw("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(FromItem::Table { name, alias })
    }

    /// A possibly-qualified column reference as a dotted string.
    fn parse_colref_string(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.peek() == &Token::Dot {
            self.bump();
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    // ---- expressions -------------------------------------------------

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut e = self.parse_and()?;
        while self.peek().is_kw("or") {
            self.bump();
            let r = self.parse_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut e = self.parse_not()?;
        while self.peek().is_kw("and") {
            self.bump();
            let r = self.parse_not()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.peek().is_kw("not") && !self.peek2().is_kw("exists") && !self.peek2().is_kw("in")
        {
            self.bump();
            let e = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(e)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        // [NOT] EXISTS (select)
        if self.peek().is_kw("exists")
            || (self.peek().is_kw("not") && self.peek2().is_kw("exists"))
        {
            let negated = self.eat_kw("not");
            self.expect_kw("exists")?;
            self.expect(&Token::LParen, "`(`")?;
            let sub = self.parse_select()?;
            self.expect(&Token::RParen, "`)`")?;
            return Ok(Expr::Exists {
                subquery: Box::new(sub),
                negated,
            });
        }
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let op = if negated {
                UnaryOp::IsNotNull
            } else {
                UnaryOp::IsNull
            };
            return Ok(Expr::Unary(op, Box::new(left)));
        }
        // [NOT] IN (select)
        if self.peek().is_kw("in") || (self.peek().is_kw("not") && self.peek2().is_kw("in")) {
            let negated = self.eat_kw("not");
            self.expect_kw("in")?;
            // the paper's Fig. 3/5 omit parentheses around the subquery —
            // accept both `in (select …)` and `in select …`
            let parenthesized = self.peek() == &Token::LParen;
            if parenthesized {
                self.bump();
            }
            let sub = self.parse_select()?;
            if parenthesized {
                self.expect(&Token::RParen, "`)`")?;
            }
            return Ok(Expr::In {
                needle: Box::new(left),
                subquery: Box::new(sub),
                negated,
            });
        }
        let op = match self.peek() {
            Token::Eq => Some(BinOp::Eq),
            Token::Ne => Some(BinOp::Ne),
            Token::Lt => Some(BinOp::Lt),
            Token::Le => Some(BinOp::Le),
            Token::Gt => Some(BinOp::Gt),
            Token::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut e = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.parse_multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.parse_unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek() == &Token::Minus {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Token::Float(f) => Ok(Expr::Lit(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Lit(Value::text(s))),
            Token::Param(p) => Ok(Expr::Param(p)),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(name) if name.eq_ignore_ascii_case("null") => {
                Ok(Expr::Lit(Value::Null))
            }
            Token::Ident(name) => {
                if self.peek() == &Token::LParen {
                    return self.parse_call(name);
                }
                if self.peek() == &Token::Dot {
                    self.bump();
                    let col = self.ident()?;
                    return Ok(Expr::Col(format!("{name}.{col}")));
                }
                Ok(Expr::Col(name))
            }
            other => {
                self.pos -= 1;
                let _ = other;
                self.err("expected expression")
            }
        }
    }

    fn parse_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen, "`(`")?;
        // count(*)
        let mut args = Vec::new();
        if self.peek() == &Token::Star && name.eq_ignore_ascii_case("count") {
            self.bump();
            args.push(Expr::Lit(Value::Int(1)));
        } else if self.peek() != &Token::RParen {
            args.push(self.parse_expr()?);
            while self.peek() == &Token::Comma {
                self.bump();
                args.push(self.parse_expr()?);
            }
        }
        self.expect(&Token::RParen, "`)`")?;
        if let Some(func) = AggFunc::from_name(&name) {
            let arg = args
                .into_iter()
                .next()
                .ok_or_else(|| WithPlusError::Parse {
                    message: format!("{name}() needs an argument"),
                    near: String::new(),
                })?;
            // optional OVER (PARTITION BY ...)
            let over = if self.peek().is_kw("over") {
                self.bump();
                self.expect(&Token::LParen, "`(`")?;
                self.expect_kw("partition")?;
                self.expect_kw("by")?;
                let mut cols = vec![self.parse_colref_string()?];
                while self.peek() == &Token::Comma {
                    self.bump();
                    cols.push(self.parse_colref_string()?);
                }
                self.expect(&Token::RParen, "`)`")?;
                Some(cols)
            } else {
                None
            };
            return Ok(Expr::Agg {
                func,
                arg: Box::new(arg),
                over_partition_by: over,
            });
        }
        Ok(Expr::Func(name, args))
    }
}

fn is_reserved(s: &str) -> bool {
    RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// A top-level statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    WithPlus(WithPlus),
    Select(SelectStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3: the paper's with+ PageRank, verbatim modulo `:c`/`:n`.
    const PAGERANK: &str = "\
with P(ID, W) as (
  (select R.ID, 0.0 from R)
  union by update ID
  (select S.T, :c * sum(W * ew) + (1 - :c) / :n from P, S
   where P.ID = S.F group by S.T)
  maxrecursion 10)
select ID, W from P";

    #[test]
    fn parses_fig3_pagerank() {
        let stmt = Parser::parse_statement(PAGERANK).unwrap();
        let Statement::WithPlus(w) = stmt else {
            panic!("expected with+")
        };
        assert_eq!(w.rec_name, "P");
        assert_eq!(w.rec_cols, vec!["ID", "W"]);
        assert_eq!(w.union, UnionMode::ByUpdate(Some(vec!["ID".into()])));
        assert_eq!(w.max_recursion, Some(10));
        assert_eq!(w.subqueries.len(), 2);
        let rec = &w.subqueries[1].select;
        assert_eq!(rec.group_by, vec!["S.T"]);
        assert!(matches!(
            rec.items[1].expr,
            Expr::Binary(BinOp::Add, _, _)
        ));
    }

    #[test]
    fn parses_union_by_update_without_keys() {
        let sql = "with P(ID) as ((select ID from V) union by update (select ID from P)) select ID from P";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(w.union, UnionMode::ByUpdate(None));
    }

    #[test]
    fn parses_computed_by_chain() {
        // Fig. 5 TopoSort skeleton
        let sql = "\
with Topo(ID, L) as (
  (select ID, 0 from V where ID not in (select E.T from E))
  union all
  (select ID, L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1 as select V.ID from V where ID not in (select ID from Topo);
     E_1 as select E.F, E.T from V_1, E where V_1.ID = E.F;
     T_n as select ID, L from V_1, L_n where ID not in (select T from E_1);))
select * from Topo";
        let Statement::WithPlus(w) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(w.subqueries.len(), 2);
        let rec = &w.subqueries[1];
        assert_eq!(rec.computed_by.len(), 4);
        assert_eq!(rec.computed_by[0].name, "L_n");
        assert_eq!(rec.computed_by[0].cols, Some(vec!["L".into()]));
        assert_eq!(rec.computed_by[3].name, "T_n");
        assert!(w.is_recursive_subquery(rec));
        assert!(!w.is_recursive_subquery(&w.subqueries[0]));
    }

    #[test]
    fn parses_left_outer_join_anti_pattern() {
        let sql = "select R.ID from R left outer join S on R.ID = S.ID where S.ID is null";
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            &s.from[0],
            FromItem::Join {
                kind: JoinKind::LeftOuter,
                ..
            }
        ));
        assert!(matches!(
            s.where_clause,
            Some(Expr::Unary(UnaryOp::IsNull, _))
        ));
    }

    #[test]
    fn parses_window_aggregate() {
        // Fig. 9's shape
        let sql = "select distinct E.T, 0.85 * (sum(P.W * ew) over (partition by E.T)) + 0.15, P.L + 1 from P, E where P.ID = E.F and P.L < 10";
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(s.distinct);
        fn find_window(e: &Expr) -> bool {
            match e {
                Expr::Agg {
                    over_partition_by: Some(_),
                    ..
                } => true,
                Expr::Binary(_, l, r) => find_window(l) || find_window(r),
                Expr::Unary(_, x) => find_window(x),
                Expr::Func(_, args) => args.iter().any(find_window),
                _ => false,
            }
        }
        assert!(find_window(&s.items[1].expr));
    }

    #[test]
    fn parses_count_star_and_funcs() {
        let sql = "select count(*), sqrt(coalesce(vw, 0.0)) from V group by ID";
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            s.items[0].expr,
            Expr::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
        assert!(matches!(&s.items[1].expr, Expr::Func(name, _) if name == "sqrt"));
    }

    #[test]
    fn alias_forms() {
        let sql = "select E.F as src, E.T dst from E as e1, E e2 where e1.T = e2.F";
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.items[0].alias.as_deref(), Some("src"));
        assert_eq!(s.items[1].alias.as_deref(), Some("dst"));
        assert!(
            matches!(&s.from[0], FromItem::Table { alias: Some(a), .. } if a == "e1")
        );
    }

    #[test]
    fn rejects_mixed_union_modes() {
        let sql = "with R(x) as ((select x from a) union by update x (select x from R) union all (select x from b)) select x from R";
        assert!(Parser::parse_statement(sql).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Parser::parse_statement("select x from t 42 extra").is_err());
    }

    #[test]
    fn not_exists_parses() {
        let sql = "select ID from V where not exists (select ID from E where F = 1)";
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            s.where_clause,
            Some(Expr::Exists { negated: true, .. })
        ));
    }
}
