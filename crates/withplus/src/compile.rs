//! Compilation: validated with+ AST → an executable PSM-style program.
//!
//! This is Algorithm 1 of the paper: build a local dependency graph per
//! subquery (the `computed by` part must be cycle-free), certify
//! XY-stratification (Theorem 5.1), then produce the procedure that the
//! interpreter in [`crate::psm`] runs — temp-table creation, per-iteration
//! `INSERT INTO … SELECT`, emptiness conditions `C_i`, and the union /
//! union-by-update step.

use crate::ast::{collect_select_tables, Subquery, UnionMode, WithPlus};
use crate::error::{Result, WithPlusError};
use crate::lower::{infer_output_names, lower_select, LowerCtx};
use crate::translate::DatalogGen;
use aio_algebra::Plan;
use aio_datalog::{is_xy_stratified, Program};

/// One body subquery, lowered: its computed-by materializations in
/// definition order, then the subquery plan itself.
#[derive(Clone, Debug)]
pub struct CompiledStep {
    /// `(relation name, declared column names, plan)`
    pub computed: Vec<(String, Vec<String>, Plan)>,
    pub plan: Plan,
}

/// A fully compiled with+ statement.
#[derive(Clone, Debug)]
pub struct CompiledWithPlus {
    pub rec_name: String,
    pub rec_cols: Vec<String>,
    pub init: Vec<CompiledStep>,
    pub recursive: Vec<CompiledStep>,
    pub union: UnionMode,
    pub max_recursion: Option<usize>,
    pub final_plan: Plan,
    /// `(table, bare column)` pairs the PSM procedure indexes when the
    /// profile builds indexes (Exp-A).
    pub index_specs: Vec<(String, String)>,
    /// The Theorem 5.1 DATALOG program (kept for inspection).
    pub datalog: Program,
}

/// Validate the Section 6 restrictions and compile.
pub fn compile(stmt: &WithPlus, ctx: &LowerCtx<'_>) -> Result<CompiledWithPlus> {
    validate_shape(stmt)?;

    let mut init = Vec::new();
    let mut recursive = Vec::new();
    let mut all_def_names: Vec<String> = Vec::new();
    for q in &stmt.subqueries {
        validate_computed_by(stmt, q)?;
        let step = compile_subquery(stmt, q, ctx)?;
        for (name, _, _) in &step.computed {
            all_def_names.push(name.clone());
        }
        if stmt.is_recursive_subquery(q) {
            recursive.push(step);
        } else {
            init.push(step);
        }
    }

    if init.is_empty() {
        return Err(WithPlusError::Restriction(
            "the with body needs at least one initial subquery".into(),
        ));
    }
    if matches!(stmt.union, UnionMode::ByUpdate(_)) && recursive.len() != 1 {
        return Err(WithPlusError::Restriction(format!(
            "union by update requires exactly one recursive subquery, found {}",
            recursive.len()
        )));
    }
    if let UnionMode::ByUpdate(Some(keys)) = &stmt.union {
        for k in keys {
            if !stmt.rec_cols.iter().any(|c| c.eq_ignore_ascii_case(k)) {
                return Err(WithPlusError::Restriction(format!(
                    "union by update key {k} is not a column of {}",
                    stmt.rec_name
                )));
            }
        }
    }

    // Theorem 5.1: lower the recursive machinery to DATALOG and test
    // XY-stratification.
    let mut gen = DatalogGen::new(&stmt.rec_name, &all_def_names);
    let mut delta_atoms = Vec::new();
    for step in &recursive {
        for (name, _, plan) in &step.computed {
            gen.emit_def(name, plan);
        }
        delta_atoms.push(gen.emit(&step.plan));
    }
    let recs = gen.recursive_predicates();
    let datalog = gen.close(&stmt.union, delta_atoms);
    match is_xy_stratified(&datalog, &recs) {
        Ok(true) => {}
        Ok(false) => {
            return Err(WithPlusError::NotXyStratified(format!(
                "bi-state program is not stratified:\n{datalog}"
            )))
        }
        Err(v) => return Err(WithPlusError::NotXyStratified(v.to_string())),
    }

    let final_plan = lower_select(&stmt.final_select, ctx)?;

    // Index specs: every (table, column) used as an equi-join key against a
    // direct scan, gathered across all plans.
    let mut index_specs = Vec::new();
    for step in init.iter().chain(recursive.iter()) {
        for (_, _, p) in &step.computed {
            collect_index_specs(p, &mut index_specs);
        }
        collect_index_specs(&step.plan, &mut index_specs);
    }
    collect_index_specs(&final_plan, &mut index_specs);
    index_specs.sort();
    index_specs.dedup();

    Ok(CompiledWithPlus {
        rec_name: stmt.rec_name.clone(),
        rec_cols: stmt.rec_cols.clone(),
        init,
        recursive,
        union: stmt.union.clone(),
        max_recursion: stmt.max_recursion,
        final_plan,
        index_specs,
        datalog,
    })
}

fn validate_shape(stmt: &WithPlus) -> Result<()> {
    if stmt.rec_cols.is_empty() {
        return Err(WithPlusError::Restriction(
            "the recursive relation needs at least one column".into(),
        ));
    }
    let mut seen = Vec::new();
    for c in &stmt.rec_cols {
        if seen.iter().any(|s: &String| s.eq_ignore_ascii_case(c)) {
            return Err(WithPlusError::Restriction(format!(
                "duplicate column {c} in recursive relation"
            )));
        }
        seen.push(c.clone());
    }
    Ok(())
}

/// The local dependency graph of a subquery's computed-by definitions must
/// be cycle-free: a definition may reference only base tables, the
/// recursive relation, and *earlier* definitions (Section 6).
fn validate_computed_by(stmt: &WithPlus, q: &Subquery) -> Result<()> {
    let mut defined: Vec<String> = Vec::new();
    for d in &q.computed_by {
        if defined.iter().any(|n| n.eq_ignore_ascii_case(&d.name))
            || d.name.eq_ignore_ascii_case(&stmt.rec_name)
        {
            return Err(WithPlusError::Restriction(format!(
                "computed by defines {} twice (or shadows the recursive relation)",
                d.name
            )));
        }
        let mut refs = Vec::new();
        collect_select_tables(&d.query, &mut refs);
        for r in &refs {
            let is_def_name = q
                .computed_by
                .iter()
                .any(|x| x.name.eq_ignore_ascii_case(r));
            if is_def_name && !defined.iter().any(|n| n.eq_ignore_ascii_case(r)) {
                return Err(WithPlusError::Restriction(format!(
                    "computed by is cyclic: {} references {} before it is defined",
                    d.name, r
                )));
            }
        }
        defined.push(d.name.clone());
    }
    Ok(())
}

fn compile_subquery(
    stmt: &WithPlus,
    q: &Subquery,
    ctx: &LowerCtx<'_>,
) -> Result<CompiledStep> {
    let mut computed = Vec::new();
    for d in &q.computed_by {
        let cols = match &d.cols {
            Some(c) => c.clone(),
            None => infer_output_names(&d.query),
        };
        let plan = lower_select(&d.query, ctx)?;
        computed.push((d.name.clone(), cols, plan));
    }
    let plan = lower_select(&q.select, ctx)?;
    // arity check against the recursive relation (star passes through)
    let is_star = q.select.items.len() == 1
        && matches!(&q.select.items[0].expr, crate::ast::Expr::Col(c) if c == "*");
    if !is_star && q.select.items.len() != stmt.rec_cols.len() {
        return Err(WithPlusError::Restriction(format!(
            "subquery produces {} columns but {} has {}",
            q.select.items.len(),
            stmt.rec_name,
            stmt.rec_cols.len()
        )));
    }
    Ok(CompiledStep { computed, plan })
}

/// Collect `(table, bare column)` index candidates: join keys whose side is
/// a direct scan.
fn collect_index_specs(plan: &Plan, out: &mut Vec<(String, String)>) {
    fn scan_target(p: &Plan) -> Option<(String, String)> {
        match p {
            Plan::Scan { table, alias } => Some((
                table.clone(),
                alias.clone().unwrap_or_else(|| table.clone()),
            )),
            _ => None,
        }
    }
    let note = |child: &Plan, refs: Vec<&String>, out: &mut Vec<(String, String)>| {
        if let Some((table, alias)) = scan_target(child) {
            for r in refs {
                let bare = match r.split_once('.') {
                    Some((q, c)) if q.eq_ignore_ascii_case(&alias) => c.to_string(),
                    Some(_) => continue,
                    None => r.clone(),
                };
                out.push((table.to_ascii_lowercase(), bare));
            }
        }
    };
    match plan {
        Plan::Join {
            left, right, on, ..
        }
        | Plan::AntiJoin {
            left, right, on, ..
        }
        | Plan::SemiJoin { left, right, on } => {
            note(left, on.iter().map(|(l, _)| l).collect(), out);
            note(right, on.iter().map(|(_, r)| r).collect(), out);
            collect_index_specs(left, out);
            collect_index_specs(right, out);
        }
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Window { input, .. }
        | Plan::Distinct(input) => collect_index_specs(input, out),
        Plan::Product { left, right }
        | Plan::UnionAll { left, right }
        | Plan::Union { left, right }
        | Plan::Difference { left, right } => {
            collect_index_specs(left, out);
            collect_index_specs(right, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{Parser, Statement};
    use aio_algebra::ops::AntiJoinImpl;
    use aio_storage::Value;
    use std::collections::HashMap;

    fn compile_sql(sql: &str, params: &[(&str, Value)]) -> Result<CompiledWithPlus> {
        let Statement::WithPlus(w) = Parser::parse_statement(sql)? else {
            panic!("expected with+")
        };
        let map: HashMap<String, Value> = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let ctx = LowerCtx::new(&map, AntiJoinImpl::LeftOuterNull);
        compile(&w, &ctx)
    }

    const PAGERANK: &str = "\
with P(ID, W) as (
  (select V.ID, 0.0 from V)
  union by update ID
  (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E
   where P.ID = E.F group by E.T)
  maxrecursion 15)
select ID, W from P";

    #[test]
    fn pagerank_compiles_and_is_xy_stratified() {
        let c = compile_sql(
            PAGERANK,
            &[("c", Value::Float(0.85)), ("n", Value::Float(100.0))],
        )
        .unwrap();
        assert_eq!(c.init.len(), 1);
        assert_eq!(c.recursive.len(), 1);
        assert_eq!(c.max_recursion, Some(15));
        assert!(c
            .index_specs
            .contains(&("e".to_string(), "F".to_string())));
        let text = c.datalog.to_string();
        assert!(text.contains("P(s(T)) :-"), "{text}");
    }

    #[test]
    fn union_by_update_with_two_recursive_subqueries_rejected() {
        let sql = "\
with P(ID) as (
  (select ID from V)
  union by update ID
  (select P.ID from P)
  union by update ID
  (select P.ID from P))
select ID from P";
        // parser already rejects double union-by-update
        assert!(compile_sql(sql, &[]).is_err());
    }

    #[test]
    fn cyclic_computed_by_rejected() {
        let sql = "\
with R(ID) as (
  (select ID from V)
  union all
  (select ID from A
   computed by
     A as select ID from B;
     B as select ID from R;))
select ID from R";
        let err = compile_sql(sql, &[]).unwrap_err();
        assert!(matches!(err, WithPlusError::Restriction(m) if m.contains("cyclic")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let sql = "\
with R(ID, W) as (
  (select ID from V)
  union all
  (select R.ID, R.W from R))
select ID from R";
        assert!(compile_sql(sql, &[]).is_err());
    }

    #[test]
    fn missing_initial_subquery_rejected() {
        let sql = "\
with R(ID) as (
  (select R.ID from R))
select ID from R";
        let err = compile_sql(sql, &[]).unwrap_err();
        assert!(matches!(err, WithPlusError::Restriction(m) if m.contains("initial")));
    }

    #[test]
    fn toposort_compiles(){
        let sql = "\
with Topo(ID, L) as (
  (select V.ID, 0 from V where V.ID not in (select E.T from E))
  union all
  (select T_n.ID, T_n.L from T_n
   computed by
     L_n(L) as select max(Topo.L) + 1 from Topo;
     V_1(ID) as select V.ID from V where V.ID not in (select Topo.ID from Topo);
     E_1(F, T) as select E.F, E.T from V_1, E where V_1.ID = E.F;
     T_n(ID, L) as select V_1.ID, L_n.L from V_1, L_n where V_1.ID not in (select E_1.T from E_1);))
select * from Topo";
        let c = compile_sql(sql, &[]).unwrap();
        assert_eq!(c.recursive.len(), 1);
        assert_eq!(c.recursive[0].computed.len(), 4);
        assert_eq!(c.recursive[0].computed[0].1, vec!["L"]);
    }
}
