//! The SQL'99 `WITH` baseline and the Table 1 feature matrix.
//!
//! Section 3 of the paper surveys what the recursive `with` clause of
//! PostgreSQL 9.4, IBM DB2 10.5 and Oracle 11gR2 actually accepts
//! (Table 1). This module encodes that matrix, uses it to *gate* queries —
//! reproducing each system's rejections — and executes the accepted ones
//! with SQL'99 semantics (linear recursion, semi-naive working table,
//! monotonic queries only). It is the `with` side of the with-vs-with+
//! comparisons (Figs. 9, 12, 13).

use crate::ast::{collect_select_tables, Expr, SelectStmt, UnionMode, WithPlus};
use crate::compile::compile;
use crate::error::{Result, WithPlusError};
use crate::lower::LowerCtx;
use crate::psm::{PsmRunner, QueryResult};
use aio_algebra::ops::{AntiJoinImpl, UbuImpl};
use aio_algebra::{db2_like, oracle_like, postgres_like, EngineProfile};
use aio_storage::{Catalog, Value};
use std::collections::HashMap;
use std::fmt;

/// The three systems of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sql99System {
    PostgreSql,
    Db2,
    Oracle,
}

impl Sql99System {
    pub const ALL: [Sql99System; 3] =
        [Sql99System::PostgreSql, Sql99System::Db2, Sql99System::Oracle];

    pub fn name(self) -> &'static str {
        match self {
            Sql99System::PostgreSql => "PostgreSQL",
            Sql99System::Db2 => "DB2",
            Sql99System::Oracle => "Oracle",
        }
    }

    /// The engine profile that emulates this system's physical behaviour.
    pub fn profile(self) -> EngineProfile {
        match self {
            Sql99System::PostgreSql => postgres_like(true),
            Sql99System::Db2 => db2_like(),
            Sql99System::Oracle => oracle_like(),
        }
    }
}

/// One cell of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Support {
    Yes,
    No,
    /// "—": not applicable.
    Na,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Support::Yes => "yes",
            Support::No => "no",
            Support::Na => "-",
        })
    }
}

/// The rows of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feature {
    LinearRecursion,
    NonlinearRecursion,
    MutualRecursion,
    MultipleInitialQueries,
    MultipleRecursiveQueries,
    SetOpsBetweenInitialQueries,
    UnionAcrossInitialAndRecursive,
    SetOpsBetweenRecursiveQueries,
    Negation,
    AggregateFunctions,
    GroupByHaving,
    PartitionBy,
    Distinct,
    GeneralFunctions,
    AnalyticalFunctions,
    SubqueriesWithoutRecursiveRef,
    SubqueriesWithRecursiveRef,
    InfiniteLoopDetection,
    CycleDetection,
}

impl Feature {
    pub const ALL: [Feature; 19] = [
        Feature::LinearRecursion,
        Feature::NonlinearRecursion,
        Feature::MutualRecursion,
        Feature::MultipleInitialQueries,
        Feature::MultipleRecursiveQueries,
        Feature::SetOpsBetweenInitialQueries,
        Feature::UnionAcrossInitialAndRecursive,
        Feature::SetOpsBetweenRecursiveQueries,
        Feature::Negation,
        Feature::AggregateFunctions,
        Feature::GroupByHaving,
        Feature::PartitionBy,
        Feature::Distinct,
        Feature::GeneralFunctions,
        Feature::AnalyticalFunctions,
        Feature::SubqueriesWithoutRecursiveRef,
        Feature::SubqueriesWithRecursiveRef,
        Feature::InfiniteLoopDetection,
        Feature::CycleDetection,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Feature::LinearRecursion => "Linear recursion",
            Feature::NonlinearRecursion => "Nonlinear recursion",
            Feature::MutualRecursion => "Mutual recursion",
            Feature::MultipleInitialQueries => "Multiple queries: initial step",
            Feature::MultipleRecursiveQueries => "Multiple queries: recursive step",
            Feature::SetOpsBetweenInitialQueries => "Set ops between initial queries",
            Feature::UnionAcrossInitialAndRecursive => {
                "union across initial & recursive queries"
            }
            Feature::SetOpsBetweenRecursiveQueries => "Set ops between recursive queries",
            Feature::Negation => "Negation",
            Feature::AggregateFunctions => "Aggregate functions",
            Feature::GroupByHaving => "group by, having",
            Feature::PartitionBy => "partition by",
            Feature::Distinct => "distinct",
            Feature::GeneralFunctions => "General functions",
            Feature::AnalyticalFunctions => "Analytical functions",
            Feature::SubqueriesWithoutRecursiveRef => "Subqueries without recursive ref",
            Feature::SubqueriesWithRecursiveRef => "Subqueries with recursive ref",
            Feature::InfiniteLoopDetection => "Infinite loop detection",
            Feature::CycleDetection => "Cycle detection",
        }
    }
}

/// Table 1 verbatim.
pub struct FeatureMatrix;

impl FeatureMatrix {
    pub fn supports(system: Sql99System, feature: Feature) -> Support {
        use Feature::*;
        use Sql99System::*;
        use Support::*;
        match (feature, system) {
            (LinearRecursion, _) => Yes,
            (NonlinearRecursion, _) | (MutualRecursion, _) => No,
            (MultipleInitialQueries, _) => Yes,
            (MultipleRecursiveQueries, Db2) => Na, // "-" in Table 1
            (MultipleRecursiveQueries, _) => No,
            (SetOpsBetweenInitialQueries, _) => Yes,
            (UnionAcrossInitialAndRecursive, PostgreSql) => Yes,
            (UnionAcrossInitialAndRecursive, _) => No,
            (SetOpsBetweenRecursiveQueries, PostgreSql | Oracle) => Na,
            (SetOpsBetweenRecursiveQueries, Db2) => No,
            (Negation, _) | (AggregateFunctions, _) | (GroupByHaving, _) => No,
            (PartitionBy, _) => Yes,
            (Distinct, PostgreSql) => Yes,
            (Distinct, _) => No,
            (GeneralFunctions, Db2) => No,
            (GeneralFunctions, _) => Yes,
            (AnalyticalFunctions, Db2) => No,
            (AnalyticalFunctions, _) => Yes,
            (SubqueriesWithoutRecursiveRef, _) => Yes,
            (SubqueriesWithRecursiveRef, _) => No,
            (InfiniteLoopDetection, Oracle) => Yes,
            (InfiniteLoopDetection, _) => No,
            (CycleDetection, Oracle) => Yes,
            (CycleDetection, _) => No,
        }
    }

    /// Render Table 1 as aligned text (the `repro table1` output).
    pub fn render() -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>10} {:>6} {:>6}\n",
            "Feature", "PostgreSQL", "DB2", "Oracle"
        ));
        for f in Feature::ALL {
            out.push_str(&format!(
                "{:<42} {:>10} {:>6} {:>6}\n",
                f.label(),
                FeatureMatrix::supports(Sql99System::PostgreSql, f),
                FeatureMatrix::supports(Sql99System::Db2, f),
                FeatureMatrix::supports(Sql99System::Oracle, f),
            ));
        }
        out
    }
}

/// SQL'99 `WITH` executor, gated by the Table 1 matrix of one system.
pub struct Sql99Engine {
    pub system: Sql99System,
}

impl Sql99Engine {
    pub fn new(system: Sql99System) -> Sql99Engine {
        Sql99Engine { system }
    }

    fn reject(&self, feature: Feature) -> WithPlusError {
        WithPlusError::FeatureNotSupported {
            feature: feature.label().to_string(),
            system: self.system.name().to_string(),
        }
    }

    fn check(&self, feature: Feature) -> Result<()> {
        match FeatureMatrix::supports(self.system, feature) {
            Support::Yes | Support::Na => Ok(()),
            Support::No => Err(self.reject(feature)),
        }
    }

    /// Validate a statement against Table 1 (the paper's Section 3 rules).
    pub fn validate(&self, w: &WithPlus) -> Result<()> {
        // with+-only syntax is always out
        if matches!(w.union, UnionMode::ByUpdate(_)) {
            return Err(WithPlusError::FeatureNotSupported {
                feature: "union by update".into(),
                system: self.system.name().into(),
            });
        }
        for q in &w.subqueries {
            if !q.computed_by.is_empty() {
                return Err(WithPlusError::FeatureNotSupported {
                    feature: "computed by".into(),
                    system: self.system.name().into(),
                });
            }
        }
        let recursive: Vec<_> = w.recursive_subqueries();
        if recursive.len() > 1 {
            self.check(Feature::MultipleRecursiveQueries)?;
        }
        if w.union == UnionMode::Distinct {
            self.check(Feature::UnionAcrossInitialAndRecursive)?;
        }
        for q in &recursive {
            self.validate_recursive_select(&q.select, w)?;
        }
        Ok(())
    }

    fn validate_recursive_select(&self, s: &SelectStmt, w: &WithPlus) -> Result<()> {
        // linear recursion: at most one reference to R in FROM
        let mut from_tables = Vec::new();
        for f in &s.from {
            flatten_from(f, &mut from_tables);
        }
        let rec_refs = from_tables
            .iter()
            .filter(|t| t.eq_ignore_ascii_case(&w.rec_name))
            .count();
        if rec_refs > 1 {
            self.check(Feature::NonlinearRecursion)?;
        }
        if s.distinct {
            self.check(Feature::Distinct)?;
        }
        if !s.group_by.is_empty() || s.having.is_some() {
            self.check(Feature::GroupByHaving)?;
        }
        let mut saw_plain_agg = false;
        let mut saw_window = false;
        let mut saw_func = false;
        let mut saw_negation = false;
        let mut rec_subquery = false;
        let mut walk = |e: &Expr| {
            visit_expr(e, &mut |x| match x {
                Expr::Agg {
                    over_partition_by: Some(_),
                    ..
                } => saw_window = true,
                Expr::Agg {
                    over_partition_by: None,
                    ..
                } => saw_plain_agg = true,
                Expr::Func(..) => saw_func = true,
                Expr::In {
                    negated, subquery, ..
                }
                | Expr::Exists {
                    negated, subquery, ..
                } => {
                    if *negated {
                        saw_negation = true;
                    }
                    let mut tabs = Vec::new();
                    collect_select_tables(subquery, &mut tabs);
                    if tabs.iter().any(|t| t.eq_ignore_ascii_case(&w.rec_name)) {
                        rec_subquery = true;
                    }
                }
                _ => {}
            })
        };
        for it in &s.items {
            walk(&it.expr);
        }
        if let Some(wc) = &s.where_clause {
            walk(wc);
        }
        if saw_plain_agg {
            self.check(Feature::AggregateFunctions)?;
        }
        if saw_window {
            self.check(Feature::PartitionBy)?;
            self.check(Feature::AnalyticalFunctions)?;
        }
        if saw_func {
            self.check(Feature::GeneralFunctions)?;
        }
        if saw_negation {
            self.check(Feature::Negation)?;
        }
        if rec_subquery {
            self.check(Feature::SubqueriesWithRecursiveRef)?;
        }
        Ok(())
    }

    /// Validate then execute with SQL'99 semantics (the PSM runner's
    /// `union all` / `union` path *is* the semi-naive working-table
    /// evaluation of SQL'99).
    pub fn execute(
        &self,
        catalog: &mut Catalog,
        w: &WithPlus,
        params: &HashMap<String, Value>,
    ) -> Result<QueryResult> {
        self.validate(w)?;
        let profile = self.system.profile();
        let ctx = LowerCtx::new(params, AntiJoinImpl::LeftOuterNull);
        let compiled = compile(w, &ctx)?;
        let mut runner = PsmRunner::new(catalog, &profile, UbuImpl::FullOuterJoin);
        runner.run(&compiled)
    }
}

fn flatten_from(f: &crate::ast::FromItem, out: &mut Vec<String>) {
    match f {
        crate::ast::FromItem::Table { name, .. } => out.push(name.clone()),
        crate::ast::FromItem::Join { left, right, .. } => {
            flatten_from(left, out);
            flatten_from(right, out);
        }
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary(_, x) => visit_expr(x, f),
        Expr::Binary(_, l, r) => {
            visit_expr(l, f);
            visit_expr(r, f);
        }
        Expr::Func(_, args) => args.iter().for_each(|a| visit_expr(a, f)),
        Expr::Agg { arg, .. } => visit_expr(arg, f),
        Expr::In { needle, .. } => visit_expr(needle, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{Parser, Statement};

    fn parse(sql: &str) -> WithPlus {
        match Parser::parse_statement(sql).unwrap() {
            Statement::WithPlus(w) => w,
            _ => panic!("expected with"),
        }
    }

    #[test]
    fn matrix_matches_table1_spot_checks() {
        use Feature::*;
        use Sql99System::*;
        use Support::*;
        assert_eq!(FeatureMatrix::supports(PostgreSql, LinearRecursion), Yes);
        assert_eq!(FeatureMatrix::supports(Oracle, NonlinearRecursion), No);
        assert_eq!(FeatureMatrix::supports(Db2, MultipleRecursiveQueries), Na);
        assert_eq!(
            FeatureMatrix::supports(PostgreSql, UnionAcrossInitialAndRecursive),
            Yes
        );
        assert_eq!(
            FeatureMatrix::supports(Db2, UnionAcrossInitialAndRecursive),
            No
        );
        assert_eq!(FeatureMatrix::supports(PostgreSql, Distinct), Yes);
        assert_eq!(FeatureMatrix::supports(Oracle, Distinct), No);
        assert_eq!(FeatureMatrix::supports(Db2, GeneralFunctions), No);
        assert_eq!(FeatureMatrix::supports(Oracle, CycleDetection), Yes);
        assert_eq!(FeatureMatrix::supports(PostgreSql, CycleDetection), No);
        assert_eq!(FeatureMatrix::supports(Db2, Negation), No);
    }

    #[test]
    fn render_has_all_rows() {
        let t = FeatureMatrix::render();
        for f in Feature::ALL {
            assert!(t.contains(f.label()), "{}", f.label());
        }
    }

    #[test]
    fn union_by_update_rejected_everywhere() {
        let w = parse(
            "with P(ID) as ((select ID from V) union by update ID (select P.ID from P)) select * from P",
        );
        for sys in Sql99System::ALL {
            assert!(Sql99Engine::new(sys).validate(&w).is_err(), "{}", sys.name());
        }
    }

    #[test]
    fn aggregation_in_recursion_rejected_everywhere() {
        let w = parse(
            "with P(ID, W) as ((select ID, vw from V) union all (select E.T, sum(P.W) from P, E where P.ID = E.F group by E.T)) select * from P",
        );
        for sys in Sql99System::ALL {
            let err = Sql99Engine::new(sys).validate(&w).unwrap_err();
            assert!(matches!(err, WithPlusError::FeatureNotSupported { .. }));
        }
    }

    #[test]
    fn nonlinear_rejected_everywhere() {
        let w = parse(
            "with D(F, T) as ((select E.F, E.T from E) union all (select D1.F, D2.T from D as D1, D as D2 where D1.T = D2.F)) select * from D",
        );
        for sys in Sql99System::ALL {
            assert!(Sql99Engine::new(sys).validate(&w).is_err());
        }
    }

    #[test]
    fn fig9_pagerank_only_on_postgres() {
        // distinct + partition by: PostgreSQL yes; Oracle fails distinct;
        // DB2 fails analytical functions (and distinct).
        let w = parse(
            "with P(ID, W, L) as (\
               (select V.ID, 0.0, 0 from V)\
               union all\
               (select distinct E.T, 0.85 * (sum(P.W * E.ew) over (partition by E.T)) + 0.15, P.L + 1 \
                from P, E where P.ID = E.F and P.L < 10))\
             select P.ID, P.W from P where P.L = 10",
        );
        assert!(Sql99Engine::new(Sql99System::PostgreSql).validate(&w).is_ok());
        assert!(Sql99Engine::new(Sql99System::Oracle).validate(&w).is_err());
        assert!(Sql99Engine::new(Sql99System::Db2).validate(&w).is_err());
    }

    #[test]
    fn plain_tc_accepted_everywhere() {
        let w = parse(
            "with TC(F, T) as ((select E.F, E.T from E) union all (select TC.F, E.T from TC, E where TC.T = E.F) maxrecursion 5) select * from TC",
        );
        for sys in Sql99System::ALL {
            assert!(Sql99Engine::new(sys).validate(&w).is_ok(), "{}", sys.name());
        }
    }

    #[test]
    fn subquery_with_recursive_ref_rejected() {
        let w = parse(
            "with R(ID) as ((select ID from V) union all (select V.ID from V where V.ID not in (select R.ID from R))) select * from R",
        );
        for sys in Sql99System::ALL {
            assert!(Sql99Engine::new(sys).validate(&w).is_err());
        }
    }
}
