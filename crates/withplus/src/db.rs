//! The `Database` facade: the object a user of the library holds.
//!
//! Wraps a catalog + engine profile and executes SQL text — one-shot
//! SELECTs and full with+ statements — through parse → validate/compile
//! (Theorem 5.1) → PSM interpretation.

use crate::compile::{compile, CompiledWithPlus};
use crate::error::{Result, WithPlusError};
use crate::lower::{lower_select, LowerCtx};
use crate::parser::{Parser, Statement};
use crate::psm::{PsmRunner, QueryResult, RunStats};
use aio_algebra::ops::{AntiJoinImpl, UbuImpl};
use aio_algebra::{optimize_plan, EngineProfile, Evaluator, Optimizer};
use aio_storage::{Catalog, Relation, Value};
use aio_trace::{Trace, Tracer};
use std::collections::HashMap;
use std::time::Instant;

/// What [`Database::explain_analyze`] returns: the query result, the
/// annotated-plan report, and the raw trace (exportable with
/// [`Trace::to_chrome_json`] / [`Trace::to_jsonl`]).
#[derive(Debug)]
pub struct ExplainOutput {
    pub result: QueryResult,
    pub report: String,
    pub trace: Trace,
}

/// Optimize every plan of a compiled statement at the profile's level.
/// Runs exactly once per statement, before the PSM loop — never per
/// iteration — so EXPLAIN ANALYZE can re-derive the executed plans from
/// the same (plan, statistics) inputs.
fn optimize_compiled(
    mut c: CompiledWithPlus,
    catalog: &Catalog,
    level: Optimizer,
) -> CompiledWithPlus {
    if level == Optimizer::Off {
        return c;
    }
    let opt = |p: &aio_algebra::Plan| optimize_plan(p, catalog, level);
    for step in c.init.iter_mut().chain(c.recursive.iter_mut()) {
        for (_, _, plan) in step.computed.iter_mut() {
            *plan = opt(plan);
        }
        step.plan = opt(&step.plan);
    }
    c.final_plan = opt(&c.final_plan);
    c
}

/// An embedded graph-capable relational database speaking with+.
pub struct Database {
    pub catalog: Catalog,
    pub profile: EngineProfile,
    /// Physical spelling of union-by-update (Tables 4 & 5). Default:
    /// `full outer join`, the winner of Exp-1.
    pub ubu_impl: UbuImpl,
    /// Physical spelling of anti-join (Tables 6 & 7). Default:
    /// `left outer join`, the paper's pick after Exp-1.
    pub anti_impl: AntiJoinImpl,
    params: HashMap<String, Value>,
    /// When set, every execution records hierarchical spans into it
    /// (per-operator, per-subquery, per-iteration). `None` (the default)
    /// costs one branch per plan node.
    tracer: Option<Tracer>,
}

impl Database {
    pub fn new(profile: EngineProfile) -> Database {
        Database {
            catalog: Catalog::new(),
            profile,
            ubu_impl: UbuImpl::FullOuterJoin,
            anti_impl: AntiJoinImpl::LeftOuterNull,
            params: HashMap::new(),
            tracer: None,
        }
    }

    /// Set the plan-optimization level (a shorthand for rebuilding the
    /// profile; [`Optimizer::Off`] keeps the paper's fixed Algorithm 1
    /// plans).
    pub fn set_optimizer(&mut self, level: Optimizer) {
        self.profile.optimizer = level;
    }

    /// Start recording spans for subsequent executions.
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::new());
    }

    /// Stop tracing and return everything recorded since
    /// [`Database::enable_tracing`] (`None` if tracing was never enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.take().map(Tracer::finish)
    }

    /// Is a tracer currently attached?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Bind a named parameter referenced as `:name` in SQL.
    pub fn set_param(&mut self, name: &str, value: impl Into<Value>) {
        self.params.insert(name.to_string(), value.into());
    }

    pub fn clear_params(&mut self) {
        self.params.clear();
    }

    /// Register a base table.
    pub fn create_table(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.catalog.create_table(name, rel)?;
        Ok(())
    }

    /// Parse, validate and compile a with+ statement without running it
    /// (exposes the Theorem 5.1 DATALOG program for inspection).
    pub fn prepare(&self, sql: &str) -> Result<CompiledWithPlus> {
        match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                compile(&w, &ctx)
            }
            Statement::Select(_) => Err(WithPlusError::Restriction(
                "prepare expects a with+ statement".into(),
            )),
        }
    }

    /// Execute SQL text: either a with+ statement or a one-shot SELECT.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let compiled = optimize_compiled(
                    compile(&w, &ctx)?,
                    &self.catalog,
                    self.profile.optimizer,
                );
                let mut runner = PsmRunner::new(&mut self.catalog, &self.profile, self.ubu_impl);
                runner.set_tracer(self.tracer.as_ref());
                runner.run(&compiled)
            }
            Statement::Select(s) => {
                let start = Instant::now();
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let plan =
                    optimize_plan(&lower_select(&s, &ctx)?, &self.catalog, self.profile.optimizer);
                let span = aio_trace::maybe_span(self.tracer.as_ref(), "query");
                if let Some(sp) = &span {
                    sp.field("plan", "select");
                }
                let mut ev =
                    Evaluator::with_tracer(&self.catalog, &self.profile, self.tracer.as_ref());
                let relation = ev.eval_root(&plan)?;
                drop(span);
                let stats = RunStats {
                    exec: ev.stats,
                    elapsed: start.elapsed(),
                    ..Default::default()
                };
                Ok(QueryResult { relation, stats })
            }
        }
    }

    /// Execute a pre-compiled with+ statement (benchmarks reuse this to
    /// exclude parse/compile time from the measured loop).
    pub fn run_compiled(&mut self, compiled: &CompiledWithPlus) -> Result<QueryResult> {
        let mut runner = PsmRunner::new(&mut self.catalog, &self.profile, self.ubu_impl);
        runner.set_tracer(self.tracer.as_ref());
        runner.run(compiled)
    }

    /// EXPLAIN ANALYZE: execute `sql` under a fresh tracer and return the
    /// result together with the plan tree annotated per node with
    /// invocation counts, output cardinalities and wall time, plus the raw
    /// trace for Perfetto/JSONL export. Any tracer previously attached with
    /// [`Database::enable_tracing`] is preserved (its recording pauses for
    /// this one statement).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<ExplainOutput> {
        self.explain_analyze_opts(sql, true)
    }

    /// [`Database::explain_analyze`] with wall-clock annotations optional —
    /// `timings: false` yields a deterministic report for snapshot tests.
    pub fn explain_analyze_opts(&mut self, sql: &str, timings: bool) -> Result<ExplainOutput> {
        let prev = self.tracer.replace(Tracer::new());
        let outcome = self.execute(sql);
        let trace = self
            .tracer
            .take()
            .map(Tracer::finish)
            .unwrap_or_default();
        self.tracer = prev;
        let result = outcome?;
        let report = match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let compiled = optimize_compiled(
                    compile(&w, &ctx)?,
                    &self.catalog,
                    self.profile.optimizer,
                );
                crate::explain::render_with_plus(&compiled, &result.stats, &trace, timings)
            }
            Statement::Select(s) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let plan =
                    optimize_plan(&lower_select(&s, &ctx)?, &self.catalog, self.profile.optimizer);
                crate::explain::render_select(&plan, &trace, timings)
            }
        };
        Ok(ExplainOutput {
            result,
            report,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_storage::{edge_schema, row};

    fn db_with_edges() -> Database {
        let mut db = Database::new(oracle_like());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        db
    }

    #[test]
    fn one_shot_select() {
        let mut db = db_with_edges();
        let out = db.execute("select E.F, E.T from E where E.F = 1").unwrap();
        assert_eq!(out.relation.len(), 1);
    }

    #[test]
    fn with_plus_end_to_end() {
        let mut db = db_with_edges();
        let out = db
            .execute(
                "with TC(F, T) as (\
                   (select E.F, E.T from E)\
                   union\
                   (select TC.F, E.T from TC, E where TC.T = E.F))\
                 select * from TC",
            )
            .unwrap();
        assert_eq!(out.relation.len(), 3); // (1,2),(2,3),(1,3)
    }

    #[test]
    fn params_flow_through() {
        let mut db = db_with_edges();
        db.set_param("w", 2.0);
        let out = db.execute("select E.F, :w * E.ew from E").unwrap();
        assert_eq!(out.relation.rows()[0][1].as_f64(), Some(2.0));
    }

    #[test]
    fn prepare_exposes_datalog() {
        let mut db = db_with_edges();
        db.set_param("c", 0.85);
        db.set_param("n", 2.0);
        let c = db
            .prepare(
                "with P(ID, W) as (\
                   (select E.F, 0.0 from E)\
                   union by update ID\
                   (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E \
                    where P.ID = E.F group by E.T)\
                   maxrecursion 3)\
                 select * from P",
            )
            .unwrap();
        assert!(c.datalog.to_string().contains(":-"));
    }

    #[test]
    fn explain_analyze_annotates_every_section() {
        let mut db = db_with_edges();
        let out = db
            .explain_analyze(
                "with TC(F, T) as (\
                   (select E.F, E.T from E)\
                   union\
                   (select TC.F, E.T from TC, E where TC.T = E.F))\
                 select * from TC",
            )
            .unwrap();
        assert_eq!(out.result.relation.len(), 3);
        out.trace.validate().unwrap();
        let r = &out.report;
        assert!(r.contains("EXPLAIN ANALYZE with+ TC"), "{r}");
        assert!(r.contains("-- init[0] (executions=1)"), "{r}");
        // 2 iterations ran the recursive subquery; delta drains on the 2nd
        assert!(r.contains("-- rec[0] (executions=2)"), "{r}");
        assert!(r.contains("-- final (executions=1)"), "{r}");
        assert!(r.contains("Join[Inner]"), "{r}");
        assert!(r.contains("time="), "{r}");
        assert!(r.contains("it   1: delta="), "{r}");
        assert!(r.contains("total: scanned="), "{r}");
        assert!(!r.contains("never executed"), "{r}");
        // Perfetto export is valid JSON with events
        let chrome = out.trace.to_chrome_json();
        let v = aio_trace::json::parse(&chrome).unwrap();
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        // tracing was transient: the db is not left tracing
        assert!(!db.tracing_enabled());
    }

    #[test]
    fn explain_analyze_select_and_determinism() {
        let mut db = db_with_edges();
        let a = db
            .explain_analyze_opts("select E.F, E.T from E where E.F = 1", false)
            .unwrap();
        assert!(a.report.contains("EXPLAIN ANALYZE select"), "{}", a.report);
        assert!(a.report.contains("Select"), "{}", a.report);
        assert!(!a.report.contains("time="), "{}", a.report);
        let b = db
            .explain_analyze_opts("select E.F, E.T from E where E.F = 1", false)
            .unwrap();
        assert_eq!(a.report, b.report, "timings-off report is deterministic");
    }

    #[test]
    fn enable_tracing_spans_multiple_statements() {
        let mut db = db_with_edges();
        db.enable_tracing();
        db.execute("select E.F from E").unwrap();
        db.execute("select E.T from E").unwrap();
        let trace = db.take_trace().unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.spans_named("query").count(), 2);
        assert!(db.take_trace().is_none());
    }

    #[test]
    fn parse_error_surfaces() {
        let mut db = db_with_edges();
        assert!(matches!(
            db.execute("selekt * from E"),
            Err(WithPlusError::Parse { .. })
        ));
    }
}
