//! The `Database` facade: the object a user of the library holds.
//!
//! Wraps a catalog + engine profile and executes SQL text — one-shot
//! SELECTs and full with+ statements — through parse → validate/compile
//! (Theorem 5.1) → PSM interpretation.

use crate::compile::{compile, CompiledWithPlus};
use crate::error::{Result, WithPlusError};
use crate::lower::{lower_select, LowerCtx};
use crate::parser::{Parser, Statement};
use crate::psm::{PsmRunner, QueryResult, RunStats};
use aio_algebra::ops::{AntiJoinImpl, UbuImpl};
use aio_algebra::{optimize_plan, EngineProfile, Evaluator, Optimizer};
use aio_storage::{
    open_catalog, Catalog, CheckpointStats, Column, DataType, InterruptedRun, RecoveryReport,
    Relation, Schema, StdVfs, Value, Vfs,
};
use aio_trace::{Trace, Tracer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// What [`Database::explain_analyze`] returns: the query result, the
/// annotated-plan report, and the raw trace (exportable with
/// [`Trace::to_chrome_json`] / [`Trace::to_jsonl`]).
#[derive(Debug)]
pub struct ExplainOutput {
    pub result: QueryResult,
    pub report: String,
    pub trace: Trace,
}

/// Optimize every plan of a compiled statement at the profile's level.
/// Runs exactly once per statement, before the PSM loop — never per
/// iteration — so EXPLAIN ANALYZE can re-derive the executed plans from
/// the same (plan, statistics) inputs.
pub(crate) fn optimize_compiled(
    mut c: CompiledWithPlus,
    catalog: &Catalog,
    level: Optimizer,
) -> CompiledWithPlus {
    if level == Optimizer::Off {
        return c;
    }
    let opt = |p: &aio_algebra::Plan| optimize_plan(p, catalog, level);
    for step in c.init.iter_mut().chain(c.recursive.iter_mut()) {
        for (_, _, plan) in step.computed.iter_mut() {
            *plan = opt(plan);
        }
        step.plan = opt(&step.plan);
    }
    c.final_plan = opt(&c.final_plan);
    c
}

/// Parameter bindings in a deterministic order for durable logging.
fn sorted_params(params: &HashMap<String, Value>) -> Vec<(String, Value)> {
    let mut v: Vec<(String, Value)> =
        params.iter().map(|(k, x)| (k.clone(), x.clone())).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Close a durable with+ run. On success the end-of-run commit must reach
/// disk; on failure it is best-effort — a dead log is exactly the state
/// crash recovery handles, and the original error wins.
fn finish_run(
    catalog: &mut Catalog,
    rec: &str,
    result: Result<QueryResult>,
) -> Result<QueryResult> {
    match result {
        Ok(out) => {
            catalog.wal_run_end(rec)?;
            Ok(out)
        }
        Err(e) => {
            let _ = catalog.wal_run_end(rec);
            Err(e)
        }
    }
}

/// Name of the self-queryable metrics system relation.
pub const METRICS_TABLE: &str = "aio_metrics";
/// Name of the self-queryable query-log system relation.
pub const QUERY_LOG_TABLE: &str = "aio_query_log";

/// `aio_metrics` as a relation: one row per registry sample, in
/// declaration order — exactly [`aio_metrics::MetricsRegistry::snapshot`].
pub(crate) fn metrics_relation(reg: &aio_metrics::MetricsRegistry) -> Relation {
    let schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("kind", DataType::Text),
        Column::new("value", DataType::Float),
        Column::new("help", DataType::Text),
    ]);
    let mut rel = Relation::new(schema);
    for s in reg.snapshot() {
        rel.rows_mut().push(
            vec![
                Value::from(s.name),
                Value::from(s.kind),
                Value::from(s.value),
                Value::from(s.help),
            ]
            .into_boxed_slice(),
        );
    }
    rel
}

/// `aio_query_log` as a relation: one row per retained [`QueryReport`],
/// oldest first.
///
/// [`QueryReport`]: aio_metrics::QueryReport
pub(crate) fn query_log_relation(reg: &aio_metrics::MetricsRegistry) -> Relation {
    let schema = Schema::new(vec![
        Column::new("seq", DataType::Int),
        Column::new("sql_hash", DataType::Text),
        Column::new("sql", DataType::Text),
        Column::new("wall_ms", DataType::Float),
        Column::new("rows_out", DataType::Int),
        Column::new("rows_scanned", DataType::Int),
        Column::new("iterations", DataType::Int),
        Column::new("peak_mem_bytes", DataType::Int),
        Column::new("trie_hits", DataType::Int),
        Column::new("trie_misses", DataType::Int),
        Column::new("stats_hits", DataType::Int),
        Column::new("stats_misses", DataType::Int),
        Column::new("wal_records", DataType::Int),
        Column::new("wal_bytes", DataType::Int),
        Column::new("par", DataType::Int),
        Column::new("exec", DataType::Text),
        Column::new("optimizer", DataType::Text),
        Column::new("session", DataType::Int),
        Column::new("generation", DataType::Int),
    ]);
    let mut rel = Relation::new(schema);
    for q in reg.query_log() {
        rel.rows_mut().push(
            vec![
                Value::from(q.seq as i64),
                Value::from(format!("{:016x}", q.sql_hash)),
                Value::from(q.sql),
                Value::from(q.wall_ms),
                Value::from(q.rows_out as i64),
                Value::from(q.rows_scanned as i64),
                Value::from(q.iterations as i64),
                Value::from(q.peak_mem_bytes as i64),
                Value::from(q.cache.trie_hits as i64),
                Value::from(q.cache.trie_misses as i64),
                Value::from(q.cache.stats_hits as i64),
                Value::from(q.cache.stats_misses as i64),
                Value::from(q.cache.wal_records as i64),
                Value::from(q.cache.wal_bytes as i64),
                Value::from(q.par as i64),
                Value::from(q.exec),
                Value::from(q.optimizer),
                Value::from(q.session as i64),
                Value::from(q.generation as i64),
            ]
            .into_boxed_slice(),
        );
    }
    rel
}

/// An embedded graph-capable relational database speaking with+.
pub struct Database {
    pub catalog: Catalog,
    pub profile: EngineProfile,
    /// Physical spelling of union-by-update (Tables 4 & 5). Default:
    /// `full outer join`, the winner of Exp-1.
    pub ubu_impl: UbuImpl,
    /// Physical spelling of anti-join (Tables 6 & 7). Default:
    /// `left outer join`, the paper's pick after Exp-1.
    pub anti_impl: AntiJoinImpl,
    pub(crate) params: HashMap<String, Value>,
    /// When set, every execution records hierarchical spans into it
    /// (per-operator, per-subquery, per-iteration). `None` (the default)
    /// costs one branch per plan node.
    pub(crate) tracer: Option<Tracer>,
    /// Set by [`Database::open`] when recovery found a with+ run that
    /// began but never logged its end-of-run commit. Consumed by
    /// [`Database::resume_interrupted`] / [`Database::discard_interrupted`].
    pending_resume: Option<InterruptedRun>,
    /// Session the current statement is attributed to in the query log
    /// (0 = the database handle itself). Set by
    /// [`Session::execute`](crate::session::Session::execute) around
    /// forwarded writes.
    pub(crate) session_id: u64,
    /// Materialized views maintained incrementally by
    /// [`Database::apply_edges`](crate::ivm), in registration order.
    pub(crate) views: Vec<crate::ivm::ViewDef>,
}

impl Database {
    pub fn new(profile: EngineProfile) -> Database {
        Database {
            catalog: Catalog::new(),
            profile,
            ubu_impl: UbuImpl::FullOuterJoin,
            anti_impl: AntiJoinImpl::LeftOuterNull,
            params: HashMap::new(),
            tracer: None,
            pending_resume: None,
            session_id: 0,
            views: Vec::new(),
        }
    }

    /// Swap this database's parameter bindings wholesale (sessions install
    /// their own bindings around forwarded writes and restore the writer's
    /// afterwards).
    pub(crate) fn swap_params(&mut self, params: HashMap<String, Value>) -> HashMap<String, Value> {
        std::mem::replace(&mut self.params, params)
    }

    /// Open (or create) a durable database rooted at directory `path` on
    /// the real file system. Recovers from the newest valid snapshot plus
    /// the committed WAL tail; every subsequent catalog mutation is logged.
    pub fn open(path: &str, profile: EngineProfile) -> Result<(Database, RecoveryReport)> {
        Database::open_with_vfs(Arc::new(StdVfs), path, profile, None)
    }

    /// [`Database::open`] over an explicit [`Vfs`] — the crash-simulation
    /// tests pass a [`aio_storage::SimVfs`] here. `tracer`, when given,
    /// receives the `recovery` span.
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &str,
        profile: EngineProfile,
        tracer: Option<&Tracer>,
    ) -> Result<(Database, RecoveryReport)> {
        let (catalog, report) = open_catalog(vfs, path, tracer)?;
        let mut db = Database::new(profile);
        db.catalog = catalog;
        if let Some(ir) = &report.interrupted {
            // Restore the interrupted run's parameter bindings so resuming
            // (or re-running) sees exactly the environment it began under.
            for (k, v) in &ir.params {
                db.params.insert(k.clone(), v.clone());
            }
        }
        db.pending_resume = report.interrupted.clone();
        Ok((db, report))
    }

    /// Write a snapshot checkpoint and truncate the WAL. Errors on
    /// in-memory databases and inside a with+ run.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats> {
        let span = aio_trace::maybe_span(self.tracer.as_ref(), "checkpoint");
        let stats = self.catalog.checkpoint()?;
        if let Some(s) = &span {
            s.field("seq", stats.seq);
            s.field("bytes", stats.bytes);
            s.field("tables", stats.tables);
        }
        Ok(stats)
    }

    /// The interrupted with+ run recovery found, if any (not yet resumed
    /// or discarded).
    pub fn interrupted(&self) -> Option<&InterruptedRun> {
        self.pending_resume.as_ref()
    }

    /// Finish the with+ run a crash interrupted. If at least one fixpoint
    /// iteration was durably committed, the loop resumes from that
    /// iteration over the recovered tables; otherwise the logged statement
    /// re-executes from scratch. Returns `Ok(None)` when there was nothing
    /// to resume.
    pub fn resume_interrupted(&mut self) -> Result<Option<QueryResult>> {
        let Some(ir) = self.pending_resume.take() else {
            return Ok(None);
        };
        for (k, v) in &ir.params {
            self.params.insert(k.clone(), v.clone());
        }
        match ir.committed_iters {
            // The run began but no iteration commit made it to disk: the
            // recovered catalog has none of its tables, so a plain
            // re-execution is the resume.
            None => self.execute(&ir.sql).map(Some),
            Some(k) => {
                let Statement::WithPlus(w) = Parser::parse_statement(&ir.sql)? else {
                    return Err(WithPlusError::Restriction(
                        "resume: logged statement is not with+".into(),
                    ));
                };
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let compiled = optimize_compiled(
                    compile(&w, &ctx)?,
                    &self.catalog,
                    self.profile.optimizer,
                );
                self.catalog.wal_run_begin(&compiled.rec_name, &ir.sql, &sorted_params(&self.params))?;
                let mut runner = PsmRunner::new(&mut self.catalog, &self.profile, self.ubu_impl);
                runner.set_tracer(self.tracer.as_ref());
                let result = runner.run_resume(&compiled, k);
                finish_run(&mut self.catalog, &compiled.rec_name, result).map(Some)
            }
        }
    }

    /// Forget the interrupted run instead of resuming it, durably dropping
    /// the temp tables it left behind.
    pub fn discard_interrupted(&mut self) -> Result<()> {
        if self.pending_resume.take().is_none() {
            return Ok(());
        }
        for name in self.catalog.names() {
            if self.catalog.entry(&name).map(|e| e.temp).unwrap_or(false) {
                self.catalog.drop_table(&name)?;
            }
        }
        Ok(())
    }

    /// Set the plan-optimization level (a shorthand for rebuilding the
    /// profile; [`Optimizer::Off`] keeps the paper's fixed Algorithm 1
    /// plans).
    pub fn set_optimizer(&mut self, level: Optimizer) {
        self.profile.optimizer = level;
    }

    /// Switch between row-at-a-time and columnar batch execution for every
    /// plan this database runs (results are row-identical; only the
    /// physical operator implementations change).
    pub fn set_exec_mode(&mut self, mode: aio_algebra::ExecMode) {
        self.profile.exec = mode;
    }

    /// Start recording spans for subsequent executions.
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::new());
    }

    /// Stop tracing and return everything recorded since
    /// [`Database::enable_tracing`] (`None` if tracing was never enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.take().map(Tracer::finish)
    }

    /// Is a tracer currently attached?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Bind a named parameter referenced as `:name` in SQL.
    pub fn set_param(&mut self, name: &str, value: impl Into<Value>) {
        self.params.insert(name.to_string(), value.into());
    }

    pub fn clear_params(&mut self) {
        self.params.clear();
    }

    /// Register a base table.
    pub fn create_table(&mut self, name: &str, rel: Relation) -> Result<()> {
        self.catalog.create_table(name, rel)?;
        Ok(())
    }

    /// Parse, validate and compile a with+ statement without running it
    /// (exposes the Theorem 5.1 DATALOG program for inspection).
    pub fn prepare(&self, sql: &str) -> Result<CompiledWithPlus> {
        match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                compile(&w, &ctx)
            }
            Statement::Select(_) => Err(WithPlusError::Restriction(
                "prepare expects a with+ statement".into(),
            )),
        }
    }

    /// Materialize the system relations a statement references so the
    /// engine can query its own metrics with plain SQL. Matched by a cheap
    /// substring scan *before* parsing (the tables must exist by
    /// name-resolution time). `aio_query_log` is refreshed before
    /// execution, so a statement never sees itself — it appears in the
    /// next statement's view.
    fn refresh_system_tables(&mut self, sql: &str) {
        if !aio_metrics::enabled() {
            return;
        }
        let lower = sql.to_ascii_lowercase();
        let reg = aio_metrics::global();
        if lower.contains(METRICS_TABLE) {
            self.catalog
                .put_system_table(METRICS_TABLE, metrics_relation(reg));
        }
        if lower.contains(QUERY_LOG_TABLE) {
            self.catalog
                .put_system_table(QUERY_LOG_TABLE, query_log_relation(reg));
        }
    }

    /// Execute SQL text: either a with+ statement or a one-shot SELECT.
    ///
    /// When metrics are enabled, also attributes this thread's cache/WAL
    /// traffic to the statement and appends a [`aio_metrics::QueryReport`]
    /// to the global query log.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.refresh_system_tables(sql);
        let watcher = crate::session::spawn_armed_watcher(&mut self.catalog);
        if !aio_metrics::enabled() {
            let result = self.execute_inner(sql);
            if let Some(w) = watcher {
                w.finish();
            }
            return result;
        }
        let started = Instant::now();
        let before = aio_metrics::local_counters();
        let mut result = self.execute_inner(sql);
        if let Some(w) = watcher {
            w.finish();
        }
        let cache = aio_metrics::local_counters().delta_since(&before);
        if let Ok(out) = &mut result {
            out.stats.cache = cache;
            aio_metrics::global().record_query(aio_metrics::QueryReport {
                seq: 0, // assigned by record_query
                sql_hash: aio_metrics::fnv1a(sql),
                sql: aio_metrics::sql_snippet(sql),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                rows_out: out.relation.len() as u64,
                rows_scanned: out.stats.exec.rows_scanned,
                iterations: out.stats.iterations.len() as u64,
                peak_mem_bytes: out.stats.peak_mem_bytes,
                cache,
                par: self.profile.parallelism as u64,
                exec: self.profile.exec.label(),
                optimizer: self.profile.optimizer.label(),
                session: self.session_id,
                generation: self.catalog.generation(),
            });
        }
        result
    }

    fn execute_inner(&mut self, sql: &str) -> Result<QueryResult> {
        match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let compiled = optimize_compiled(
                    compile(&w, &ctx)?,
                    &self.catalog,
                    self.profile.optimizer,
                );
                // On a durable catalog, record the statement (SQL text +
                // params) so a crash mid-fixpoint can resume it, and group
                // all mutations into per-iteration WAL transactions.
                self.catalog
                    .wal_run_begin(&compiled.rec_name, sql, &sorted_params(&self.params))?;
                let mut runner = PsmRunner::new(&mut self.catalog, &self.profile, self.ubu_impl);
                runner.set_tracer(self.tracer.as_ref());
                let result = runner.run(&compiled);
                finish_run(&mut self.catalog, &compiled.rec_name, result)
            }
            Statement::Select(s) => {
                let start = Instant::now();
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let plan =
                    optimize_plan(&lower_select(&s, &ctx)?, &self.catalog, self.profile.optimizer);
                let span = aio_trace::maybe_span(self.tracer.as_ref(), "query");
                if let Some(sp) = &span {
                    sp.field("plan", "select");
                }
                let mut ev =
                    Evaluator::with_tracer(&self.catalog, &self.profile, self.tracer.as_ref());
                let relation = ev.eval_root(&plan)?;
                drop(span);
                let peak_mem_bytes = ev.mem_peak();
                let stats = RunStats {
                    exec: ev.stats,
                    elapsed: start.elapsed(),
                    peak_mem_bytes,
                    ..Default::default()
                };
                Ok(QueryResult { relation, stats })
            }
        }
    }

    /// Execute a pre-compiled with+ statement (benchmarks reuse this to
    /// exclude parse/compile time from the measured loop).
    pub fn run_compiled(&mut self, compiled: &CompiledWithPlus) -> Result<QueryResult> {
        let mut runner = PsmRunner::new(&mut self.catalog, &self.profile, self.ubu_impl);
        runner.set_tracer(self.tracer.as_ref());
        runner.run(compiled)
    }

    /// EXPLAIN ANALYZE: execute `sql` under a fresh tracer and return the
    /// result together with the plan tree annotated per node with
    /// invocation counts, output cardinalities and wall time, plus the raw
    /// trace for Perfetto/JSONL export. Any tracer previously attached with
    /// [`Database::enable_tracing`] is preserved (its recording pauses for
    /// this one statement).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<ExplainOutput> {
        self.explain_analyze_opts(sql, true)
    }

    /// [`Database::explain_analyze`] with wall-clock annotations optional —
    /// `timings: false` yields a deterministic report for snapshot tests.
    pub fn explain_analyze_opts(&mut self, sql: &str, timings: bool) -> Result<ExplainOutput> {
        let prev = self.tracer.replace(Tracer::new());
        let outcome = self.execute(sql);
        let trace = self
            .tracer
            .take()
            .map(Tracer::finish)
            .unwrap_or_default();
        self.tracer = prev;
        let result = outcome?;
        let report = match Parser::parse_statement(sql)? {
            Statement::WithPlus(w) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let compiled = optimize_compiled(
                    compile(&w, &ctx)?,
                    &self.catalog,
                    self.profile.optimizer,
                );
                crate::explain::render_with_plus(&compiled, &result.stats, &trace, timings)
            }
            Statement::Select(s) => {
                let ctx = LowerCtx::new(&self.params, self.anti_impl);
                let plan =
                    optimize_plan(&lower_select(&s, &ctx)?, &self.catalog, self.profile.optimizer);
                crate::explain::render_select(&plan, &result.stats, &trace, timings)
            }
        };
        Ok(ExplainOutput {
            result,
            report,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_storage::{edge_schema, row};

    fn db_with_edges() -> Database {
        let mut db = Database::new(oracle_like());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        db
    }

    #[test]
    fn one_shot_select() {
        let mut db = db_with_edges();
        let out = db.execute("select E.F, E.T from E where E.F = 1").unwrap();
        assert_eq!(out.relation.len(), 1);
    }

    #[test]
    fn with_plus_end_to_end() {
        let mut db = db_with_edges();
        let out = db
            .execute(
                "with TC(F, T) as (\
                   (select E.F, E.T from E)\
                   union\
                   (select TC.F, E.T from TC, E where TC.T = E.F))\
                 select * from TC",
            )
            .unwrap();
        assert_eq!(out.relation.len(), 3); // (1,2),(2,3),(1,3)
    }

    #[test]
    fn params_flow_through() {
        let mut db = db_with_edges();
        db.set_param("w", 2.0);
        let out = db.execute("select E.F, :w * E.ew from E").unwrap();
        assert_eq!(out.relation.rows()[0][1].as_f64(), Some(2.0));
    }

    #[test]
    fn prepare_exposes_datalog() {
        let mut db = db_with_edges();
        db.set_param("c", 0.85);
        db.set_param("n", 2.0);
        let c = db
            .prepare(
                "with P(ID, W) as (\
                   (select E.F, 0.0 from E)\
                   union by update ID\
                   (select E.T, :c * sum(P.W * E.ew) + (1 - :c) / :n from P, E \
                    where P.ID = E.F group by E.T)\
                   maxrecursion 3)\
                 select * from P",
            )
            .unwrap();
        assert!(c.datalog.to_string().contains(":-"));
    }

    #[test]
    fn explain_analyze_annotates_every_section() {
        let mut db = db_with_edges();
        let out = db
            .explain_analyze(
                "with TC(F, T) as (\
                   (select E.F, E.T from E)\
                   union\
                   (select TC.F, E.T from TC, E where TC.T = E.F))\
                 select * from TC",
            )
            .unwrap();
        assert_eq!(out.result.relation.len(), 3);
        out.trace.validate().unwrap();
        let r = &out.report;
        assert!(r.contains("EXPLAIN ANALYZE with+ TC"), "{r}");
        assert!(r.contains("-- init[0] (executions=1)"), "{r}");
        // 2 iterations ran the recursive subquery; delta drains on the 2nd
        assert!(r.contains("-- rec[0] (executions=2)"), "{r}");
        assert!(r.contains("-- final (executions=1)"), "{r}");
        assert!(r.contains("Join[Inner]"), "{r}");
        assert!(r.contains("time="), "{r}");
        assert!(r.contains("it   1: delta="), "{r}");
        assert!(r.contains("total: scanned="), "{r}");
        assert!(!r.contains("never executed"), "{r}");
        // Perfetto export is valid JSON with events
        let chrome = out.trace.to_chrome_json();
        let v = aio_trace::json::parse(&chrome).unwrap();
        assert!(!v.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        // tracing was transient: the db is not left tracing
        assert!(!db.tracing_enabled());
    }

    #[test]
    fn explain_analyze_select_and_determinism() {
        let mut db = db_with_edges();
        let a = db
            .explain_analyze_opts("select E.F, E.T from E where E.F = 1", false)
            .unwrap();
        assert!(a.report.contains("EXPLAIN ANALYZE select"), "{}", a.report);
        assert!(a.report.contains("Select"), "{}", a.report);
        assert!(!a.report.contains("time="), "{}", a.report);
        let b = db
            .explain_analyze_opts("select E.F, E.T from E where E.F = 1", false)
            .unwrap();
        assert_eq!(a.report, b.report, "timings-off report is deterministic");
    }

    #[test]
    fn enable_tracing_spans_multiple_statements() {
        let mut db = db_with_edges();
        db.enable_tracing();
        db.execute("select E.F from E").unwrap();
        db.execute("select E.T from E").unwrap();
        let trace = db.take_trace().unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.spans_named("query").count(), 2);
        assert!(db.take_trace().is_none());
    }

    const TC_SQL: &str = "with TC(F, T) as (\
        (select E.F, E.T from E)\
        union\
        (select TC.F, E.T from TC, E where TC.T = E.F))\
        select * from TC";

    #[test]
    fn durable_execute_and_reopen() {
        use aio_storage::{SimVfs, UnsyncedFate};
        let vfs = Arc::new(SimVfs::new());
        let (mut db, report) =
            Database::open_with_vfs(vfs.clone(), "db", oracle_like(), None).unwrap();
        assert!(report.fresh);
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        let out = db.execute(TC_SQL).unwrap();
        assert_eq!(out.relation.len(), 3);
        // reopen from the durable image only: E survives, the completed
        // run left neither temps nor an interrupted marker
        let img = Arc::new(vfs.crash_image(UnsyncedFate::DropAll));
        let (db2, r2) = Database::open_with_vfs(img, "db", oracle_like(), None).unwrap();
        assert!(!r2.fresh);
        assert!(r2.interrupted.is_none());
        assert_eq!(db2.catalog.relation("E").unwrap().len(), 2);
        assert!(!db2.catalog.contains("TC"));
    }

    #[test]
    fn durable_checkpoint_and_reopen() {
        use aio_storage::{SimVfs, UnsyncedFate};
        let vfs = Arc::new(SimVfs::new());
        let (mut db, _) =
            Database::open_with_vfs(vfs.clone(), "db", oracle_like(), None).unwrap();
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        let cp = db.checkpoint().unwrap();
        assert_eq!(cp.tables, 1);
        let img = Arc::new(vfs.crash_image(UnsyncedFate::DropAll));
        let (db2, r2) = Database::open_with_vfs(img, "db", oracle_like(), None).unwrap();
        assert_eq!(r2.snapshot_seq, cp.seq);
        assert_eq!(r2.wal_records_replayed, 0);
        assert_eq!(db2.catalog.relation("E").unwrap().len(), 1);
    }

    #[test]
    fn checkpoint_errors_on_in_memory_db() {
        let mut db = db_with_edges();
        assert!(db.checkpoint().is_err());
    }

    #[test]
    fn resume_interrupted_reaches_same_fixpoint() {
        use aio_storage::{SimVfs, UnsyncedFate};
        // Baseline: the same query on an in-memory db.
        let mut mem = db_with_edges();
        let expected = mem.execute(TC_SQL).unwrap().relation;

        // Durable run, then "crash" by discarding the Database mid-flight:
        // simulate by taking a crash image right after the run — the run
        // completed, so instead exercise the interrupted path by writing a
        // RunBegin without a RunEnd through the catalog API.
        let vfs = Arc::new(SimVfs::new());
        {
            let (mut db, _) =
                Database::open_with_vfs(vfs.clone(), "db", oracle_like(), None).unwrap();
            let mut e = Relation::new(edge_schema());
            e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
            db.create_table("E", e).unwrap();
            db.catalog
                .wal_run_begin("TC", TC_SQL, &[("w".into(), Value::from(2.0))])
                .unwrap();
            // no iteration commit, no RunEnd: crash before any progress
        }
        let img = Arc::new(vfs.crash_image(UnsyncedFate::DropAll));
        let (mut db2, r2) = Database::open_with_vfs(img, "db", oracle_like(), None).unwrap();
        let ir = r2.interrupted.expect("run is interrupted");
        assert_eq!(ir.rec_name, "tc"); // names are normalized in the log
        assert_eq!(ir.committed_iters, None);
        assert_eq!(db2.interrupted().map(|i| i.rec_name.as_str()), Some("tc"));
        let out = db2.resume_interrupted().unwrap().expect("resumed");
        assert!(out.relation.same_rows_unordered(&expected));
        assert!(db2.interrupted().is_none());
        assert!(db2.resume_interrupted().unwrap().is_none());
    }

    #[test]
    fn discard_interrupted_drops_temps() {
        use aio_storage::{SimVfs, UnsyncedFate};
        let vfs = Arc::new(SimVfs::new());
        {
            let (mut db, _) =
                Database::open_with_vfs(vfs.clone(), "db", oracle_like(), None).unwrap();
            let mut e = Relation::new(edge_schema());
            e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
            db.create_table("E", e).unwrap();
            db.catalog.wal_run_begin("TC", TC_SQL, &[]).unwrap();
            let mut tc = Relation::new(edge_schema());
            tc.extend([row![1, 2, 1.0]]).unwrap();
            db.catalog.create_temp("TC", tc).unwrap();
            db.catalog.wal_commit_iter("TC", 0).unwrap();
            // crash: RunEnd never logged
        }
        let img = Arc::new(vfs.crash_image(UnsyncedFate::DropAll));
        let (mut db2, r2) =
            Database::open_with_vfs(img.clone(), "db", oracle_like(), None).unwrap();
        assert_eq!(
            r2.interrupted.as_ref().and_then(|i| i.committed_iters),
            Some(0)
        );
        assert!(db2.catalog.contains("TC"));
        db2.discard_interrupted().unwrap();
        assert!(!db2.catalog.contains("TC"));
        assert!(db2.catalog.contains("E"));
        // the drop is durable
        let img2 = Arc::new(img.crash_image(UnsyncedFate::DropAll));
        let (db3, _) = Database::open_with_vfs(img2, "db", oracle_like(), None).unwrap();
        assert!(!db3.catalog.contains("TC"));
    }

    #[test]
    fn parse_error_surfaces() {
        let mut db = db_with_edges();
        assert!(matches!(
            db.execute("selekt * from E"),
            Err(WithPlusError::Parse { .. })
        ));
    }
}
