//! Lowered plans → DATALOG rules (Eqs. 14–22) for the Theorem 5.1 check.
//!
//! Every operator of a recursive subquery becomes a rule over fresh
//! intermediate predicates, staged exactly as the Theorem 5.1 proof sketch
//! stages them: scans of the recursive relation read the *previous* stage
//! (`T`), everything computed within the iteration lives at `s(T)`, and the
//! union mode contributes the closing rules (the copy rule for `union all`,
//! the Eq. 22 pair for union-by-update). Non-monotone constructs —
//! aggregation, windowing, difference, anti-join — mark their inputs
//! negated, so the bi-state stratification test sees them.

use crate::ast::UnionMode;
use aio_algebra::Plan;
use aio_datalog::{Atom, Program, Rule, Temporal};

pub struct DatalogGen {
    rules: Vec<Rule>,
    counter: usize,
    rec: String,
    /// computed-by relation names (stage `s(T)` when scanned)
    defs: Vec<String>,
}

impl DatalogGen {
    pub fn new(rec: &str, defs: &[String]) -> Self {
        DatalogGen {
            rules: Vec::new(),
            counter: 0,
            rec: rec.to_string(),
            defs: defs.to_vec(),
        }
    }

    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("q{}", self.counter)
    }

    fn scan_atom(&self, table: &str) -> Atom {
        if table.eq_ignore_ascii_case(&self.rec) {
            Atom::new(self.rec.clone()).at(Temporal::Var)
        } else if self
            .defs
            .iter()
            .any(|d| d.eq_ignore_ascii_case(table))
        {
            Atom::new(table.to_string()).at(Temporal::Succ)
        } else {
            Atom::new(table.to_string())
        }
    }

    /// Emit rules for `plan`; returns the atom naming its result.
    pub fn emit(&mut self, plan: &Plan) -> Atom {
        match plan {
            Plan::Scan { table, .. } => self.scan_atom(table),
            Plan::Values(_) => Atom::new("values"),
            // monotone unary operators preserve the dependency structure
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct(input) => {
                // `distinct` is a (benign) duplicate-eliminating negation in
                // the paper's Table 1 discussion, but it never loses tuples
                // of the *set* semantics, so we treat it as monotone like
                // PostgreSQL does when it allows it.
                self.emit(input)
            }
            Plan::Aggregate { input, .. } | Plan::Window { input, .. } => {
                let child = self.emit(input);
                let head = Atom::new(self.fresh()).at(Temporal::Succ);
                self.rules
                    .push(Rule::new(head.clone(), vec![child.negated()]));
                head
            }
            Plan::Join { left, right, .. }
            | Plan::Product { left, right }
            | Plan::SemiJoin { left, right, .. } => {
                let l = self.emit(left);
                let r = self.emit(right);
                let head = Atom::new(self.fresh()).at(Temporal::Succ);
                self.rules.push(Rule::new(head.clone(), vec![l, r]));
                head
            }
            Plan::UnionAll { left, right } | Plan::Union { left, right } => {
                let l = self.emit(left);
                let r = self.emit(right);
                let head = Atom::new(self.fresh()).at(Temporal::Succ);
                self.rules.push(Rule::new(head.clone(), vec![l]));
                self.rules.push(Rule::new(head.clone(), vec![r]));
                head
            }
            Plan::Difference { left, right } | Plan::AntiJoin { left, right, .. } => {
                let l = self.emit(left);
                let r = self.emit(right);
                let head = Atom::new(self.fresh()).at(Temporal::Succ);
                self.rules
                    .push(Rule::new(head.clone(), vec![l, r.negated()]));
                head
            }
            // a multiway join is a conjunction of positive atoms, like Join
            Plan::MultiwayJoin { children, .. } => {
                let atoms: Vec<Atom> = children.iter().map(|c| self.emit(c)).collect();
                let head = Atom::new(self.fresh()).at(Temporal::Succ);
                self.rules.push(Rule::new(head.clone(), atoms));
                head
            }
        }
    }

    /// Emit a named computed-by definition `name(s(T)) :- plan…`.
    pub fn emit_def(&mut self, name: &str, plan: &Plan) {
        let body = self.emit(plan);
        let head = Atom::new(name.to_string()).at(Temporal::Succ);
        self.rules.push(Rule::new(head, vec![body]));
    }

    /// Close the program with the union-mode rules over the recursive
    /// relation; `delta_atoms` name the recursive subqueries' results.
    pub fn close(mut self, union: &UnionMode, delta_atoms: Vec<Atom>) -> Program {
        let rec_succ = Atom::new(self.rec.clone()).at(Temporal::Succ);
        let rec_var = Atom::new(self.rec.clone()).at(Temporal::Var);
        match union {
            UnionMode::All | UnionMode::Distinct => {
                // R(s(T)) :- R(T).   R(s(T)) :- Δ_i(s(T)).
                self.rules
                    .push(Rule::new(rec_succ.clone(), vec![rec_var]));
                for d in delta_atoms {
                    self.rules.push(Rule::new(rec_succ.clone(), vec![d]));
                }
            }
            UnionMode::ByUpdate(_) => {
                // Eq. (22):
                // R(s(T)) :- R(T), ¬Δ(s(T)).   R(s(T)) :- Δ(s(T)).
                for d in delta_atoms {
                    self.rules.push(Rule::new(
                        rec_succ.clone(),
                        vec![rec_var.clone(), d.clone().negated()],
                    ));
                    self.rules.push(Rule::new(rec_succ.clone(), vec![d]));
                }
            }
        }
        Program::new(self.rules)
    }

    /// Recursive predicates of the generated program: the recursive
    /// relation, the computed-by definitions, and every intermediate.
    pub fn recursive_predicates(&self) -> Vec<String> {
        let mut v = vec![self.rec.clone()];
        v.extend(self.defs.iter().cloned());
        v.extend((1..=self.counter).map(|i| format!("q{i}")));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::ops::AntiJoinImpl;
    use aio_algebra::{JoinType, ScalarExpr};
    use aio_datalog::is_xy_stratified;

    fn check(plan: &Plan, rec: &str, union: &UnionMode) -> bool {
        let mut gen = DatalogGen::new(rec, &[]);
        let delta = gen.emit(plan);
        let recs = {
            let mut r = gen.recursive_predicates();
            r.push("__never".into());
            r
        };
        let prog = gen.close(union, vec![delta]);
        is_xy_stratified(&prog, &recs).unwrap_or(false)
    }

    #[test]
    fn pagerank_shape_is_xy_stratified() {
        // Δ = γ(R ⋈ E), union-by-update — the Fig. 3 program.
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::scan("P")),
                right: Box::new(Plan::scan("E")),
                on: vec![("P.ID".into(), "E.F".into())],
                residual: None,
                kind: JoinType::Inner,
            }),
            group_by: vec!["E.T".into()],
            items: vec![(ScalarExpr::col("E.T"), "ID".into())],
        };
        assert!(check(
            &plan,
            "P",
            &UnionMode::ByUpdate(Some(vec!["ID".into()]))
        ));
    }

    #[test]
    fn toposort_shape_is_xy_stratified() {
        // Δ = V ⊼ Topo (anti-join on the recursive relation), union all.
        let plan = Plan::AntiJoin {
            left: Box::new(Plan::scan("V")),
            right: Box::new(Plan::scan("Topo")),
            on: vec![("V.ID".into(), "Topo.ID".into())],
            imp: AntiJoinImpl::LeftOuterNull,
        };
        assert!(check(&plan, "Topo", &UnionMode::All));
    }

    #[test]
    fn nonlinear_self_join_is_xy_stratified() {
        // Floyd-Warshall: Δ = γ(E ⋈ E) with E the recursive relation.
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                left: Box::new(Plan::scan_as("D", "E1")),
                right: Box::new(Plan::scan_as("D", "E2")),
                on: vec![("E1.T".into(), "E2.F".into())],
                residual: None,
                kind: JoinType::Inner,
            }),
            group_by: vec!["E1.F".into(), "E2.T".into()],
            items: vec![],
        };
        assert!(check(&plan, "D", &UnionMode::ByUpdate(None)));
    }

    #[test]
    fn computed_by_defs_live_at_succ_stage() {
        let mut gen = DatalogGen::new("H", &["H_h".into(), "R_a".into()]);
        gen.emit_def(
            "H_h",
            &Plan::Project {
                input: Box::new(Plan::scan("H")),
                items: vec![],
            },
        );
        gen.emit_def(
            "R_a",
            &Plan::Aggregate {
                input: Box::new(Plan::Join {
                    left: Box::new(Plan::scan("H_h")),
                    right: Box::new(Plan::scan("E")),
                    on: vec![],
                    residual: None,
                    kind: JoinType::Inner,
                }),
                group_by: vec![],
                items: vec![],
            },
        );
        let delta = gen.emit(&Plan::scan("R_a"));
        let recs = gen.recursive_predicates();
        let prog = gen.close(&UnionMode::ByUpdate(None), vec![delta]);
        assert!(is_xy_stratified(&prog, &recs).unwrap());
        // H_h is defined at s(T) from H at T; R_a aggregates H_h within the
        // same stage — acyclic, so the negation is harmless.
        let text = prog.to_string();
        assert!(text.contains("H_h(s(T)) :- H(T)."), "{text}");
    }
}
