//! Errors raised by the with+ engine.

use aio_algebra::AlgebraError;
use aio_storage::StorageError;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum WithPlusError {
    /// Lexing / parsing failure, with position info.
    Parse { message: String, near: String },
    /// A Section 6 restriction was violated (e.g. union-by-update mixed
    /// with union all, cyclic computed-by).
    Restriction(String),
    /// The query failed the Theorem 5.1 XY-stratification test.
    NotXyStratified(String),
    /// The SQL'99 baseline engine rejected a feature per Table 1.
    FeatureNotSupported { feature: String, system: String },
    Algebra(AlgebraError),
    Storage(StorageError),
}

impl fmt::Display for WithPlusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WithPlusError::Parse { message, near } => {
                write!(f, "parse error: {message} (near `{near}`)")
            }
            WithPlusError::Restriction(m) => write!(f, "with+ restriction violated: {m}"),
            WithPlusError::NotXyStratified(m) => {
                write!(f, "recursive query is not XY-stratified: {m}")
            }
            WithPlusError::FeatureNotSupported { feature, system } => {
                write!(f, "{system} does not support {feature} in the with clause")
            }
            WithPlusError::Algebra(e) => write!(f, "{e}"),
            WithPlusError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WithPlusError {}

impl From<AlgebraError> for WithPlusError {
    fn from(e: AlgebraError) -> Self {
        WithPlusError::Algebra(e)
    }
}

impl From<StorageError> for WithPlusError {
    fn from(e: StorageError) -> Self {
        WithPlusError::Storage(e)
    }
}

pub type Result<T> = std::result::Result<T, WithPlusError>;
