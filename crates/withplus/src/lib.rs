//! # aio-withplus — the enhanced `WITH` clause ("with+")
//!
//! The primary contribution of *"All-in-One: Graph Processing in RDBMSs
//! Revisited"* (Zhao & Yu, SIGMOD 2017), Sections 5–6: a recursive SQL
//! dialect that admits the four non-monotonic operations — MM-join,
//! MV-join, anti-join and union-by-update — inside recursion, certified by
//! **XY-stratification** (Theorem 5.1) and executed by translation to a
//! PSM-style procedure (Algorithm 1).
//!
//! ```
//! use aio_withplus::Database;
//! use aio_algebra::oracle_like;
//! use aio_storage::{edge_schema, Relation, row};
//!
//! let mut db = Database::new(oracle_like());
//! let mut e = Relation::new(edge_schema());
//! e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
//! db.create_table("E", e).unwrap();
//! let out = db.execute(
//!     "with TC(F, T) as (
//!        (select E.F, E.T from E)
//!        union
//!        (select TC.F, E.T from TC, E where TC.T = E.F))
//!      select * from TC").unwrap();
//! assert_eq!(out.relation.len(), 3);
//! ```

pub mod ast;
pub mod compile;
pub mod db;
pub mod display;
pub mod error;
pub mod explain;
pub mod ivm;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod psm;
pub mod session;
pub mod sql99;
pub mod translate;

pub use ast::{Expr, FromItem, SelectStmt, Subquery, UnionMode, WithPlus};
pub use compile::{compile, CompiledWithPlus};
pub use db::{Database, ExplainOutput, METRICS_TABLE, QUERY_LOG_TABLE};
pub use error::{Result, WithPlusError};
pub use ivm::{EdgeDelta, RefreshMode, RefreshReport, ResultDelta, ViewClass};
pub use parser::{Parser, Statement};
pub use psm::{IterStat, QueryResult, RunStats, SubqueryIterStat};
pub use session::{
    arm_concurrent_reader, disarm_concurrent_reader, take_concurrent_report,
    ConcurrentReaderReport, Session, SharedDatabase,
};
pub use sql99::{FeatureMatrix, Sql99Engine};
