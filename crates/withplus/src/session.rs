//! Sessions over a shared database: one writer, many snapshot readers.
//!
//! [`SharedDatabase`] wraps a [`Database`] so it can be shared across
//! threads: writes serialize through an internal mutex while reads run
//! lock-free against pinned MVCC snapshots
//! ([`aio_storage::GenerationHub`]). Each [`Session`] opened on it gets
//!
//! - **snapshot reads** — [`Session::query`] evaluates a one-shot SELECT
//!   against the newest *committed* catalog generation. Inside an explicit
//!   read transaction ([`Session::begin_read`] … [`Session::end_read`])
//!   every query sees the *same* pinned generation, no matter how far the
//!   writer advances — repeatable reads with zero writer stalls;
//! - **forwarded writes** — [`Session::execute`] takes the writer lock,
//!   installs the session's parameter bindings and runs the statement
//!   through the ordinary [`Database::execute`] path (WAL, metrics, query
//!   log — attributed to this session's id).
//!
//! Because with+ fixpoints commit each iteration (a generation boundary),
//! a reader polling generations while another session runs PageRank
//! watches the ranks converge live, one committed iteration at a time,
//! never a torn in-between state.
//!
//! The module also carries the *armable concurrent-reader harness* the
//! differential test matrix uses to prove exactly that. A test calls
//! [`arm_concurrent_reader`]; the next [`Database::execute`] on the same
//! thread spawns a reader thread that pins snapshots in a loop while the
//! statement runs, digesting every generation it observes and checking
//! the snapshot-isolation invariants (generations never regress, a pinned
//! generation's contents never change). The verdict is retrieved with
//! [`take_concurrent_report`]. The same pattern as the fault-injection
//! hook in `aio_algebra::fault`: thread-local arming keeps the hot path
//! at one branch when the harness is idle.

use crate::db::{metrics_relation, query_log_relation, Database, METRICS_TABLE, QUERY_LOG_TABLE};
use crate::error::{Result, WithPlusError};
use crate::lower::{lower_select, LowerCtx};
use crate::parser::{Parser, Statement};
use crate::psm::{QueryResult, RunStats};
use aio_algebra::ops::AntiJoinImpl;
use aio_algebra::{optimize_plan, EngineProfile, Evaluator};
use aio_storage::{Catalog, GenerationHub, PinnedSnapshot, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A [`Database`] shareable across threads: a single serialized writer
/// plus any number of snapshot-reading [`Session`]s.
pub struct SharedDatabase {
    writer: Mutex<Database>,
    hub: Arc<GenerationHub>,
    profile: EngineProfile,
    anti_impl: AntiJoinImpl,
    next_session: AtomicU64,
}

impl SharedDatabase {
    /// Take ownership of a database and make it session-capable. Enables
    /// MVCC publication on its catalog; the hub is primed with the current
    /// state, so sessions can read immediately.
    pub fn new(mut db: Database) -> Arc<SharedDatabase> {
        let hub = db.catalog.enable_mvcc();
        Arc::new(SharedDatabase {
            profile: db.profile.clone(),
            anti_impl: db.anti_impl,
            writer: Mutex::new(db),
            hub,
            next_session: AtomicU64::new(1),
        })
    }

    /// Open a new session. Session ids start at 1 and are unique for the
    /// lifetime of this shared database (id 0 means "no session" in the
    /// query log).
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            shared: Arc::clone(self),
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            pin: None,
            params: HashMap::new(),
            profile: self.profile.clone(),
            anti_impl: self.anti_impl,
        }
    }

    /// The publication hub (benchmarks pin through it directly).
    pub fn hub(&self) -> Arc<GenerationHub> {
        Arc::clone(&self.hub)
    }

    /// The newest committed catalog generation.
    pub fn current_generation(&self) -> u64 {
        self.hub.current_gen()
    }

    /// Run `f` with exclusive access to the writer database — bulk loads,
    /// checkpoints, admin. Commits made inside publish generations exactly
    /// as writes forwarded through [`Session::execute`] do.
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut w)
    }
}

impl std::fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDatabase")
            .field("generation", &self.hub.current_gen())
            .field("pinned", &self.hub.pinned())
            .finish()
    }
}

/// One client's view of a [`SharedDatabase`]: private parameter bindings,
/// snapshot reads, forwarded writes.
pub struct Session {
    shared: Arc<SharedDatabase>,
    id: u64,
    /// The read transaction's pin, when one is open. All queries resolve
    /// against this generation until [`Session::end_read`].
    pin: Option<PinnedSnapshot>,
    params: HashMap<String, Value>,
    /// Per-session engine profile (starts as a copy of the writer's;
    /// mutate freely — it only affects this session's reads).
    pub profile: EngineProfile,
    anti_impl: AntiJoinImpl,
}

impl Session {
    /// This session's id, as recorded in `aio_query_log`.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Bind a named parameter referenced as `:name` in this session's SQL
    /// (reads and forwarded writes alike).
    pub fn set_param(&mut self, name: &str, value: impl Into<Value>) {
        self.params.insert(name.to_string(), value.into());
    }

    /// Open a read transaction: pin the newest committed generation.
    /// Every [`Session::query`] until [`Session::end_read`] sees exactly
    /// this generation. Re-pinning while already open moves the
    /// transaction forward to the newest generation. Returns the pinned
    /// generation number.
    pub fn begin_read(&mut self) -> u64 {
        self.pin = None; // drop (and unpin) any previous read txn first
        let pin = self.shared.hub.pin();
        let gen = pin.generation();
        self.pin = Some(pin);
        gen
    }

    /// Close the read transaction, releasing the pinned generation.
    pub fn end_read(&mut self) {
        self.pin = None;
    }

    /// The generation this session's open read transaction is pinned to
    /// (`None` outside a read transaction).
    pub fn generation(&self) -> Option<u64> {
        self.pin.as_ref().map(|p| p.generation())
    }

    /// Evaluate a one-shot SELECT against a committed snapshot — never the
    /// writer's live catalog, never blocking (or blocked by) the writer.
    ///
    /// Inside a read transaction the pinned generation answers; outside,
    /// the newest committed generation is pinned for just this statement.
    /// System relations (`aio_metrics`, `aio_query_log`) referenced by the
    /// statement are materialized fresh into the read view. with+
    /// statements are rejected: recursion writes temp tables, so it must
    /// go through [`Session::execute`].
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt_pin; // statement-scoped pin when no read txn is open
        let pin = match &self.pin {
            Some(p) => p,
            None => {
                stmt_pin = self.shared.hub.pin();
                &stmt_pin
            }
        };
        let gen = pin.generation();
        // A read fork is O(tables) and lets us inject system relations
        // without touching the shared snapshot other sessions may pin.
        let mut cat = pin.catalog().fork_readonly();
        if aio_metrics::enabled() {
            let lower = sql.to_ascii_lowercase();
            let reg = aio_metrics::global();
            if lower.contains(METRICS_TABLE) {
                cat.put_system_table(METRICS_TABLE, metrics_relation(reg));
            }
            if lower.contains(QUERY_LOG_TABLE) {
                cat.put_system_table(QUERY_LOG_TABLE, query_log_relation(reg));
            }
        }
        let started = Instant::now();
        let before = aio_metrics::local_counters();
        let Statement::Select(s) = Parser::parse_statement(sql)? else {
            return Err(WithPlusError::Restriction(
                "session read: only SELECT runs against a pinned snapshot; \
                 route with+ statements through Session::execute"
                    .into(),
            ));
        };
        let ctx = LowerCtx::new(&self.params, self.anti_impl);
        let plan = optimize_plan(&lower_select(&s, &ctx)?, &cat, self.profile.optimizer);
        let mut ev = Evaluator::new(&cat, &self.profile);
        let relation = ev.eval_root(&plan)?;
        let peak_mem_bytes = ev.mem_peak();
        let stats = RunStats {
            exec: ev.stats,
            elapsed: started.elapsed(),
            peak_mem_bytes,
            ..Default::default()
        };
        let mut out = QueryResult { relation, stats };
        if aio_metrics::enabled() {
            let cache = aio_metrics::local_counters().delta_since(&before);
            out.stats.cache = cache;
            aio_metrics::global().record_query(aio_metrics::QueryReport {
                seq: 0, // assigned by record_query
                sql_hash: aio_metrics::fnv1a(sql),
                sql: aio_metrics::sql_snippet(sql),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                rows_out: out.relation.len() as u64,
                rows_scanned: out.stats.exec.rows_scanned,
                iterations: 0,
                peak_mem_bytes,
                cache,
                par: self.profile.parallelism as u64,
                exec: self.profile.exec.label(),
                optimizer: self.profile.optimizer.label(),
                session: self.id,
                generation: gen,
            });
        }
        Ok(out)
    }

    /// Forward a statement to the single writer: take the writer lock,
    /// install this session's parameter bindings, run the ordinary
    /// [`Database::execute`] path (WAL, per-iteration generation
    /// publication, query log attributed to this session), then restore
    /// the writer's own bindings.
    ///
    /// An open read transaction is unaffected: its pin keeps answering
    /// queries from the pre-write generation until [`Session::end_read`].
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let mut w = self.shared.writer.lock().unwrap_or_else(|e| e.into_inner());
        let saved = w.swap_params(std::mem::take(&mut self.params));
        w.session_id = self.id;
        let result = w.execute(sql);
        w.session_id = 0;
        self.params = w.swap_params(saved);
        result
    }
}

// ---------------------------------------------------------------------------
// Armable concurrent-reader harness
// ---------------------------------------------------------------------------

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static REPORT: RefCell<Option<ConcurrentReaderReport>> = const { RefCell::new(None) };
}

/// What the concurrent snapshot reader saw while one statement executed.
#[derive(Debug, Clone)]
pub struct ConcurrentReaderReport {
    /// Snapshot pins the reader took (≥ 1: the loop always completes at
    /// least one poll before honoring the stop flag).
    pub polls: u64,
    /// Distinct committed generations observed, ascending. An iterative
    /// with+ statement shows one entry per committed fixpoint iteration —
    /// the reader watched it converge.
    pub generations: Vec<u64>,
    /// Snapshot-isolation violations. Empty on a correct engine: a pinned
    /// generation's contents never change, and published generations never
    /// regress.
    pub anomalies: Vec<String>,
}

/// Arm the harness on this thread: the *next* [`Database::execute`] (on
/// any database) runs with a concurrent snapshot-reader thread pinning and
/// digesting generations until the statement finishes. Retrieve the
/// verdict with [`take_concurrent_report`]. One-shot: executing disarms.
pub fn arm_concurrent_reader() {
    ARMED.with(|a| a.set(true));
}

/// The report stashed by the most recent armed execution on this thread
/// (`None` if the harness never ran).
pub fn take_concurrent_report() -> Option<ConcurrentReaderReport> {
    REPORT.with(|r| r.borrow_mut().take())
}

/// Clear the arm flag without executing (harness cleanup when the armed
/// statement errored before reaching the engine).
pub fn disarm_concurrent_reader() {
    ARMED.with(|a| a.set(false));
}

/// A running reader thread plus its stop flag; [`ArmedWatcher::finish`]
/// joins it and stashes the report for [`take_concurrent_report`].
pub(crate) struct ArmedWatcher {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ConcurrentReaderReport>,
}

/// Consult the thread-local arm flag; when set, enable MVCC on `catalog`
/// and spawn the reader. Costs one thread-local read when idle.
pub(crate) fn spawn_armed_watcher(catalog: &mut Catalog) -> Option<ArmedWatcher> {
    if !ARMED.with(|a| a.replace(false)) {
        return None;
    }
    let hub = catalog.enable_mvcc();
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::spawn(move || watch(hub, thread_stop));
    Some(ArmedWatcher { stop, handle })
}

impl ArmedWatcher {
    pub(crate) fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let report = self.handle.join().unwrap_or_else(|_| ConcurrentReaderReport {
            polls: 0,
            generations: Vec::new(),
            anomalies: vec!["concurrent reader thread panicked".into()],
        });
        REPORT.with(|r| *r.borrow_mut() = Some(report));
    }
}

/// Everything a generation claims to contain, folded to one number. Two
/// observations of the same generation must digest identically.
fn digest(cat: &Catalog) -> u64 {
    use std::fmt::Write;
    let mut s = String::new();
    for name in cat.names() {
        // System relations are re-materialized per statement, not
        // versioned content.
        if name == METRICS_TABLE || name == QUERY_LOG_TABLE {
            continue;
        }
        if let Ok(rel) = cat.relation(&name) {
            let _ = write!(s, "{name}:{:?};", rel.rows());
        }
    }
    aio_metrics::fnv1a(&s)
}

/// The reader loop: pin → digest twice → check invariants → unpin, until
/// the statement thread raises the stop flag (then one final poll).
fn watch(hub: Arc<GenerationHub>, stop: Arc<AtomicBool>) -> ConcurrentReaderReport {
    let mut polls = 0u64;
    let mut generations: Vec<u64> = Vec::new();
    let mut anomalies: Vec<String> = Vec::new();
    let mut seen: HashMap<u64, u64> = HashMap::new();
    let mut last_gen = 0u64;
    loop {
        let done = stop.load(Ordering::Relaxed);
        let pin = hub.pin();
        polls += 1;
        let gen = pin.generation();
        if gen < last_gen {
            anomalies.push(format!("generation regressed: pinned {gen} after {last_gen}"));
        }
        last_gen = gen;
        if generations.last() != Some(&gen) {
            generations.push(gen);
        }
        let d1 = digest(pin.catalog());
        let d2 = digest(pin.catalog());
        if d1 != d2 {
            anomalies.push(format!("non-repeatable read within pinned generation {gen}"));
        }
        match seen.entry(gen) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != d1 {
                    anomalies.push(format!(
                        "generation {gen} observed with two different states"
                    ));
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(d1);
            }
        }
        drop(pin);
        if done {
            break;
        }
        // Yield the (possibly only) CPU to the writer between polls.
        std::thread::sleep(Duration::from_micros(100));
    }
    generations.sort_unstable();
    generations.dedup();
    ConcurrentReaderReport {
        polls,
        generations,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_algebra::oracle_like;
    use aio_storage::{edge_schema, row, Relation, WalPolicy};

    fn shared_with_edges() -> Arc<SharedDatabase> {
        let mut db = Database::new(oracle_like());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0]]).unwrap();
        db.create_table("E", e).unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn read_txn_pins_while_writer_advances() {
        let shared = shared_with_edges();
        let mut reader = shared.session();
        let g = reader.begin_read();
        assert_eq!(reader.generation(), Some(g));
        assert_eq!(reader.query("select * from E").unwrap().relation.len(), 2);

        // the writer commits more edges…
        shared.with_writer(|db| {
            db.catalog
                .insert_rows("E", vec![row![3, 4, 1.0]], WalPolicy::None)
                .unwrap()
        });
        assert!(shared.current_generation() > g);

        // …but the open read txn keeps seeing its pinned generation
        assert_eq!(reader.query("select * from E").unwrap().relation.len(), 2);
        reader.end_read();
        // outside a read txn, each query pins the newest commit
        assert_eq!(reader.query("select * from E").unwrap().relation.len(), 3);
    }

    #[test]
    fn query_rejects_withplus_statements() {
        let shared = shared_with_edges();
        let mut s = shared.session();
        let err = s
            .query(
                "with TC(F, T) as ((select E.F, E.T from E) union \
                 (select TC.F, E.T from TC, E where TC.T = E.F)) select * from TC",
            )
            .unwrap_err();
        assert!(err.to_string().contains("Session::execute"), "{err}");
    }

    #[test]
    fn execute_forwards_with_session_params() {
        let shared = shared_with_edges();
        let mut s = shared.session();
        s.set_param("src", 1i64);
        let out = s
            .execute("select E.F, E.T from E where E.F = :src")
            .unwrap();
        assert_eq!(out.relation.len(), 1);
        // the writer's own bindings stayed untouched
        let has_src = shared.with_writer(|db| db.execute("select E.F, E.T from E where E.F = :src").is_err());
        assert!(has_src, "writer must not inherit session params");
    }

    #[test]
    fn sessions_cross_threads() {
        // compile-time: a shared handle fans out to reader threads, and a
        // session (pin and all) may live on a non-owner thread
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<SharedDatabase>();
        assert_send::<Session>();

        // runtime: a reader thread pins a generation while this thread writes
        let shared = shared_with_edges();
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut s = shared.session();
                s.begin_read();
                let n = s.query("select * from E").unwrap().relation.len();
                (s.generation().unwrap(), n)
            })
        };
        let (gen, n) = worker.join().unwrap();
        assert!(gen >= 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn sessions_get_distinct_ids() {
        let shared = shared_with_edges();
        let a = shared.session();
        let b = shared.session();
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), 0, "0 means no session");
    }

    #[test]
    fn armed_reader_watches_a_fixpoint_converge() {
        let mut db = Database::new(oracle_like());
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0], row![3, 4, 1.0], row![4, 5, 1.0]])
            .unwrap();
        db.create_table("E", e).unwrap();
        arm_concurrent_reader();
        let out = db
            .execute(
                "with TC(F, T) as ((select E.F, E.T from E) union \
                 (select TC.F, E.T from TC, E where TC.T = E.F)) select * from TC",
            )
            .unwrap();
        assert_eq!(out.relation.len(), 10);
        let report = take_concurrent_report().expect("armed execute stashes a report");
        assert!(report.polls >= 1);
        assert!(!report.generations.is_empty());
        assert!(report.anomalies.is_empty(), "anomalies: {:?}", report.anomalies);
        // one-shot: the next execute is unwatched
        db.execute("select * from E").unwrap();
        assert!(take_concurrent_report().is_none());
    }
}
