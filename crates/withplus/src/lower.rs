//! Lowering: with+ SELECT ASTs → algebra [`Plan`]s.
//!
//! Joins are recovered syntactically: equality conjuncts whose two sides are
//! *qualified* column references belonging to different FROM items become
//! equi-join keys (the paper's SQL always writes join conditions qualified,
//! e.g. `TC.T = E.F`). Everything else stays a residual selection.
//! `[NOT] IN` and `[NOT] EXISTS` subqueries in top-level WHERE conjuncts
//! become semi-/anti-joins — the anti-join spelling is the engine-level
//! choice studied in Exp-1 (Tables 6 & 7).

use crate::ast::{Expr, FromItem, JoinKind, SelectItem, SelectStmt};
use crate::error::{Result, WithPlusError};
use aio_algebra::ops::AntiJoinImpl;
use aio_algebra::{BinOp, Func, JoinType, Plan, ScalarExpr};
use aio_storage::Value;
use std::collections::HashMap;

/// Lowering context: parameter bindings and the anti-join spelling in use.
pub struct LowerCtx<'a> {
    pub params: &'a HashMap<String, Value>,
    pub anti_impl: AntiJoinImpl,
}

impl<'a> LowerCtx<'a> {
    pub fn new(params: &'a HashMap<String, Value>, anti_impl: AntiJoinImpl) -> Self {
        LowerCtx { params, anti_impl }
    }
}

/// Column names a SELECT will expose (used to type computed-by relations
/// and to find the output column of an IN-subquery).
pub fn infer_output_names(s: &SelectStmt) -> Vec<String> {
    s.items
        .iter()
        .enumerate()
        .map(|(i, it)| infer_item_name(it, i))
        .collect()
}

fn infer_item_name(it: &SelectItem, i: usize) -> String {
    if let Some(a) = &it.alias {
        return a.clone();
    }
    match &it.expr {
        Expr::Col(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
        _ => format!("col{i}"),
    }
}

/// Split an expression into top-level AND conjuncts.
fn conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(BinOp::And, l, r) => {
            conjuncts(l, out);
            conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// The alias a qualified column reference belongs to, if qualified.
fn qualifier(col: &str) -> Option<&str> {
    col.split_once('.').map(|(q, _)| q)
}

fn aliases_of(f: &FromItem, out: &mut Vec<String>) {
    match f {
        FromItem::Table { name, alias } => {
            out.push(alias.clone().unwrap_or_else(|| name.clone()))
        }
        FromItem::Join { left, right, .. } => {
            aliases_of(left, out);
            aliases_of(right, out);
        }
    }
}

fn in_aliases(aliases: &[String], q: &str) -> bool {
    aliases.iter().any(|a| a.eq_ignore_ascii_case(q))
}

/// Convert an AST expression to a scalar expression (no subqueries left).
pub fn to_scalar(e: &Expr, ctx: &LowerCtx<'_>) -> Result<ScalarExpr> {
    Ok(match e {
        Expr::Col(c) => ScalarExpr::Col(c.clone()),
        Expr::Lit(v) => ScalarExpr::Lit(v.clone()),
        Expr::Param(p) => {
            let v = ctx.params.get(p).ok_or_else(|| {
                WithPlusError::Restriction(format!("unbound parameter :{p}"))
            })?;
            ScalarExpr::Lit(v.clone())
        }
        Expr::Unary(op, x) => ScalarExpr::Unary(*op, Box::new(to_scalar(x, ctx)?)),
        Expr::Binary(op, l, r) => ScalarExpr::Binary(
            *op,
            Box::new(to_scalar(l, ctx)?),
            Box::new(to_scalar(r, ctx)?),
        ),
        Expr::Func(name, args) => {
            let f = scalar_func(name)?;
            ScalarExpr::Func(
                f,
                args.iter()
                    .map(|a| to_scalar(a, ctx))
                    .collect::<Result<_>>()?,
            )
        }
        Expr::Agg {
            func,
            arg,
            over_partition_by,
        } => {
            if over_partition_by.is_some() {
                return Err(WithPlusError::Restriction(
                    "window aggregates are lowered separately".into(),
                ));
            }
            ScalarExpr::Agg(*func, Box::new(to_scalar(arg, ctx)?))
        }
        Expr::In { .. } | Expr::Exists { .. } => {
            return Err(WithPlusError::Restriction(
                "subqueries are only supported as top-level WHERE conjuncts".into(),
            ))
        }
    })
}

fn scalar_func(name: &str) -> Result<Func> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "sqrt" => Func::Sqrt,
        "abs" => Func::Abs,
        "ln" => Func::Ln,
        "exp" => Func::Exp,
        "floor" => Func::Floor,
        "ceil" => Func::Ceil,
        "coalesce" => Func::Coalesce,
        "least" => Func::Least,
        "greatest" => Func::Greatest,
        "random" | "rand" => Func::Random,
        other => {
            return Err(WithPlusError::Restriction(format!(
                "unknown function {other}"
            )))
        }
    })
}

/// Lower a full SELECT to a plan.
pub fn lower_select(s: &SelectStmt, ctx: &LowerCtx<'_>) -> Result<Plan> {
    // 1. FROM: left-deep fold of from items; WHERE equality conjuncts
    //    between qualified refs become join keys.
    let mut where_conjuncts = Vec::new();
    if let Some(w) = &s.where_clause {
        conjuncts(w, &mut where_conjuncts);
    }

    let mut iter = s.from.iter();
    let first = iter
        .next()
        .ok_or_else(|| WithPlusError::Restriction("FROM clause is empty".into()))?;
    let (mut plan, mut aliases) = lower_from_item(first, ctx)?;

    for item in iter {
        let (rplan, raliases) = lower_from_item(item, ctx)?;
        // find equi conjuncts connecting `aliases` with `raliases`
        let mut on: Vec<(String, String)> = Vec::new();
        let mut remaining = Vec::new();
        for c in where_conjuncts.drain(..) {
            if let Expr::Binary(BinOp::Eq, l, r) = &c {
                if let (Expr::Col(a), Expr::Col(b)) = (l.as_ref(), r.as_ref()) {
                    match (qualifier(a), qualifier(b)) {
                        (Some(qa), Some(qb))
                            if in_aliases(&aliases, qa) && in_aliases(&raliases, qb) =>
                        {
                            on.push((a.clone(), b.clone()));
                            continue;
                        }
                        (Some(qa), Some(qb))
                            if in_aliases(&raliases, qa) && in_aliases(&aliases, qb) =>
                        {
                            on.push((b.clone(), a.clone()));
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            remaining.push(c);
        }
        where_conjuncts = remaining;
        plan = if on.is_empty() {
            Plan::Product {
                left: Box::new(plan),
                right: Box::new(rplan),
            }
        } else {
            Plan::Join {
                left: Box::new(plan),
                right: Box::new(rplan),
                on,
                residual: None,
                kind: JoinType::Inner,
            }
        };
        aliases.extend(raliases);
    }

    // 2. WHERE: subquery conjuncts → semi-/anti-joins, rest → selection.
    let mut residual: Option<ScalarExpr> = None;
    for c in where_conjuncts {
        match c {
            Expr::In {
                needle,
                subquery,
                negated,
            } => {
                let Expr::Col(needle_ref) = needle.as_ref() else {
                    return Err(WithPlusError::Restriction(
                        "IN subquery needle must be a column reference".into(),
                    ));
                };
                let out_col = infer_output_names(&subquery)
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| "col0".into());
                let sub_plan = lower_select(&subquery, ctx)?;
                let on = vec![(needle_ref.clone(), out_col)];
                plan = if negated {
                    Plan::AntiJoin {
                        left: Box::new(plan),
                        right: Box::new(sub_plan),
                        on,
                        imp: ctx.anti_impl,
                    }
                } else {
                    Plan::SemiJoin {
                        left: Box::new(plan),
                        right: Box::new(sub_plan),
                        on,
                    }
                };
            }
            Expr::Exists { subquery, negated } => {
                let (sub, on) = decorrelate_exists(&subquery, &aliases)?;
                if on.is_empty() {
                    return Err(WithPlusError::Restriction(
                        "EXISTS subquery must correlate via equality on outer columns".into(),
                    ));
                }
                let sub_plan = lower_select(&sub, ctx)?;
                // Re-project the subquery to exactly the inner correlation
                // columns (EXISTS ignores its select list anyway); join on
                // their bare names.
                let (sub_plan, on_pairs) = project_correlation(sub_plan, &sub, &on)?;
                plan = if negated {
                    Plan::AntiJoin {
                        left: Box::new(plan),
                        right: Box::new(sub_plan),
                        on: on_pairs,
                        imp: ctx.anti_impl,
                    }
                } else {
                    Plan::SemiJoin {
                        left: Box::new(plan),
                        right: Box::new(sub_plan),
                        on: on_pairs,
                    }
                };
            }
            other => {
                let sc = to_scalar(&other, ctx)?;
                residual = Some(match residual {
                    Some(prev) => ScalarExpr::and(prev, sc),
                    None => sc,
                });
            }
        }
    }
    if let Some(pred) = residual {
        plan = Plan::Select {
            input: Box::new(plan),
            pred,
        };
    }

    // 3. Projection: window / aggregate / plain.
    let has_window = s.items.iter().any(|it| {
        contains_window(&it.expr)
    });
    let has_agg = s.items.iter().any(|it| contains_plain_agg(&it.expr));

    let star_only = s.items.len() == 1 && matches!(&s.items[0].expr, Expr::Col(c) if c == "*");

    if has_window {
        let partition = find_partition(&s.items)?;
        let items = lowered_items(&s.items, ctx, true)?;
        plan = Plan::Window {
            input: Box::new(plan),
            partition_by: partition,
            items,
        };
    } else if has_agg || !s.group_by.is_empty() {
        let mut items = lowered_items(&s.items, ctx, false)?;
        let visible: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
        let having_pred = match &s.having {
            Some(h) => {
                // HAVING may reference select-list aliases *or* contain its
                // own aggregate calls; the latter become hidden columns of
                // the aggregate, projected away afterwards.
                let scalar = to_scalar(h, ctx)?;
                Some(extract_having_aggs(&scalar, &mut items))
            }
            None => None,
        };
        let hidden = items.len() > visible.len();
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by: s.group_by.clone(),
            items,
        };
        if let Some(pred) = having_pred {
            plan = Plan::Select {
                input: Box::new(plan),
                pred,
            };
        }
        if hidden {
            plan = Plan::Project {
                input: Box::new(plan),
                items: visible
                    .into_iter()
                    .map(|n| (ScalarExpr::Col(n.clone()), n))
                    .collect(),
            };
        }
    } else if !star_only {
        let items = lowered_items(&s.items, ctx, false)?;
        plan = Plan::Project {
            input: Box::new(plan),
            items,
        };
    }

    if s.having.is_some() && !has_agg && s.group_by.is_empty() {
        return Err(WithPlusError::Restriction(
            "HAVING requires GROUP BY or aggregation".into(),
        ));
    }
    if s.distinct {
        plan = Plan::Distinct(Box::new(plan));
    }
    Ok(plan)
}

/// Replace aggregate calls inside a HAVING predicate with references to
/// hidden aggregate-output columns (appended to `items`).
fn extract_having_aggs(
    e: &ScalarExpr,
    items: &mut Vec<(ScalarExpr, String)>,
) -> ScalarExpr {
    match e {
        ScalarExpr::Agg(..) => {
            let name = format!("__having{}", items.len());
            items.push((e.clone(), name.clone()));
            ScalarExpr::Col(name)
        }
        ScalarExpr::Unary(op, x) => {
            ScalarExpr::Unary(*op, Box::new(extract_having_aggs(x, items)))
        }
        ScalarExpr::Binary(op, l, r) => ScalarExpr::Binary(
            *op,
            Box::new(extract_having_aggs(l, items)),
            Box::new(extract_having_aggs(r, items)),
        ),
        ScalarExpr::Func(f, args) => ScalarExpr::Func(
            *f,
            args.iter().map(|a| extract_having_aggs(a, items)).collect(),
        ),
        other => other.clone(),
    }
}

fn lower_from_item(f: &FromItem, ctx: &LowerCtx<'_>) -> Result<(Plan, Vec<String>)> {
    match f {
        FromItem::Table { name, alias } => {
            let plan = match alias {
                Some(a) => Plan::scan_as(name.clone(), a.clone()),
                None => Plan::scan(name.clone()),
            };
            let mut aliases = Vec::new();
            aliases_of(f, &mut aliases);
            Ok((plan, aliases))
        }
        FromItem::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (lplan, mut laliases) = lower_from_item(left, ctx)?;
            let (rplan, raliases) = lower_from_item(right, ctx)?;
            let mut cs = Vec::new();
            conjuncts(on, &mut cs);
            let mut keys = Vec::new();
            let mut residual: Option<ScalarExpr> = None;
            for c in cs {
                if let Expr::Binary(BinOp::Eq, l, r) = &c {
                    if let (Expr::Col(a), Expr::Col(b)) = (l.as_ref(), r.as_ref()) {
                        match (qualifier(a), qualifier(b)) {
                            (Some(qa), Some(qb))
                                if in_aliases(&laliases, qa) && in_aliases(&raliases, qb) =>
                            {
                                keys.push((a.clone(), b.clone()));
                                continue;
                            }
                            (Some(qa), Some(qb))
                                if in_aliases(&raliases, qa) && in_aliases(&laliases, qb) =>
                            {
                                keys.push((b.clone(), a.clone()));
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
                let sc = to_scalar(&c, ctx)?;
                residual = Some(match residual {
                    Some(prev) => ScalarExpr::and(prev, sc),
                    None => sc,
                });
            }
            let jt = match kind {
                JoinKind::Inner => JoinType::Inner,
                JoinKind::LeftOuter => JoinType::Left,
                JoinKind::FullOuter => JoinType::Full,
            };
            let plan = Plan::Join {
                left: Box::new(lplan),
                right: Box::new(rplan),
                on: keys,
                residual,
                kind: jt,
            };
            laliases.extend(raliases);
            Ok((plan, laliases))
        }
    }
}

fn contains_window(e: &Expr) -> bool {
    match e {
        Expr::Agg {
            over_partition_by: Some(_),
            ..
        } => true,
        Expr::Unary(_, x) => contains_window(x),
        Expr::Binary(_, l, r) => contains_window(l) || contains_window(r),
        Expr::Func(_, args) => args.iter().any(contains_window),
        _ => false,
    }
}

fn contains_plain_agg(e: &Expr) -> bool {
    match e {
        Expr::Agg {
            over_partition_by: None,
            ..
        } => true,
        Expr::Unary(_, x) => contains_plain_agg(x),
        Expr::Binary(_, l, r) => contains_plain_agg(l) || contains_plain_agg(r),
        Expr::Func(_, args) => args.iter().any(contains_plain_agg),
        Expr::Agg { arg, .. } => contains_plain_agg(arg),
        _ => false,
    }
}

/// All windowed aggregates in a statement must share a partition spec.
fn find_partition(items: &[SelectItem]) -> Result<Vec<String>> {
    let mut found: Option<Vec<String>> = None;
    fn walk(e: &Expr, found: &mut Option<Vec<String>>, conflict: &mut bool) {
        match e {
            Expr::Agg {
                over_partition_by: Some(p),
                ..
            } => match found {
                Some(prev) if prev != p => *conflict = true,
                Some(_) => {}
                None => *found = Some(p.clone()),
            },
            Expr::Unary(_, x) => walk(x, found, conflict),
            Expr::Binary(_, l, r) => {
                walk(l, found, conflict);
                walk(r, found, conflict);
            }
            Expr::Func(_, args) => args.iter().for_each(|a| walk(a, found, conflict)),
            _ => {}
        }
    }
    let mut conflict = false;
    for it in items {
        walk(&it.expr, &mut found, &mut conflict);
    }
    if conflict {
        return Err(WithPlusError::Restriction(
            "all window aggregates must share one PARTITION BY".into(),
        ));
    }
    found.ok_or_else(|| WithPlusError::Restriction("no window aggregate found".into()))
}

/// Convert select items; for window items the `over` wrapper is stripped
/// (the Window operator supplies the partition).
fn lowered_items(
    items: &[SelectItem],
    ctx: &LowerCtx<'_>,
    window: bool,
) -> Result<Vec<(ScalarExpr, String)>> {
    items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let name = infer_item_name(it, i);
            let expr = if window {
                to_scalar(&strip_over(&it.expr), ctx)?
            } else {
                to_scalar(&it.expr, ctx)?
            };
            Ok((expr, name))
        })
        .collect()
}

fn strip_over(e: &Expr) -> Expr {
    match e {
        Expr::Agg {
            func,
            arg,
            over_partition_by: Some(_),
        } => Expr::Agg {
            func: *func,
            arg: arg.clone(),
            over_partition_by: None,
        },
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(strip_over(x))),
        Expr::Binary(op, l, r) => {
            Expr::Binary(*op, Box::new(strip_over(l)), Box::new(strip_over(r)))
        }
        Expr::Func(n, args) => Expr::Func(n.clone(), args.iter().map(strip_over).collect()),
        other => other.clone(),
    }
}

/// Pull correlation equalities (inner-col = outer-col) out of an EXISTS
/// subquery's WHERE; returns the cleaned subquery and (outer, inner) pairs.
fn decorrelate_exists(
    sub: &SelectStmt,
    outer_aliases: &[String],
) -> Result<(SelectStmt, Vec<(String, String)>)> {
    let mut inner_aliases = Vec::new();
    for f in &sub.from {
        aliases_of(f, &mut inner_aliases);
    }
    let mut cs = Vec::new();
    if let Some(w) = &sub.where_clause {
        conjuncts(w, &mut cs);
    }
    let mut correlation = Vec::new();
    let mut kept: Vec<Expr> = Vec::new();
    for c in cs {
        if let Expr::Binary(BinOp::Eq, l, r) = &c {
            if let (Expr::Col(a), Expr::Col(b)) = (l.as_ref(), r.as_ref()) {
                let a_inner = qualifier(a).map(|q| in_aliases(&inner_aliases, q));
                let b_inner = qualifier(b).map(|q| in_aliases(&inner_aliases, q));
                let a_outer = qualifier(a).map(|q| in_aliases(outer_aliases, q));
                let b_outer = qualifier(b).map(|q| in_aliases(outer_aliases, q));
                match (a_inner, b_inner, a_outer, b_outer) {
                    (Some(true), Some(false), _, Some(true)) => {
                        correlation.push((b.clone(), a.clone()));
                        continue;
                    }
                    (Some(false), Some(true), Some(true), _) => {
                        correlation.push((a.clone(), b.clone()));
                        continue;
                    }
                    _ => {}
                }
            }
        }
        kept.push(c);
    }
    let mut cleaned = sub.clone();
    cleaned.where_clause = kept.into_iter().reduce(|acc, c| {
        Expr::Binary(BinOp::And, Box::new(acc), Box::new(c))
    });
    Ok((cleaned, correlation))
}

/// Re-project an EXISTS subquery to its inner correlation columns (EXISTS
/// ignores its select list) and produce the (outer, inner-output) join
/// pairs. The cleaned subquery must not aggregate.
fn project_correlation(
    plan: Plan,
    sub: &SelectStmt,
    on: &[(String, String)],
) -> Result<(Plan, Vec<(String, String)>)> {
    if !sub.group_by.is_empty() {
        return Err(WithPlusError::Restriction(
            "correlated EXISTS with aggregation is not supported".into(),
        ));
    }
    // strip the subquery's own projection; keep its joins and filters
    let inner = match plan {
        Plan::Project { input, .. } => *input,
        Plan::Distinct(input) => match *input {
            Plan::Project { input, .. } => *input,
            other => other,
        },
        other => other,
    };
    let mut items = Vec::with_capacity(on.len());
    let mut pairs = Vec::with_capacity(on.len());
    for (k, (outer, inner_ref)) in on.iter().enumerate() {
        let out_name = format!("corr{k}");
        items.push((ScalarExpr::Col(inner_ref.clone()), out_name.clone()));
        pairs.push((outer.clone(), out_name));
    }
    Ok((
        Plan::Project {
            input: Box::new(inner),
            items,
        },
        pairs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{Parser, Statement};
    use aio_algebra::{execute, oracle_like};
    use aio_storage::{edge_schema, node_schema, row, Catalog, Relation};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut e = Relation::new(edge_schema());
        e.extend([row![1, 2, 1.0], row![2, 3, 1.0], row![1, 3, 2.0]]).unwrap();
        c.create_table("E", e).unwrap();
        let mut v = Relation::new(node_schema());
        v.extend([row![1, 0.5], row![2, 1.5], row![3, 2.5]]).unwrap();
        c.create_table("V", v).unwrap();
        c
    }

    fn run(sql: &str) -> Relation {
        let Statement::Select(s) = Parser::parse_statement(sql).unwrap() else {
            panic!("expected select")
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::NotExists);
        let plan = lower_select(&s, &ctx).unwrap();
        execute(&plan, &catalog(), &oracle_like()).unwrap().0
    }

    #[test]
    fn comma_join_recovered_from_where() {
        let out = run("select E.F, V.vw from E, V where E.T = V.ID");
        assert_eq!(out.len(), 3);
        assert!(out.schema().index_of("vw").is_ok());
    }

    #[test]
    fn where_residual_applies_after_join() {
        let out = run("select E.F from E, V where E.T = V.ID and V.vw > 2.0");
        // only V.ID = 3 survives the residual; edges (2,3) and (1,3) match
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_with_expression() {
        let out = run("select E.F, sum(E.ew) total from E group by E.F");
        assert_eq!(out.len(), 2);
        let f1 = out.iter().find(|r| r[0].as_int() == Some(1)).unwrap();
        assert_eq!(f1[1].as_f64(), Some(3.0));
    }

    #[test]
    fn not_in_subquery_becomes_anti_join() {
        // nodes with no incoming edges
        let out = run("select ID from V where ID not in (select E.T from E)");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0].as_int(), Some(1));
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let out = run("select ID from V where ID in (select E.T from E)");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn correlated_not_exists() {
        let out = run(
            "select ID from V where not exists (select E.F from E where E.T = V.ID)",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0].as_int(), Some(1));
    }

    #[test]
    fn left_outer_join_null_filter() {
        let out = run(
            "select V.ID from V left outer join E on V.ID = E.T where E.T is null",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0].as_int(), Some(1));
    }

    #[test]
    fn select_star_passthrough() {
        let out = run("select * from V");
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let out = run("select distinct E.F f from E");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_partition_by_keeps_rows() {
        let out = run(
            "select E.T, sum(E.ew) over (partition by E.T) s from E",
        );
        assert_eq!(out.len(), 3, "one row per input row");
        // T=3 receives 1.0 + 2.0
        let t3: Vec<f64> = out
            .iter()
            .filter(|r| r[0].as_int() == Some(3))
            .map(|r| r[1].as_f64().unwrap())
            .collect();
        assert_eq!(t3, vec![3.0, 3.0]);
    }

    #[test]
    fn unbound_param_errors() {
        let Statement::Select(s) =
            Parser::parse_statement("select :c * vw from V").unwrap()
        else {
            panic!()
        };
        let params = HashMap::new();
        let ctx = LowerCtx::new(&params, AntiJoinImpl::NotExists);
        assert!(matches!(
            lower_select(&s, &ctx),
            Err(WithPlusError::Restriction(_))
        ));
    }

    #[test]
    fn params_substitute() {
        let Statement::Select(s) =
            Parser::parse_statement("select ID, :c * vw from V").unwrap()
        else {
            panic!()
        };
        let mut params = HashMap::new();
        params.insert("c".to_string(), Value::Float(2.0));
        let ctx = LowerCtx::new(&params, AntiJoinImpl::NotExists);
        let plan = lower_select(&s, &ctx).unwrap();
        let out = execute(&plan, &catalog(), &oracle_like()).unwrap().0;
        let v1 = out.iter().find(|r| r[0].as_int() == Some(1)).unwrap();
        assert_eq!(v1[1].as_f64(), Some(1.0));
    }

    #[test]
    fn infer_names() {
        let Statement::Select(s) = Parser::parse_statement(
            "select E.F, E.T as dst, sum(ew) from E group by E.F, E.T",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(infer_output_names(&s), vec!["F", "dst", "col2"]);
    }
}
