//! Export surfaces: Prometheus text exposition, a strict validator for it
//! (used by the CI metrics smoke step), and JSON export built on the same
//! `aio-trace` JSON helpers as the trace sinks — one serializer, two crates.

use crate::{
    bucket_bound, MetricView, MetricsRegistry, QueryReport, NBUCKETS,
};
use aio_trace::json::{JsonArr, JsonObj};
use std::fmt::Write as _;

impl MetricsRegistry {
    /// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
    /// per family; histograms emit cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.engine.visit(&mut |name, view, help| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", view.kind());
            match view {
                MetricView::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                MetricView::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                MetricView::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, n) in buckets.iter().enumerate().take(NBUCKETS - 1) {
                        cum += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
                    }
                    cum += buckets[NBUCKETS - 1];
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        });
        out
    }

    /// Everything as one JSON document: `{"metrics":[...],"queries":[...]}`.
    pub fn to_json(&self) -> String {
        let mut metrics = JsonArr::new();
        for s in self.snapshot() {
            metrics.push_raw(
                &JsonObj::new()
                    .str("name", &s.name)
                    .str("kind", s.kind)
                    .f64("value", s.value)
                    .str("help", s.help)
                    .finish(),
            );
        }
        let mut queries = JsonArr::new();
        for q in self.query_log() {
            queries.push_raw(&query_report_json(&q));
        }
        JsonObj::new()
            .raw("metrics", &metrics.finish())
            .raw("queries", &queries.finish())
            .finish()
    }
}

/// One query report as a JSON object (shared by `to_json` and `repro metrics`).
pub fn query_report_json(q: &QueryReport) -> String {
    JsonObj::new()
        .u64("seq", q.seq)
        .str("sql_hash", &format!("{:016x}", q.sql_hash))
        .str("sql", &q.sql)
        .f64("wall_ms", q.wall_ms)
        .u64("rows_out", q.rows_out)
        .u64("rows_scanned", q.rows_scanned)
        .u64("iterations", q.iterations)
        .u64("peak_mem_bytes", q.peak_mem_bytes)
        .u64("trie_hits", q.cache.trie_hits)
        .u64("trie_misses", q.cache.trie_misses)
        .u64("stats_hits", q.cache.stats_hits)
        .u64("stats_misses", q.cache.stats_misses)
        .u64("wal_records", q.cache.wal_records)
        .u64("wal_bytes", q.cache.wal_bytes)
        .u64("par", q.par)
        .str("exec", q.exec)
        .str("optimizer", q.optimizer)
        .finish()
}

/// Validate a Prometheus text exposition: every line is a well-formed
/// `# HELP`, `# TYPE` (with a known metric type) or `name[{labels}] value`
/// sample whose name is legal and whose value parses. Samples must follow
/// a TYPE line for their family. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            && !name.starts_with(|c: char| c.is_ascii_digit())
    }
    let mut samples = 0usize;
    let mut family: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let arg = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_name(name) || arg.is_empty() {
                        return Err(at("malformed HELP"));
                    }
                }
                "TYPE" => {
                    if !valid_name(name)
                        || !matches!(arg, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                    {
                        return Err(at("malformed TYPE"));
                    }
                    family = Some(name.to_string());
                }
                _ => return Err(at("unknown # directive")),
            }
            continue;
        }
        // sample: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(at("sample missing value")),
        };
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(at("unterminated label set"));
                }
                n
            }
            None => name_part,
        };
        if !valid_name(name) {
            return Err(at(&format!("bad metric name {name:?}")));
        }
        let fam = family.as_deref().ok_or_else(|| at("sample before any TYPE"))?;
        if !name.starts_with(fam) {
            return Err(at(&format!("sample {name:?} outside family {fam:?}")));
        }
        if value_part != "+Inf" && value_part != "-Inf" && value_part.parse::<f64>().is_err() {
            return Err(at(&format!("bad sample value {value_part:?}")));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aio_trace::json::{parse, Json};

    fn busy_registry() -> (MetricsRegistry, std::sync::MutexGuard<'static, ()>) {
        let gate = crate::TEST_GATE.lock().unwrap();
        crate::set_enabled(true);
        let reg = MetricsRegistry::default();
        reg.engine.wal_records_total.add(3);
        reg.engine.wal_bytes_total.add(120);
        reg.engine.catalog_rows.set(42);
        reg.engine.checkpoint_ms.observe(7);
        reg.engine.checkpoint_ms.observe(900);
        reg.record_query(QueryReport {
            sql: "select * from e".into(),
            sql_hash: crate::fnv1a("select * from e"),
            wall_ms: 1.5,
            rows_out: 10,
            exec: "row",
            optimizer: "cost",
            ..Default::default()
        });
        (reg, gate)
    }

    #[test]
    fn prometheus_exposition_validates_and_is_cumulative() {
        let (reg, _gate) = busy_registry();
        let text = reg.to_prometheus();
        let samples = validate_prometheus(&text).unwrap();
        assert!(samples > 40, "only {samples} samples");
        assert!(text.contains("# TYPE aio_wal_records_total counter"));
        assert!(text.contains("aio_wal_records_total 3"));
        assert!(text.contains("# TYPE aio_checkpoint_ms histogram"));
        // le="1024" must already include both the 7ms and 900ms observations
        assert!(text.contains("aio_checkpoint_ms_bucket{le=\"1024\"} 2"));
        assert!(text.contains("aio_checkpoint_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("aio_checkpoint_ms_sum 907"));
        assert!(text.contains("aio_checkpoint_ms_count 2"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("# HELP only_help\n").is_err());
        assert!(validate_prometheus("no_type_yet 1\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\nBadName 1\n").is_err());
        assert!(validate_prometheus("# TYPE x widget\nx 1\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\ny 1\n").is_err());
        assert!(validate_prometheus("# TYPE x counter\nx{le=\"1\" 1\n").is_err());
    }

    #[test]
    fn json_export_parses_and_mirrors_snapshot() {
        let (reg, _gate) = busy_registry();
        let doc = parse(&reg.to_json()).unwrap();
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), reg.snapshot().len());
        let wal = metrics
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some("aio_wal_bytes_total"))
            .unwrap();
        assert_eq!(wal.get("value").unwrap().as_num(), Some(120.0));
        let queries = doc.get("queries").unwrap().as_arr().unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(
            queries[0].get("sql").and_then(Json::as_str),
            Some("select * from e")
        );
        assert_eq!(queries[0].get("rows_out").unwrap().as_num(), Some(10.0));
        assert_eq!(
            queries[0].get("sql_hash").and_then(Json::as_str).map(str::len),
            Some(16)
        );
    }
}
