//! Engine-wide metrics: a typed registry of counters, gauges and
//! log-bucketed histograms with cheap relaxed-atomic updates, per-query
//! resource reports in a bounded ring buffer, and Prometheus/JSON export.
//!
//! The cost discipline mirrors `aio-trace`'s disabled-check-is-one-branch
//! rule: every update first loads one global `AtomicBool` (relaxed) and
//! returns if metrics are off, and no hot path updates a metric per *row* —
//! only per operator invocation, per batch, per WAL record, or per
//! fixpoint iteration. `repro metrics_overhead` holds the enabled path to
//! ≤2% on a ~1M-edge hash join.
//!
//! Besides the cumulative globals, a small set of thread-local
//! [`CacheCounters`] is maintained alongside (trie/stats cache traffic and
//! WAL appends), so a caller can snapshot before and after a query and
//! attribute deltas to it without cross-thread noise — that is how
//! `Database::execute` fills each [`QueryReport`].

pub mod export;

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric collection on? One relaxed load; metrics default to enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide (used by the overhead benchmark
/// and by tests that need frozen counters).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Gated add: a no-op (one branch) while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.add_raw(n);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Ungated add for call sites that already checked [`enabled`].
    #[inline]
    pub fn add_raw(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.set_raw(v);
        }
    }

    #[inline]
    pub fn set_raw(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i < NBUCKETS-1` counts observations
/// `v <= 2^i`; the last bucket is the +Inf overflow.
pub const NBUCKETS: usize = 32;

/// Bucket index for an observation (power-of-two boundaries).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(NBUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the last bucket is +Inf).
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// Log-bucketed histogram: 32 power-of-two buckets plus sum and count, all
/// relaxed atomics — an observation is three `fetch_add`s and no locks.
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [Z; NBUCKETS],
            sum: Z,
            count: Z,
        }
    }

    /// Gated observe: a no-op (one branch) while metrics are disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.observe_raw(v);
        }
    }

    /// Ungated observe for call sites that already checked [`enabled`].
    #[inline]
    pub fn observe_raw(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn bucket_counts(&self) -> [u64; NBUCKETS] {
        let mut out = [0u64; NBUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Borrowed view of one registered metric, used by `EngineMetrics::visit`.
pub enum MetricView<'a> {
    Counter(&'a Counter),
    Gauge(&'a Gauge),
    Histogram(&'a Histogram),
}

impl MetricView<'_> {
    pub fn kind(&self) -> &'static str {
        match self {
            MetricView::Counter(_) => "counter",
            MetricView::Gauge(_) => "gauge",
            MetricView::Histogram(_) => "histogram",
        }
    }
}

// ---------------------------------------------------------------------------
// The engine metric set — declared once; names derive from the field names
// (prefixed `aio_`), which is what lets the hygiene test check every metric
// that can ever be exported.
// ---------------------------------------------------------------------------

macro_rules! engine_metrics {
    ( $( $field:ident : $kind:ident => $help:literal ; )* ) => {
        /// Every cumulative engine metric. Field name + `aio_` prefix is the
        /// exported metric name.
        #[derive(Default)]
        pub struct EngineMetrics {
            $( pub $field: $kind, )*
        }

        impl EngineMetrics {
            /// Visit `(name, view, help)` for every registered metric, in
            /// declaration order.
            pub fn visit(&self, f: &mut dyn FnMut(&'static str, MetricView<'_>, &'static str)) {
                $( f(concat!("aio_", stringify!($field)), MetricView::$kind(&self.$field), $help); )*
            }
        }
    };
}

engine_metrics! {
    // storage: WAL / checkpoint / recovery
    wal_records_total: Counter => "WAL records appended";
    wal_bytes_total: Counter => "WAL payload bytes appended";
    wal_syncs_total: Counter => "WAL sync (fsync-equivalent) calls";
    checkpoints_total: Counter => "catalog checkpoints taken";
    checkpoint_bytes_total: Counter => "bytes written by checkpoints";
    checkpoint_ms: Histogram => "checkpoint duration in milliseconds";
    recoveries_total: Counter => "startup/crash recoveries run";
    recovery_ms: Histogram => "recovery duration in milliseconds";
    // storage: caches and resident data
    trie_cache_hits_total: Counter => "trie-index cache hits";
    trie_cache_misses_total: Counter => "trie-index cache misses (index built)";
    trie_build_ms: Histogram => "trie-index build duration in milliseconds";
    stats_cache_hits_total: Counter => "relation-statistics cache hits";
    stats_cache_misses_total: Counter => "relation-statistics cache misses";
    relation_bytes_total: Counter => "estimated bytes of rows loaded into catalog relations";
    catalog_rows: Gauge => "rows currently resident across catalog tables";
    catalog_mem_bytes: Gauge => "estimated resident bytes across catalog tables";
    // algebra: rows per operator class, batches, parallelism
    op_scan_rows_total: Counter => "rows produced by scan operators";
    op_filter_rows_total: Counter => "rows produced by selection operators";
    op_project_rows_total: Counter => "rows produced by projection operators";
    op_aggregate_rows_total: Counter => "rows produced by aggregate and window operators";
    op_join_rows_total: Counter => "rows produced by binary join operators";
    op_setop_rows_total: Counter => "rows produced by set operators";
    op_wcoj_rows_total: Counter => "rows produced by worst-case-optimal multiway joins";
    op_other_rows_total: Counter => "rows produced by all other operators";
    batches_total: Counter => "columnar batches produced";
    batch_bytes_total: Counter => "estimated bytes of columnar batches produced";
    morsels_total: Counter => "morsels dispatched by parallel operators";
    parallel_ops_total: Counter => "operator invocations that ran morsel-parallel";
    join_build_rows: Histogram => "hash-join build-side size in rows";
    wcoj_seeks_total: Counter => "LFTJ seek-least-upper-bound calls";
    wcoj_gallop_steps_total: Counter => "LFTJ galloping probe steps";
    // queries and fixpoints
    queries_total: Counter => "queries executed";
    query_wall_ms: Histogram => "query wall time in milliseconds";
    query_peak_mem_bytes: Histogram => "per-query peak estimated operator-output bytes";
    fixpoint_iterations_total: Counter => "with+ fixpoint iterations";
    fixpoint_delta_rows_total: Counter => "rows in with+ fixpoint deltas";
    fixpoint_converge_ms: Histogram => "with+ fixpoint convergence wall time in milliseconds";
    datalog_rounds_total: Counter => "Datalog semi-naive rounds";
    datalog_delta_rows_total: Counter => "rows in Datalog semi-naive deltas";
    // native engines
    native_supersteps_total: Counter => "native-engine supersteps";
    native_active_vertices_total: Counter => "native-engine active vertices summed over supersteps";
    // MVCC generations and snapshot pins
    mvcc_generations_total: Counter => "committed catalog generations published to snapshot readers";
    mvcc_generation_current: Gauge => "newest committed catalog generation number";
    mvcc_pins_total: Counter => "snapshot pins taken by readers";
    mvcc_pinned_current: Gauge => "snapshot pins currently held by readers";
    mvcc_cow_clones_total: Counter => "table entries cloned by copy-on-write before a writer mutation";
    mvcc_cow_rows_total: Counter => "rows copied by copy-on-write entry clones";
    // incremental view maintenance
    ivm_refreshes_total: Counter => "materialized-view refreshes triggered by edge deltas";
    ivm_full_fallbacks_total: Counter => "view refreshes that fell back to a full recompute";
    ivm_base_delta_rows_total: Counter => "edge-delta rows (adds + deletes) applied to base tables";
    ivm_result_delta_rows_total: Counter => "result-delta rows (added + removed + changed) emitted by view refreshes";
    ivm_refresh_ms: Histogram => "per-view incremental refresh duration in milliseconds";
}

// ---------------------------------------------------------------------------
// Thread-local per-query attribution
// ---------------------------------------------------------------------------

/// Cache and WAL traffic attributable to the current thread. `Database`
/// snapshots these around each query; the delta is what lands in the
/// [`QueryReport`] (the global counters stay cumulative across threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub trie_hits: u64,
    pub trie_misses: u64,
    pub stats_hits: u64,
    pub stats_misses: u64,
    pub wal_records: u64,
    pub wal_bytes: u64,
}

impl CacheCounters {
    /// Component-wise difference vs. an earlier snapshot.
    pub fn delta_since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            trie_hits: self.trie_hits.wrapping_sub(earlier.trie_hits),
            trie_misses: self.trie_misses.wrapping_sub(earlier.trie_misses),
            stats_hits: self.stats_hits.wrapping_sub(earlier.stats_hits),
            stats_misses: self.stats_misses.wrapping_sub(earlier.stats_misses),
            wal_records: self.wal_records.wrapping_sub(earlier.wal_records),
            wal_bytes: self.wal_bytes.wrapping_sub(earlier.wal_bytes),
        }
    }

    pub fn trie_total(&self) -> u64 {
        self.trie_hits + self.trie_misses
    }

    pub fn stats_total(&self) -> u64 {
        self.stats_hits + self.stats_misses
    }
}

struct LocalCells {
    trie_hits: Cell<u64>,
    trie_misses: Cell<u64>,
    stats_hits: Cell<u64>,
    stats_misses: Cell<u64>,
    wal_records: Cell<u64>,
    wal_bytes: Cell<u64>,
}

thread_local! {
    static LOCAL: LocalCells = const {
        LocalCells {
            trie_hits: Cell::new(0),
            trie_misses: Cell::new(0),
            stats_hits: Cell::new(0),
            stats_misses: Cell::new(0),
            wal_records: Cell::new(0),
            wal_bytes: Cell::new(0),
        }
    };
}

/// Snapshot this thread's attribution counters (cumulative; diff two
/// snapshots with [`CacheCounters::delta_since`]).
pub fn local_counters() -> CacheCounters {
    LOCAL.with(|l| CacheCounters {
        trie_hits: l.trie_hits.get(),
        trie_misses: l.trie_misses.get(),
        stats_hits: l.stats_hits.get(),
        stats_misses: l.stats_misses.get(),
        wal_records: l.wal_records.get(),
        wal_bytes: l.wal_bytes.get(),
    })
}

// ---------------------------------------------------------------------------
// Per-query reports
// ---------------------------------------------------------------------------

/// Everything the engine remembers about one executed query; rows of the
/// `aio_query_log` system relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReport {
    /// Monotonic sequence number, assigned by [`MetricsRegistry::record_query`].
    pub seq: u64,
    /// FNV-1a 64 of the full SQL text.
    pub sql_hash: u64,
    /// Whitespace-collapsed SQL, truncated to [`SQL_SNIPPET_MAX`] chars.
    pub sql: String,
    pub wall_ms: f64,
    pub rows_out: u64,
    pub rows_scanned: u64,
    /// Fixpoint iterations (0 for plain SELECTs).
    pub iterations: u64,
    /// Peak estimated bytes of any operator output during execution.
    pub peak_mem_bytes: u64,
    /// Session the statement ran under (0 = the database handle itself,
    /// outside any session).
    pub session: u64,
    /// Committed catalog generation the statement observed: the pinned
    /// snapshot generation for session reads, the post-commit generation
    /// for writes.
    pub generation: u64,
    /// Cache/WAL deltas attributed to this query.
    pub cache: CacheCounters,
    pub par: u64,
    /// `"row"` or `"batch"`.
    pub exec: &'static str,
    /// Optimizer level label (`"off"` / `"rules"` / `"cost"`).
    pub optimizer: &'static str,
}

/// Max chars of SQL kept in a [`QueryReport`].
pub const SQL_SNIPPET_MAX: usize = 120;

/// Collapse whitespace runs and truncate to [`SQL_SNIPPET_MAX`] chars.
pub fn sql_snippet(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len().min(SQL_SNIPPET_MAX + 1));
    let mut in_ws = false;
    for c in sql.trim().chars() {
        if c.is_whitespace() {
            in_ws = true;
            continue;
        }
        if in_ws && !out.is_empty() {
            out.push(' ');
        }
        in_ws = false;
        if out.chars().count() >= SQL_SNIPPET_MAX {
            out.push('…');
            break;
        }
        out.push(c);
    }
    out
}

/// FNV-1a 64-bit hash (for SQL-text fingerprints in the query log).
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Capacity of the query-log ring buffer.
pub const QUERY_LOG_CAP: usize = 512;

struct QueryLog {
    entries: VecDeque<QueryReport>,
    seq: u64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The metric registry: the full [`EngineMetrics`] set plus the bounded
/// query log. Usually accessed through [`global`]; tests can build isolated
/// instances with `MetricsRegistry::default()`.
#[derive(Default)]
pub struct MetricsRegistry {
    pub engine: EngineMetrics,
    queries: Mutex<Option<QueryLog>>,
}

/// The process-wide registry every instrumented engine layer reports into.
pub fn global() -> &'static MetricsRegistry {
    static G: OnceLock<MetricsRegistry> = OnceLock::new();
    G.get_or_init(MetricsRegistry::default)
}

/// One row of a registry snapshot (and of the `aio_metrics` system
/// relation). Histograms contribute derived `<name>_count` and
/// `<name>_sum` rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub kind: &'static str,
    pub value: f64,
    pub help: &'static str,
}

impl MetricsRegistry {
    /// Flat view of every metric: counters and gauges one row each,
    /// histograms as `_count` + `_sum` rows. This is the single source for
    /// both the `aio_metrics` system relation and the JSON export, which is
    /// what makes the self-query differential test row-for-row exact.
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.engine.visit(&mut |name, view, help| match view {
            MetricView::Counter(c) => out.push(Sample {
                name: name.to_string(),
                kind: "counter",
                value: c.get() as f64,
                help,
            }),
            MetricView::Gauge(g) => out.push(Sample {
                name: name.to_string(),
                kind: "gauge",
                value: g.get() as f64,
                help,
            }),
            MetricView::Histogram(h) => {
                out.push(Sample {
                    name: format!("{name}_count"),
                    kind: "histogram",
                    value: h.count() as f64,
                    help,
                });
                out.push(Sample {
                    name: format!("{name}_sum"),
                    kind: "histogram",
                    value: h.sum() as f64,
                    help,
                });
            }
        });
        out
    }

    /// Append a finished query to the ring buffer (assigns `seq`) and feed
    /// the cumulative query metrics. No-op while metrics are disabled.
    pub fn record_query(&self, mut r: QueryReport) {
        if !enabled() {
            return;
        }
        self.engine.queries_total.add_raw(1);
        self.engine.query_wall_ms.observe_raw(r.wall_ms as u64);
        self.engine.query_peak_mem_bytes.observe_raw(r.peak_mem_bytes);
        let mut guard = self.queries.lock().unwrap();
        let log = guard.get_or_insert_with(|| QueryLog {
            entries: VecDeque::with_capacity(QUERY_LOG_CAP),
            seq: 0,
        });
        log.seq += 1;
        r.seq = log.seq;
        if log.entries.len() == QUERY_LOG_CAP {
            log.entries.pop_front();
        }
        log.entries.push_back(r);
    }

    /// The retained query reports, oldest first.
    pub fn query_log(&self) -> Vec<QueryReport> {
        match self.queries.lock().unwrap().as_ref() {
            Some(log) => log.entries.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Drop all retained query reports (sequence numbers keep increasing).
    pub fn clear_query_log(&self) {
        if let Some(log) = self.queries.lock().unwrap().as_mut() {
            log.entries.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Instrumentation hooks: one-line call sites for the engine layers. Each
// checks `enabled()` exactly once, then does ungated updates.
// ---------------------------------------------------------------------------

pub mod hooks {
    use super::*;

    #[inline]
    pub fn wal_append(bytes: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.wal_records_total.add_raw(1);
        m.wal_bytes_total.add_raw(bytes);
        LOCAL.with(|l| {
            l.wal_records.set(l.wal_records.get() + 1);
            l.wal_bytes.set(l.wal_bytes.get() + bytes);
        });
    }

    #[inline]
    pub fn wal_sync() {
        global().engine.wal_syncs_total.inc();
    }

    #[inline]
    pub fn trie_cache(hit: bool) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        if hit {
            m.trie_cache_hits_total.add_raw(1);
            LOCAL.with(|l| l.trie_hits.set(l.trie_hits.get() + 1));
        } else {
            m.trie_cache_misses_total.add_raw(1);
            LOCAL.with(|l| l.trie_misses.set(l.trie_misses.get() + 1));
        }
    }

    #[inline]
    pub fn stats_cache(hit: bool) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        if hit {
            m.stats_cache_hits_total.add_raw(1);
            LOCAL.with(|l| l.stats_hits.set(l.stats_hits.get() + 1));
        } else {
            m.stats_cache_misses_total.add_raw(1);
            LOCAL.with(|l| l.stats_misses.set(l.stats_misses.get() + 1));
        }
    }

    /// Attribute rows produced by one operator invocation to its class.
    #[inline]
    pub fn op_rows(op: &str, rows: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        let c = match op {
            "scan" | "values" => &m.op_scan_rows_total,
            "select" => &m.op_filter_rows_total,
            "project" => &m.op_project_rows_total,
            "aggregate" | "window" => &m.op_aggregate_rows_total,
            "join" | "product" | "semi_join" | "anti_join" => &m.op_join_rows_total,
            "union" | "union_all" | "difference" | "distinct" => &m.op_setop_rows_total,
            "multiway_join" => &m.op_wcoj_rows_total,
            _ => &m.op_other_rows_total,
        };
        c.add_raw(rows);
    }

    /// One columnar operator output: `n` logical batches totalling `bytes`.
    #[inline]
    pub fn batches(n: u64, bytes: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.batches_total.add_raw(n);
        m.batch_bytes_total.add_raw(bytes);
    }

    #[inline]
    pub fn parallel_op(morsels: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.parallel_ops_total.add_raw(1);
        m.morsels_total.add_raw(morsels);
    }

    /// Flush WCOJ counters accumulated locally over one multiway join.
    #[inline]
    pub fn wcoj_flush(seeks: u64, gallop_steps: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.wcoj_seeks_total.add_raw(seeks);
        m.wcoj_gallop_steps_total.add_raw(gallop_steps);
    }

    #[inline]
    pub fn fixpoint_iteration(delta_rows: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.fixpoint_iterations_total.add_raw(1);
        m.fixpoint_delta_rows_total.add_raw(delta_rows);
    }

    #[inline]
    pub fn datalog_round(delta_rows: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.datalog_rounds_total.add_raw(1);
        m.datalog_delta_rows_total.add_raw(delta_rows);
    }

    #[inline]
    pub fn superstep(active_vertices: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.native_supersteps_total.add_raw(1);
        m.native_active_vertices_total.add_raw(active_vertices);
    }

    #[inline]
    pub fn checkpoint(bytes: u64, ms: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.checkpoints_total.add_raw(1);
        m.checkpoint_bytes_total.add_raw(bytes);
        m.checkpoint_ms.observe_raw(ms);
    }

    #[inline]
    pub fn recovery(ms: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.recoveries_total.add_raw(1);
        m.recovery_ms.observe_raw(ms);
    }

    /// A commit point published a new committed generation.
    #[inline]
    pub fn mvcc_publish(gen: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.mvcc_generations_total.add_raw(1);
        m.mvcc_generation_current.set_raw(gen);
    }

    /// A reader pinned a snapshot; `held` is the new number of live pins.
    #[inline]
    pub fn mvcc_pin(held: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.mvcc_pins_total.add_raw(1);
        m.mvcc_pinned_current.set_raw(held);
    }

    /// A pinned snapshot was dropped; `held` is the remaining live pins.
    #[inline]
    pub fn mvcc_unpin(held: u64) {
        global().engine.mvcc_pinned_current.set(held);
    }

    /// Copy-on-write cloned a shared table entry of `rows` rows so the
    /// writer could mutate it without disturbing pinned snapshots.
    #[inline]
    pub fn mvcc_cow_clone(rows: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.mvcc_cow_clones_total.add_raw(1);
        m.mvcc_cow_rows_total.add_raw(rows);
    }

    /// An edge-delta batch landed on a base table.
    #[inline]
    pub fn ivm_base_delta(adds: u64, dels: u64) {
        if !enabled() {
            return;
        }
        global().engine.ivm_base_delta_rows_total.add_raw(adds + dels);
    }

    /// One materialized view refreshed. `fallback` marks a full recompute;
    /// `result_delta_rows` counts added + removed + changed output rows.
    #[inline]
    pub fn ivm_refresh(fallback: bool, result_delta_rows: u64, ms: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.ivm_refreshes_total.add_raw(1);
        if fallback {
            m.ivm_full_fallbacks_total.add_raw(1);
        }
        m.ivm_result_delta_rows_total.add_raw(result_delta_rows);
        m.ivm_refresh_ms.observe_raw(ms);
    }

    #[inline]
    pub fn catalog_size(rows: u64, bytes: u64) {
        if !enabled() {
            return;
        }
        let m = &global().engine;
        m.catalog_rows.set_raw(rows);
        m.catalog_mem_bytes.set_raw(bytes);
    }
}

/// Tests that read or toggle the process-wide enable flag must not
/// interleave with each other under the parallel test runner.
#[cfg(test)]
pub(crate) static TEST_GATE: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_GATE as GATE;

    #[test]
    fn counter_and_gauge_respect_enable_gate() {
        let _g = GATE.lock().unwrap();
        let c = Counter::new();
        let g = Gauge::new();
        set_enabled(true);
        c.add(2);
        g.set(7);
        set_enabled(false);
        c.add(100);
        g.set(100);
        set_enabled(true);
        assert_eq!(c.get(), 2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
        for i in 0..NBUCKETS - 1 {
            // every bucket's inclusive upper bound maps back into it
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound of bucket {i}");
        }
        let h = Histogram::new();
        h.observe(3);
        h.observe(4);
        h.observe(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1007);
        let b = h.bucket_counts();
        assert_eq!(b[2], 2);
        assert_eq!(b[10], 1);
    }

    #[test]
    fn metric_names_are_unique_snake_case_and_unit_suffixed() {
        // The hygiene gate: Prometheus scrapes must never collide, so every
        // registered name is unique, lowercase-snake, `aio_`-prefixed, and
        // carries a unit suffix.
        let reg = MetricsRegistry::default();
        let mut names: Vec<&'static str> = Vec::new();
        reg.engine.visit(&mut |name, view, help| {
            assert!(!help.is_empty(), "{name}: empty help");
            assert!(!view.kind().is_empty());
            names.push(name);
        });
        assert!(names.len() >= 30, "suspiciously few metrics: {}", names.len());
        let mut seen = std::collections::HashSet::new();
        for name in &names {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(name.starts_with("aio_"), "{name}: missing aio_ prefix");
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{name}: not lowercase-snake"
            );
            assert!(
                ["_total", "_bytes", "_ms", "_rows", "_current"]
                    .iter()
                    .any(|s| name.ends_with(s)),
                "{name}: missing unit suffix (_total/_bytes/_ms/_rows/_current)"
            );
        }
        // Derived histogram sample names must not collide either.
        let mut sample_names = std::collections::HashSet::new();
        for s in reg.snapshot() {
            assert!(sample_names.insert(s.name.clone()), "duplicate sample {}", s.name);
        }
    }

    #[test]
    fn query_log_ring_buffer_is_bounded_and_sequenced() {
        let _g = GATE.lock().unwrap();
        let reg = MetricsRegistry::default();
        set_enabled(true);
        for i in 0..QUERY_LOG_CAP + 10 {
            reg.record_query(QueryReport {
                sql: format!("select {i}"),
                ..Default::default()
            });
        }
        let log = reg.query_log();
        assert_eq!(log.len(), QUERY_LOG_CAP);
        assert_eq!(log.first().unwrap().seq, 11);
        assert_eq!(log.last().unwrap().seq, (QUERY_LOG_CAP + 10) as u64);
        assert_eq!(log.last().unwrap().sql, format!("select {}", QUERY_LOG_CAP + 9));
        assert_eq!(reg.engine.queries_total.get(), (QUERY_LOG_CAP + 10) as u64);
    }

    #[test]
    fn local_counters_attribute_per_thread() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        let before = local_counters();
        hooks::trie_cache(true);
        hooks::trie_cache(false);
        hooks::stats_cache(true);
        hooks::wal_append(100);
        hooks::wal_append(20);
        // another thread's traffic must not leak into this thread's delta
        std::thread::spawn(|| {
            hooks::trie_cache(true);
            hooks::wal_append(9999);
        })
        .join()
        .unwrap();
        let d = local_counters().delta_since(&before);
        assert_eq!(
            d,
            CacheCounters {
                trie_hits: 1,
                trie_misses: 1,
                stats_hits: 1,
                stats_misses: 0,
                wal_records: 2,
                wal_bytes: 120,
            }
        );
        assert_eq!(d.trie_total(), 2);
        assert_eq!(d.stats_total(), 1);
    }

    #[test]
    fn sql_snippets_collapse_and_truncate() {
        assert_eq!(sql_snippet("  select \n\t 1  "), "select 1");
        let long = format!("select {}", "x".repeat(500));
        let snip = sql_snippet(&long);
        assert_eq!(snip.chars().count(), SQL_SNIPPET_MAX + 1);
        assert!(snip.ends_with('…'));
    }

    #[test]
    fn fnv1a_distinguishes_texts() {
        assert_ne!(fnv1a("select 1"), fnv1a("select 2"));
        assert_eq!(fnv1a("select 1"), fnv1a("select 1"));
    }
}
