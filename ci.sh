#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
#   ./ci.sh        tier-1: build, the default (smoke) test suite, clippy
#   ./ci.sh full   additionally runs every #[ignore]d heavyweight test:
#                  the full differential matrix, the metamorphic sweep,
#                  the incremental-vs-recompute IVM matrix, the
#                  exhaustive crash-point sweeps (every mutating fs op
#                  × three unsynced-byte fates, with and without
#                  maintained views), and any other long-running suites
#                  (~ a few minutes)
#
# The smoke suite already includes the strided crash sweep
# (tests/crash_recovery.rs, AIO_CRASH_STRIDE=3), corruption fuzzing and
# the WAL property tests.
set -eux

mode="${1:-smoke}"

cargo build --release --workspace
case "$mode" in
full)
    cargo test -q --workspace -- --include-ignored
    ;;
smoke)
    cargo test -q --workspace
    ;;
*)
    echo "usage: $0 [full]" >&2
    exit 2
    ;;
esac
cargo clippy --workspace --all-targets -- -D warnings

# trace smoke: EXPLAIN ANALYZE must print an annotated plan and emit
# schema-valid JSONL (the binary validates and prints "jsonl schema: OK").
repro_bin="$(pwd)/target/release/repro"
trace_dir="$(mktemp -d)"
(cd "$trace_dir" && "$repro_bin" explain pagerank) |
    tee "$trace_dir/explain.out"
grep -q "jsonl schema: OK" "$trace_dir/explain.out"
test -s "$trace_dir/TRACE_pagerank.jsonl"
test -s "$trace_dir/TRACE_pagerank.json"
rm -rf "$trace_dir"

# optimizer smoke: the cost-based A/B must run, agree across levels
# (asserted inside the binary) and emit a non-empty BENCH_optimizer.json.
# The equivalence suite itself is part of the default `cargo test` above.
opt_dir="$(mktemp -d)"
(cd "$opt_dir" && "$repro_bin" optimizer --scale 0.01) |
    tee "$opt_dir/optimizer.out"
grep -q "optimizer=cost" "$opt_dir/optimizer.out"
test -s "$opt_dir/BENCH_optimizer.json"
rm -rf "$opt_dir"

# durability smoke: WAL + fsync A/B at reduced scale plus recovery replay
# throughput. The overhead percentage is only meaningful at full scale
# (tiny runs are noise-dominated), so smoke checks the experiment runs and
# the recovery bar holds; `./ci.sh full` enforces both bars at 1M edges.
dur_dir="$(mktemp -d)"
(cd "$dur_dir" && "$repro_bin" durability --scale 0.02) |
    tee "$dur_dir/durability.out"
test -s "$dur_dir/BENCH_durability.json"
grep -q "≥10k records/s bar: PASS" "$dur_dir/durability.out"
rm -rf "$dur_dir"

# columnar smoke: the row vs batch A/B must run at reduced scale with
# identical results in both modes (asserted inside the binary) and emit a
# well-formed BENCH_columnar.json. The batch-vs-everything differential
# smoke (tests/columnar_equivalence.rs) is part of the default `cargo
# test` above; the ≥2x speedup bar is only meaningful at full scale and
# is enforced by `./ci.sh full`.
col_dir="$(mktemp -d)"
(cd "$col_dir" && "$repro_bin" columnar --scale 0.02) |
    tee "$col_dir/columnar.out"
grep -q "speedup" "$col_dir/columnar.out"
test -s "$col_dir/BENCH_columnar.json"
grep -q '"experiment": "columnar"' "$col_dir/BENCH_columnar.json"
grep -q '"verdict"' "$col_dir/BENCH_columnar.json"
rm -rf "$col_dir"

# wcoj smoke: binary vs worst-case-optimal multiway join A/B at reduced
# scale with identical results in both engines (asserted inside the
# binary, which also asserts the cost optimizer picks MultiwayJoin) and a
# well-formed BENCH_wcoj.json. The pattern differential matrix
# (tests/wcoj_equivalence.rs) is part of the default `cargo test` above;
# the ≥5x triangle speedup bar is only meaningful at full scale and is
# enforced by `./ci.sh full`.
wcoj_dir="$(mktemp -d)"
(cd "$wcoj_dir" && "$repro_bin" wcoj --scale 0.02) |
    tee "$wcoj_dir/wcoj.out"
grep -q "speedup" "$wcoj_dir/wcoj.out"
test -s "$wcoj_dir/BENCH_wcoj.json"
grep -q '"experiment": "wcoj"' "$wcoj_dir/BENCH_wcoj.json"
grep -q '"verdict"' "$wcoj_dir/BENCH_wcoj.json"
rm -rf "$wcoj_dir"

# mvcc smoke: the snapshot-isolation A/B must run at reduced scale with
# identical answers on the serial, COW and every-reader-fleet arm
# (asserted inside the binary) and emit a well-formed BENCH_mvcc.json.
# The interleaving sweep (tests/mvcc_isolation.rs) and the sessions
# differential matrix are part of the default `cargo test` above; the
# ≤15% COW-overhead and starvation-freedom bars are enforced at full
# scale by `./ci.sh full`.
mvcc_dir="$(mktemp -d)"
(cd "$mvcc_dir" && "$repro_bin" mvcc --scale 0.02) |
    tee "$mvcc_dir/mvcc.out"
grep -q "pinned readers" "$mvcc_dir/mvcc.out"
test -s "$mvcc_dir/BENCH_mvcc.json"
grep -q '"experiment": "mvcc"' "$mvcc_dir/BENCH_mvcc.json"
grep -q '"overhead_verdict"' "$mvcc_dir/BENCH_mvcc.json"
grep -q '"starvation_verdict"' "$mvcc_dir/BENCH_mvcc.json"
rm -rf "$mvcc_dir"

# incremental smoke: the view-maintenance A/B must run at reduced scale,
# take the frontier (wcc) and re-converge (pagerank) paths with answers
# equal to the cold recompute (asserted inside the binary), and emit a
# well-formed BENCH_incremental.json. The incremental-vs-recompute
# differential suite (tests/ivm_differential.rs) and the strided IVM
# crash sweep are part of the default `cargo test` above; the ≥5x / ≥2x
# refresh-speedup bars are only meaningful at full scale and are
# enforced by `./ci.sh full`.
ivm_dir="$(mktemp -d)"
(cd "$ivm_dir" && "$repro_bin" incremental --scale 0.02) |
    tee "$ivm_dir/incremental.out"
grep -q "frontier" "$ivm_dir/incremental.out"
grep -q "reconverge" "$ivm_dir/incremental.out"
grep -q "speedup" "$ivm_dir/incremental.out"
test -s "$ivm_dir/BENCH_incremental.json"
grep -q '"experiment": "incremental"' "$ivm_dir/BENCH_incremental.json"
grep -q '"verdict"' "$ivm_dir/BENCH_incremental.json"
rm -rf "$ivm_dir"

# metrics smoke: the metrics layer must export valid Prometheus
# exposition + JSON and the engine must be able to query its own
# aio_metrics / aio_query_log system tables (all asserted inside the
# binary). The differential suite (tests/metrics_system_tables.rs) is
# part of the default `cargo test` above; the ≤2% enabled-overhead bar
# is only meaningful at full scale and is enforced by `./ci.sh full`.
met_dir="$(mktemp -d)"
(cd "$met_dir" && "$repro_bin" metrics --scale 0.2) |
    tee "$met_dir/metrics.out"
grep -q "prometheus exposition: OK" "$met_dir/metrics.out"
grep -q "json export: OK" "$met_dir/metrics.out"
grep -q "self-query:" "$met_dir/metrics.out"
test -s "$met_dir/METRICS.prom"
test -s "$met_dir/METRICS.json"
grep -q "# TYPE aio_" "$met_dir/METRICS.prom"
rm -rf "$met_dir"

if [ "$mode" = full ]; then
    # zero-cost-when-disabled bar: <2% overhead on a ~1M-edge hash join
    # (writes BENCH_trace_overhead.json; the binary prints the verdict).
    overhead_out="$(cargo run --release -p aio-bench --bin repro -- trace_overhead)"
    echo "$overhead_out"
    echo "$overhead_out" | grep -q "bar: PASS"

    # durability bars at full scale: WAL overhead ≤25% on the 1M-edge
    # load + PageRank, recovery ≥10k records/s (BENCH_durability.json).
    dur_out="$(cargo run --release -p aio-bench --bin repro -- durability)"
    echo "$dur_out"
    echo "$dur_out" | grep -q "≤25% bar: PASS"
    echo "$dur_out" | grep -q "≥10k records/s bar: PASS"

    # columnar bar at full scale: ≥2x single-core speedup on at least one
    # of join / group-by / PageRank (BENCH_columnar.json).
    col_out="$(cargo run --release -p aio-bench --bin repro -- columnar)"
    echo "$col_out"
    echo "$col_out" | grep -q "≥2x bar: PASS"

    # wcoj bar at full scale: ≥5x triangle-counting speedup over the
    # binary-join plan on the 1M-edge power-law graph (BENCH_wcoj.json).
    wcoj_out="$(cargo run --release -p aio-bench --bin repro -- wcoj)"
    echo "$wcoj_out"
    echo "$wcoj_out" | grep -q "≥5x bar: PASS"

    # metrics bar at full scale: ≤2% overhead with metrics *enabled* on
    # the 1M-edge hash join (BENCH_metrics_overhead.json).
    met_out="$(cargo run --release -p aio-bench --bin repro -- metrics_overhead)"
    echo "$met_out"
    echo "$met_out" | grep -q "<2% bar: PASS"
    test -s BENCH_metrics_overhead.json

    # mvcc bars at full scale: ≤15% copy-on-write writer overhead vs the
    # serial baseline on the 1M-edge PageRank, and starvation-freedom for
    # every fleet of {1, 4, 16} pinned readers (BENCH_mvcc.json).
    mvcc_out="$(cargo run --release -p aio-bench --bin repro -- mvcc)"
    echo "$mvcc_out"
    echo "$mvcc_out" | grep -q "≤15% bar: PASS"
    echo "$mvcc_out" | grep -q "starvation-freedom bar: PASS"
    test -s BENCH_mvcc.json

    # incremental bars at full scale: a 1k-edge insert batch on the
    # 1M-edge power-law graph refreshes the WCC view ≥5x faster than a
    # cold rebuild and re-converges the PageRank view ≥2x faster
    # (BENCH_incremental.json).
    ivm_out="$(cargo run --release -p aio-bench --bin repro -- incremental)"
    echo "$ivm_out"
    echo "$ivm_out" | grep -q ">=5x: PASS"
    echo "$ivm_out" | grep -q ">=2x: PASS"
    test -s BENCH_incremental.json
fi
