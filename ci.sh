#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
#   ./ci.sh        tier-1: build, the default (smoke) test suite, clippy
#   ./ci.sh full   additionally runs every #[ignore]d heavyweight test:
#                  the full differential matrix, the metamorphic sweep,
#                  and any other long-running suites (~ a few minutes)
set -eux

mode="${1:-smoke}"

cargo build --release --workspace
case "$mode" in
full)
    cargo test -q --workspace -- --include-ignored
    ;;
smoke)
    cargo test -q --workspace
    ;;
*)
    echo "usage: $0 [full]" >&2
    exit 2
    ;;
esac
cargo clippy --workspace --all-targets -- -D warnings

# trace smoke: EXPLAIN ANALYZE must print an annotated plan and emit
# schema-valid JSONL (the binary validates and prints "jsonl schema: OK").
repro_bin="$(pwd)/target/release/repro"
trace_dir="$(mktemp -d)"
(cd "$trace_dir" && "$repro_bin" explain pagerank) |
    tee "$trace_dir/explain.out"
grep -q "jsonl schema: OK" "$trace_dir/explain.out"
test -s "$trace_dir/TRACE_pagerank.jsonl"
test -s "$trace_dir/TRACE_pagerank.json"
rm -rf "$trace_dir"

# optimizer smoke: the cost-based A/B must run, agree across levels
# (asserted inside the binary) and emit a non-empty BENCH_optimizer.json.
# The equivalence suite itself is part of the default `cargo test` above.
opt_dir="$(mktemp -d)"
(cd "$opt_dir" && "$repro_bin" optimizer --scale 0.01) |
    tee "$opt_dir/optimizer.out"
grep -q "optimizer=cost" "$opt_dir/optimizer.out"
test -s "$opt_dir/BENCH_optimizer.json"
rm -rf "$opt_dir"

if [ "$mode" = full ]; then
    # zero-cost-when-disabled bar: <2% overhead on a ~1M-edge hash join
    # (writes BENCH_trace_overhead.json; the binary prints the verdict).
    overhead_out="$(cargo run --release -p aio-bench --bin repro -- trace_overhead)"
    echo "$overhead_out"
    echo "$overhead_out" | grep -q "bar: PASS"
fi
