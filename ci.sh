#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
