#!/bin/sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
#   ./ci.sh        tier-1: build, the default (smoke) test suite, clippy
#   ./ci.sh full   additionally runs every #[ignore]d heavyweight test:
#                  the full differential matrix, the metamorphic sweep,
#                  and any other long-running suites (~ a few minutes)
set -eux

mode="${1:-smoke}"

cargo build --release --workspace
case "$mode" in
full)
    cargo test -q --workspace -- --include-ignored
    ;;
smoke)
    cargo test -q --workspace
    ;;
*)
    echo "usage: $0 [full]" >&2
    exit 2
    ;;
esac
cargo clippy --workspace --all-targets -- -D warnings
